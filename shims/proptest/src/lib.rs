//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro (with
//! optional `#![proptest_config(..)]`), integer-range and `any::<T>()`
//! strategies, tuple strategies, `prop_oneof!`, `prop_map`,
//! `collection::vec`, `prop_assert!` / `prop_assert_eq!`, and a
//! deterministic runner with greedy shrinking (vec element removal and
//! integer shrink-toward-minimum).
//!
//! Generation is fully deterministic: the per-test RNG is seeded from a hash
//! of the test's name, so failures reproduce without a persistence file.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A generator of values plus a shrinker toward "simpler" values.
    ///
    /// Unlike real proptest there is no value tree; `shrink` proposes
    /// candidate simplifications of a concrete value and the runner keeps
    /// any candidate that still fails.
    pub trait Strategy {
        type Value: Clone + fmt::Debug;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Clone + fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy, usable where arms of different concrete types
    /// must unify (e.g. `prop_oneof!`).
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: Clone + fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            (**self).generate(rng)
        }
        fn shrink(&self, value: &V) -> Vec<V> {
            (**self).shrink(value)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            (**self).generate(rng)
        }
        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            (**self).shrink(value)
        }
    }

    /// Strategy yielding exactly one value.
    #[derive(Debug, Clone)]
    pub struct Just<V>(pub V);

    impl<V: Clone + fmt::Debug> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut SmallRng) -> V {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)` — maps generated values. Mapped values do not shrink
    /// (the inverse of `f` is unknown); shrinking happens at container
    /// level instead (e.g. vec element removal).
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
        U: Clone + fmt::Debug,
    {
        type Value = U;
        fn generate(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_int(*value, self.start)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_int(*value, *self.start())
                }
            }

            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_int(*value, self.start)
                }
            }

            impl crate::arbitrary::Arbitrary for $t {
                type Strategy = RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize);

    /// Candidates that move `value` toward `lo`: the minimum itself, the
    /// midpoint, and one step down — a greedy binary descent.
    fn shrink_int<T>(value: T, lo: T) -> Vec<T>
    where
        T: Copy + PartialOrd + std::ops::Sub<Output = T> + std::ops::Add<Output = T> + HalfStep,
    {
        let mut out = Vec::new();
        if value > lo {
            out.push(lo);
            let mid = lo + (value - lo).half();
            if mid > lo && mid < value {
                out.push(mid);
            }
            let down = value - T::one();
            if down > lo {
                out.push(down);
            }
        }
        out
    }

    pub trait HalfStep {
        fn half(self) -> Self;
        fn one() -> Self;
    }

    macro_rules! half_step {
        ($($t:ty),*) => {$(
            impl HalfStep for $t {
                fn half(self) -> Self { self / 2 }
                fn one() -> Self { 1 }
            }
        )*};
    }

    half_step!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($S:ident/$V:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }

    tuple_strategy!(S0 / V0 / 0);
    tuple_strategy!(S0 / V0 / 0, S1 / V1 / 1);
    tuple_strategy!(S0 / V0 / 0, S1 / V1 / 1, S2 / V2 / 2);
    tuple_strategy!(S0 / V0 / 0, S1 / V1 / 1, S2 / V2 / 2, S3 / V3 / 3);
    tuple_strategy!(
        S0 / V0 / 0,
        S1 / V1 / 1,
        S2 / V2 / 2,
        S3 / V3 / 3,
        S4 / V4 / 4
    );
    tuple_strategy!(
        S0 / V0 / 0,
        S1 / V1 / 1,
        S2 / V2 / 2,
        S3 / V3 / 3,
        S4 / V4 / 4,
        S5 / V5 / 5
    );

    /// Weighted union of boxed strategies — the engine behind `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V: Clone + fmt::Debug> Union<V> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Clone + fmt::Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut SmallRng) -> V {
            let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
            let mut pick = rng.gen_range(0..total);
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }

        fn shrink(&self, value: &V) -> Vec<V> {
            self.arms
                .iter()
                .flat_map(|(_, arm)| arm.shrink(value))
                .collect()
        }
    }

    /// Helper used by `prop_oneof!` to coerce each arm to a boxed strategy
    /// while letting inference unify the arms' value types.
    pub fn union_arm<S>(weight: u32, strat: S) -> (u32, BoxedStrategy<S::Value>)
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(strat))
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length bounds for generated collections (half-open, like proptest's
    /// `Range<usize>` conversion).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Structural shrinks first: drop the back half, then each single
            // element — smaller counterexamples dominate smaller elements.
            if value.len() > self.size.min {
                let half = (value.len() / 2).max(self.size.min);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in (0..value.len()).rev() {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            // Then element-wise shrinks, first failing element bias.
            for (i, v) in value.iter().enumerate().take(8) {
                for cand in self.elem.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runner knobs. Only `cases` and `max_shrink_iters` are honored; the
    /// struct is constructed with `..ProptestConfig::default()` so extra
    /// knobs can be added compatibly.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 512,
            }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "test panicked".to_string()
        }
    }

    fn run_one<V, F>(test: &F, value: &V) -> Option<String>
    where
        V: Clone,
        F: Fn(V) -> Result<(), String>,
    {
        let v = value.clone();
        match catch_unwind(AssertUnwindSafe(|| test(v))) {
            Ok(Ok(())) => None,
            Ok(Err(msg)) => Some(msg),
            Err(payload) => Some(panic_message(payload)),
        }
    }

    /// Executes `cases` deterministic cases of `test` over `strategy`,
    /// shrinking greedily on the first failure and panicking with the
    /// minimal counterexample found.
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), String>,
    {
        let mut rng = SmallRng::seed_from_u64(fnv1a(name));
        for case in 0..config.cases {
            let value = strategy.generate(&mut rng);
            if let Some(err) = run_one(&test, &value) {
                let (min_value, min_err, iters) = shrink(config, strategy, &test, value, err);
                panic!(
                    "proptest '{name}' failed (case {case}, {iters} shrink steps)\n\
                     minimal failing input: {min_value:#?}\n{min_err}"
                );
            }
        }
    }

    fn shrink<S, F>(
        config: &ProptestConfig,
        strategy: &S,
        test: &F,
        mut value: S::Value,
        mut err: String,
    ) -> (S::Value, String, u32)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), String>,
    {
        let mut iters = 0u32;
        'outer: while iters < config.max_shrink_iters {
            for cand in strategy.shrink(&value) {
                iters += 1;
                if let Some(e) = run_one(test, &cand) {
                    value = cand;
                    err = e;
                    continue 'outer;
                }
                if iters >= config.max_shrink_iters {
                    break 'outer;
                }
            }
            break;
        }
        (value, err, iters)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategy = ($($strat,)+);
                $crate::test_runner::run(
                    &__config,
                    stringify!($name),
                    &__strategy,
                    |($($arg,)+)| -> ::std::result::Result<(), ::std::string::String> {
                        $body;
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Weighted or unweighted choice between strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm(1u32, $strat)),+
        ])
    };
}

/// Asserts inside a proptest body; failures become shrinkable test failures
/// rather than immediate panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u16.., z in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            let _ = y;
            prop_assert!((1..4).contains(&z));
        }

        #[test]
        fn tuples_and_vecs_generate(
            pairs in crate::collection::vec((0u8..4, any::<u8>()), 1..20),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 20);
            for (tag, _) in &pairs {
                prop_assert!(*tag < 4);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        /// Config form parses and honors `cases`.
        #[test]
        fn config_form_works(v in any::<u64>()) {
            let _ = v;
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Toy {
        A(u64),
        B(u64),
    }

    fn toy_strategy() -> impl Strategy<Value = Toy> {
        prop_oneof![(0u64..100).prop_map(Toy::A), (0u64..100).prop_map(Toy::B),]
    }

    #[test]
    fn oneof_generates_both_arms() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let strat = toy_strategy();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut saw = (false, false);
        for _ in 0..64 {
            match strat.generate(&mut rng) {
                Toy::A(_) => saw.0 = true,
                Toy::B(_) => saw.1 = true,
            }
        }
        assert!(saw.0 && saw.1);
    }

    #[test]
    fn shrinking_minimizes_vec_counterexample() {
        use crate::collection::vec;
        use crate::test_runner::{run, ProptestConfig};
        // A test failing whenever any element >= 987 must shrink to a short
        // vector holding exactly the boundary element.
        let strategy = (vec(0u64..10_000, 1..50),);
        let config = ProptestConfig {
            max_shrink_iters: 4096,
            ..ProptestConfig::default()
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(&config, "shrink_demo", &strategy, |(v,)| {
                if v.iter().any(|&x| x >= 987) {
                    Err("element too large".into())
                } else {
                    Ok(())
                }
            });
        }));
        let msg = match caught {
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
            Ok(()) => panic!("runner should have reported a failure"),
        };
        // Minimal counterexample is exactly one element equal to 987.
        assert!(
            msg.contains("987") && !msg.contains("988"),
            "unexpected shrink result: {msg}"
        );
    }

    #[test]
    fn determinism_same_name_same_values() {
        use crate::strategy::Strategy;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let s = (0u64..1_000_000,);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
