//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough surface for the workspace's micro-benchmarks to
//! compile and produce useful numbers: `Criterion::bench_function`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//! Timing is a simple calibrated loop (warm-up, then a measured batch sized
//! to ~100ms) printing mean ns/iter — no statistics machinery.

use std::time::{Duration, Instant};

pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(50),
            measure: Duration::from_millis(100),
        }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording total time and iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up: discover an iteration count that fills the warm-up
        // window, then scale it to the measurement window.
        let mut iters = 1u64;
        let mut spent;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            spent = b.elapsed.max(Duration::from_nanos(1));
            if spent >= self.warm_up || iters >= 1 << 40 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let scaled =
            ((iters as f64) * self.measure.as_secs_f64() / spent.as_secs_f64()).max(1.0) as u64;
        let mut b = Bencher {
            iters: scaled,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!("{name:<40} {ns_per_iter:>12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Declares a benchmark group function invoking each benchmark in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(2),
        };
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }
}
