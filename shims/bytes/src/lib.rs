//! Offline stand-in for the `bytes` crate.
//!
//! Provides a cheaply clonable immutable byte buffer. The real crate avoids
//! copying on `from_static`; this shim keeps a two-variant representation so
//! static data is likewise zero-copy, while owned data shares an `Arc`.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps static data without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes(Repr::Static(data))
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v.into_boxed_slice())))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from(vec![b'a', b'b', b'c']);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn deref_and_index() {
        let v = Bytes::from(vec![7u8, 8, 9]);
        assert_eq!(v[0], 7);
        assert_eq!(&v[1..], [8, 9]);
        assert_eq!(v.iter().sum::<u8>(), 24);
    }

    #[test]
    fn clone_is_shallow_and_hash_consistent() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![1u8, 2]);
        let b = a.clone();
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn debug_escapes() {
        let v = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{v:?}"), "b\"a\\x00\"");
    }
}
