//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used in this
//! workspace; the shim provides an unbounded MPMC channel over a mutexed
//! deque with correct disconnect semantics (all senders dropped → `recv`
//! errors once drained; all receivers dropped → `send` errors).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clonable and shareable across threads.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half; clonable (MPMC) and shareable across threads.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned when sending on a channel with no receivers left.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when receiving on an empty channel with no senders left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake blocked receivers so they observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).unwrap_or_else(|p| p.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                queue = self
                    .0
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|p| p.into_inner())
                    .0;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(|p| p.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn disconnect_drains_then_errors() {
            let (tx, rx) = unbounded();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cloned_senders_count() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(5).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
