//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: `rngs::SmallRng` (a real
//! xoshiro256++ generator, seeded through SplitMix64 exactly like rand's
//! `seed_from_u64`), the `Rng` extension trait with `gen_range` /
//! `gen_bool` / `gen`, and `SeedableRng::seed_from_u64`. Everything is
//! deterministic from the seed; there is no OS entropy source at all, which
//! suits the chaos harness's replayability requirement.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed. Only `seed_from_u64` is needed here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a "standard" distribution for `rng.gen()`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// User-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }

    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! int_sampling {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_single(rng)
            }
        }
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_sampling!(u8, u16, u32, u64, usize);

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same algorithm the real `SmallRng` uses on 64-bit
    /// targets, seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=15u64);
            assert!((5..=15).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 1000 uniform samples should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }
}
