//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal API-compatible shim over `std::sync`. Semantics differ
//! from the real crate in one deliberate way: lock poisoning is ignored
//! (parking_lot has no poisoning), so a panic while holding a lock does not
//! wedge every later acquirer.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion primitive. `lock()` returns the guard directly, with no
/// poisoning `Result`, matching parking_lot.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// Condition variable taking `&mut MutexGuard` like parking_lot, rather than
/// consuming the guard like `std::sync::Condvar`.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard; move it out and back in place.
        // std::sync::Condvar::wait does not unwind, so the brief window
        // where `guard.0` is logically moved-out cannot double-drop.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let next = self.0.wait(inner).unwrap_or_else(|p| p.into_inner());
            std::ptr::write(&mut guard.0, next);
        }
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let (next, res) = match self.0.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r)
                }
            };
            std::ptr::write(&mut guard.0, next);
            WaitTimeoutResult(res.timed_out())
        }
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 7);
    }
}
