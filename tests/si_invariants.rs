//! Cross-crate integration tests: snapshot-isolation invariants hold while
//! each migration engine moves shards under concurrent load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use remus::cluster::{CcMode, Cluster, ClusterBuilder, Session};
use remus::common::{NodeId, ShardId, SimConfig, TableId};
use remus::migration::{
    LockAndAbort, MigrationEngine, MigrationTask, RemusEngine, SquallEngine, WaitAndRemaster,
};
use remus::storage::Value;

fn val(tag: u64) -> Value {
    Value::from(tag.to_le_bytes().to_vec())
}

fn tag_of(v: &Value) -> u64 {
    u64::from_le_bytes(v.as_ref()[..8].try_into().unwrap())
}

fn setup(cc: CcMode) -> (Arc<Cluster>, remus::shard::TableLayout) {
    let cluster = ClusterBuilder::new(3)
        .cc_mode(cc)
        .config(SimConfig::instant())
        .build();
    let layout = cluster.create_table(TableId(1), 0, 3, |i| NodeId(i % 3));
    let session = Session::connect(&cluster, NodeId(0));
    for k in 0..120u64 {
        session.run(|t| t.insert(&layout, k, val(0))).unwrap();
    }
    (cluster, layout)
}

/// Counter transactions increment disjoint keys; after a migration, every
/// key's value equals the number of successful increments — no lost
/// updates, no double application, for every engine.
fn no_lost_updates_under(engine: &dyn MigrationEngine, cc: CcMode) {
    let (cluster, layout) = setup(cc);
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..3u64)
        .map(|w| {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let session = Session::connect(&cluster, NodeId(w as u32 % 3));
                let mut counts = std::collections::HashMap::new();
                let mut last_cts = remus::common::Timestamp::INVALID;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = w * 40 + (i % 40);
                    // Read-modify-write increment.
                    let r = session.run(|t| {
                        let cur = t.read(&layout, key)?.map(|v| tag_of(&v)).unwrap_or(0);
                        t.update(&layout, key, val(cur + 1))
                    });
                    if let Ok((_, cts)) = r {
                        *counts.entry(key).or_insert(0u64) += 1;
                        last_cts = last_cts.max(cts);
                    }
                    i += 1;
                    std::thread::sleep(Duration::from_micros(400));
                }
                (counts, last_cts)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    // Move shard 0 from node 0 to node 2 (and shard 1 from node 1 to
    // node 0) while the counters run.
    engine
        .migrate(
            &cluster,
            &MigrationTask::single(ShardId(0), NodeId(0), NodeId(2)),
        )
        .unwrap();
    engine
        .migrate(
            &cluster,
            &MigrationTask::single(ShardId(1), NodeId(1), NodeId(0)),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);

    let mut expected = std::collections::HashMap::new();
    let mut causal_token = remus::common::Timestamp::INVALID;
    for w in writers {
        let (counts, last_cts) = w.join().unwrap();
        causal_token = causal_token.max(last_cts);
        for (k, n) in counts {
            *expected.entry(k).or_insert(0u64) += n;
        }
    }
    // Verify from another node, carrying the writers' causal token (DTS
    // cross-session snapshots may otherwise be legitimately stale, §2.2).
    let session = Session::connect(&cluster, NodeId(2));
    let mut verify = session.begin_after(causal_token);
    for (key, count) in expected {
        let v = verify.read(&layout, key).unwrap();
        assert_eq!(
            tag_of(&v.expect("key must exist")),
            count,
            "lost or duplicated update on key {key} under {}",
            engine.name()
        );
    }
    verify.commit().unwrap();
}

#[test]
fn no_lost_updates_remus() {
    no_lost_updates_under(&RemusEngine::new(), CcMode::Mvcc);
}

#[test]
fn no_lost_updates_lock_and_abort() {
    no_lost_updates_under(&LockAndAbort::new(), CcMode::Mvcc);
}

#[test]
fn no_lost_updates_wait_and_remaster() {
    no_lost_updates_under(&WaitAndRemaster::new(), CcMode::Mvcc);
}

#[test]
fn no_lost_updates_squall() {
    no_lost_updates_under(&SquallEngine::new(), CcMode::ShardLock);
}

/// A long-running snapshot reader sees a stable snapshot across a Remus
/// migration: repeated reads of the same keys within one transaction
/// return identical values even though writers churn and the shard moves.
#[test]
fn snapshot_stability_across_migration() {
    let (cluster, layout) = setup(CcMode::Mvcc);
    let stop = Arc::new(AtomicBool::new(false));
    let pause = Arc::new(AtomicBool::new(false));
    let paused = Arc::new(AtomicBool::new(false));
    let writer = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        let pause = Arc::clone(&pause);
        let paused = Arc::clone(&paused);
        std::thread::spawn(move || {
            let session = Session::connect(&cluster, NodeId(1));
            let mut i = 1u64;
            while !stop.load(Ordering::Relaxed) {
                while pause.load(Ordering::Acquire) {
                    paused.store(true, Ordering::Release);
                    std::thread::sleep(Duration::from_micros(100));
                }
                paused.store(false, Ordering::Relaxed);
                let key = i % 120;
                let _ = session.run(|t| t.update(&layout, key, val(i)));
                i += 1;
                std::thread::sleep(Duration::from_micros(300));
            }
        })
    };

    let reader_session = Session::connect(&cluster, NodeId(2));
    let mut reader = reader_session.begin();
    // Under DTS a commit issued *after* this snapshot can still receive a
    // timestamp below it from another node's lagging clock and surface
    // mid-transaction (the paper's documented concession — see
    // `Dts::without_observe_skew_allows_stale_snapshots`). Deployments close
    // this with causal tokens; here we quiesce the writer once and fold the
    // snapshot into every node's clock, so all later commit timestamps land
    // above it and the stability assertion tests the engine, not the clocks.
    pause.store(true, Ordering::Release);
    while !paused.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_micros(100));
    }
    for node in cluster.nodes() {
        cluster.oracle.observe(node.id(), reader.start_ts());
    }
    pause.store(false, Ordering::Release);

    let first: Vec<Option<u64>> = (0..120)
        .map(|k| reader.read(&layout, k).unwrap().map(|v| tag_of(&v)))
        .collect();

    let migration = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            RemusEngine::new().migrate(
                &cluster,
                &MigrationTask::single(ShardId(0), NodeId(0), NodeId(2)),
            )
        })
    };
    // Re-read under the same snapshot while the migration runs.
    for _ in 0..5 {
        for k in 0..120u64 {
            let now = reader.read(&layout, k).unwrap().map(|v| tag_of(&v));
            assert_eq!(now, first[k as usize], "snapshot moved for key {k}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    reader.commit().unwrap();
    migration.join().unwrap().unwrap();
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

/// The migration itself preserves the committed data exactly: the multiset
/// of (key, value) pairs visible after the move equals the one before it
/// when the system is quiescent.
#[test]
fn quiescent_migration_is_lossless_for_every_engine() {
    let engines: Vec<(Box<dyn MigrationEngine>, CcMode)> = vec![
        (Box::new(RemusEngine::new()), CcMode::Mvcc),
        (Box::new(LockAndAbort::new()), CcMode::Mvcc),
        (Box::new(WaitAndRemaster::new()), CcMode::Mvcc),
        (Box::new(SquallEngine::new()), CcMode::ShardLock),
    ];
    for (engine, cc) in engines {
        let (cluster, layout) = setup(cc);
        let session = Session::connect(&cluster, NodeId(1));
        for k in 0..120u64 {
            session
                .run(|t| t.update(&layout, k, val(k * 3 + 1)))
                .unwrap();
        }
        let (mut before, _) = session.run(|t| t.scan_table(&layout)).unwrap();
        engine
            .migrate(
                &cluster,
                &MigrationTask::single(ShardId(0), NodeId(0), NodeId(1)),
            )
            .unwrap();
        let (mut after, _) = session.run(|t| t.scan_table(&layout)).unwrap();
        before.sort();
        after.sort();
        assert_eq!(before.len(), 120);
        assert_eq!(
            before,
            after,
            "data changed across {} migration",
            engine.name()
        );
    }
}
