//! Property-based integration tests: random operation histories applied
//! before and during migrations preserve the committed state, for random
//! shard/engine choices.

use proptest::prelude::*;
use remus::cluster::{CcMode, ClusterBuilder, Session};
use remus::common::{NodeId, ShardId, SimConfig, TableId};
use remus::migration::{
    LockAndAbort, MigrationEngine, MigrationTask, RemusEngine, SquallEngine, WaitAndRemaster,
};
use remus::storage::Value;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u8),
    Update(u64, u8),
    Delete(u64),
}

fn op_strategy(keyspace: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..keyspace, any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..keyspace, any::<u8>()).prop_map(|(k, v)| Op::Update(k, v)),
        (0..keyspace).prop_map(Op::Delete),
    ]
}

fn engine_strategy() -> impl Strategy<Value = usize> {
    0usize..4
}

fn make_engine(i: usize) -> Box<dyn MigrationEngine> {
    match i {
        0 => Box::new(RemusEngine::new()),
        1 => Box::new(LockAndAbort::new()),
        2 => Box::new(WaitAndRemaster::new()),
        _ => Box::new(SquallEngine::new()),
    }
}

/// Squall runs on H-store shard locks; the MVCC engines keep Mvcc mode.
fn cc_mode_for(i: usize) -> CcMode {
    if i == 3 {
        CcMode::ShardLock
    } else {
        CcMode::Mvcc
    }
}

/// Applies ops through transactions, tracking the expected state like a
/// client would (an op that errors has no effect).
fn apply_ops(
    session: &Session,
    layout: &remus::shard::TableLayout,
    ops: &[Op],
    model: &mut std::collections::BTreeMap<u64, u8>,
) {
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                if session
                    .run(|t| t.insert(layout, k, Value::from(vec![v])))
                    .is_ok()
                {
                    model.insert(k, v);
                }
            }
            Op::Update(k, v) => {
                if session
                    .run(|t| t.update(layout, k, Value::from(vec![v])))
                    .is_ok()
                {
                    model.insert(k, v);
                }
            }
            Op::Delete(k) => {
                if session.run(|t| t.delete(layout, k)).is_ok() {
                    model.remove(&k);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random history, then a migration, then more random history: the
    /// observable table equals the client-side model exactly.
    #[test]
    fn migration_preserves_random_histories(
        ops_before in proptest::collection::vec(op_strategy(60), 1..60),
        ops_after in proptest::collection::vec(op_strategy(60), 1..60),
        engine_idx in engine_strategy(),
        dest in 1u32..3,
    ) {
        let cluster = ClusterBuilder::new(3)
            .cc_mode(cc_mode_for(engine_idx))
            .config(SimConfig::instant())
            .build();
        let layout = cluster.create_table(TableId(1), 0, 3, |i| NodeId(i % 3));
        let session = Session::connect(&cluster, NodeId(0));
        let mut model = std::collections::BTreeMap::new();

        apply_ops(&session, &layout, &ops_before, &mut model);

        let engine = make_engine(engine_idx);
        engine
            .migrate(&cluster, &MigrationTask::single(ShardId(0), NodeId(0), NodeId(dest)))
            .unwrap();

        apply_ops(&session, &layout, &ops_after, &mut model);

        let (rows, _) = session.run(|t| t.scan_table(&layout)).unwrap();
        let observed: std::collections::BTreeMap<u64, u8> =
            rows.into_iter().map(|(k, v)| (k, v[0])).collect();
        prop_assert_eq!(observed, model);
    }
}
