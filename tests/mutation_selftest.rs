//! Chaos-harness self-test: prove the SI checker catches a *real* anomaly.
//!
//! The `mutation-hooks` feature adds a runtime switch that makes visibility
//! resolution skip prepared versions instead of prepare-waiting — breaking
//! the exact mechanism that makes 2PC commits atomic with respect to
//! snapshot reads. With the switch on, a reader whose snapshot is newer
//! than an in-flight 2PC commit reads *past* it; once that commit lands
//! with a timestamp below the reader's snapshot, the read is stale. Under
//! GTS this is unambiguously illegal, and the checker must flag it and the
//! shrinker must minimize the counterexample.
//!
//! Gated behind the feature so the broken code path cannot exist in normal
//! builds: `cargo test --features mutation-hooks --test mutation_selftest`.

#![cfg(feature = "mutation-hooks")]

use std::sync::Arc;

use remus::chaos::{
    check_history, shrink_history, CheckConfig, MutKind, OpRead, OpWrite, TxnRecord, Violation,
};
use remus::clock::{Gts, OracleKind};
use remus::cluster::{ClusterBuilder, Session};
use remus::common::{NodeId, ShardId, TableId, Timestamp};
use remus::storage::mutation::set_skip_prepare_wait;
use remus::storage::Value;
use remus::txn::{commit_prepared, prepare_participant, Txn};

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

fn check_config() -> CheckConfig {
    CheckConfig {
        source: NodeId(0),
        dest: NodeId(1),
        migrating: vec![],
        tm_cts: None,
        migration_committed: false,
        // GTS cluster: timestamp order is real-time order, so the strict
        // read axiom applies.
        strict_timestamp_reads: true,
    }
}

/// Runs the read-past-prepared experiment and returns the recorded history.
/// `mutate` turns the prepare-wait-skipping switch on for the reader.
fn run_experiment(mutate: bool) -> Vec<TxnRecord> {
    let cluster = ClusterBuilder::new(1)
        .oracle_instance(Arc::new(Gts::new()))
        .build();
    assert_eq!(cluster.oracle.kind(), OracleKind::Gts);
    let layout = cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let node = cluster.node(NodeId(0));
    let session = Session::connect(&cluster, NodeId(0));
    let mut history = Vec::new();
    let mut seq = 0u64..;

    // Preload key 1.
    let begin_seq = seq.next().unwrap();
    let mut preload = session.begin();
    let preload_begin = preload.begin_ts();
    preload.insert(&layout, 1, val("base")).unwrap();
    let preload_snap = preload.start_ts();
    let preload_xid = preload.xid();
    let preload_cts = preload.commit().unwrap();
    history.push(TxnRecord {
        xid: preload_xid,
        client: 0,
        begin_ts: preload_begin,
        commit_ts: Some(preload_cts),
        reads: vec![],
        writes: vec![OpWrite {
            key: 1,
            snap_ts: preload_snap,
            kind: MutKind::Insert,
            value: Some(val("base")),
        }],
        routes: vec![],
        replica: false,
        begin_seq,
        commit_seq: seq.next().unwrap(),
    });

    // Writer W: a 2PC participant prepared but not yet committed, with a
    // commit timestamp issued *before* the reader's snapshot.
    let w_start = cluster.oracle.start_ts(NodeId(0));
    let wx = {
        let mut w = Txn::begin(&node.storage, w_start);
        w.update(&node.storage, ShardId(0), 1, val("new")).unwrap();
        let wx = w.xid;
        prepare_participant(&node.storage, wx).unwrap();
        std::mem::forget(w);
        wx
    };
    let w_cts = cluster.oracle.commit_ts(NodeId(0));
    let w_begin_seq = seq.next().unwrap();

    // Reader R begins after W's commit timestamp was issued. A correct SI
    // engine makes R prepare-wait on W's version and (after the commit
    // below) observe it; the mutation makes R skip it.
    if mutate {
        set_skip_prepare_wait(true);
    }
    let r_begin_seq = seq.next().unwrap();
    let mut reader = session.begin();
    let r_begin = reader.begin_ts();
    assert!(r_begin >= w_cts, "GTS snapshots are monotone");
    // Commit W from a second thread; without the mutation, R's read below
    // blocks on the prepared version until this lands.
    let committer = {
        let storage = Arc::clone(&node.storage);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            commit_prepared(&storage, wx, w_cts).unwrap();
        })
    };
    let observed = reader.read(&layout, 1).unwrap();
    let r_snap = reader.start_ts();
    committer.join().unwrap();
    let w_commit_seq = seq.next().unwrap();
    if mutate {
        set_skip_prepare_wait(false);
    }
    history.push(TxnRecord {
        xid: wx,
        client: 1,
        begin_ts: w_start,
        commit_ts: Some(w_cts),
        reads: vec![],
        writes: vec![OpWrite {
            key: 1,
            snap_ts: w_start,
            kind: MutKind::Update,
            value: Some(val("new")),
        }],
        routes: vec![],
        replica: false,
        begin_seq: w_begin_seq,
        commit_seq: w_commit_seq,
    });

    let r_xid = reader.xid();
    let r_cts = reader.commit().unwrap();
    history.push(TxnRecord {
        xid: r_xid,
        client: 2,
        begin_ts: r_begin,
        commit_ts: Some(r_cts),
        reads: vec![OpRead {
            key: 1,
            snap_ts: r_snap,
            observed,
        }],
        writes: vec![],
        routes: vec![],
        replica: false,
        begin_seq: r_begin_seq,
        commit_seq: seq.next().unwrap(),
    });
    history
}

#[test]
fn killed_replay_worker_fails_join_instead_of_hanging() {
    use crossbeam::channel::unbounded;
    use remus::common::{DbError, SimConfig, TxnId};
    use remus::migration::mocc::ValidationRegistry;
    use remus::migration::replay::{ApplyMsg, ReplayProcess};
    use remus::storage::mutation::arm_kill_replay_worker;
    use remus::wal::{WriteKind, WriteOp};
    use std::time::Duration;

    let mut config = SimConfig::instant();
    config.parallelism.replay_workers = 2;
    let cluster = ClusterBuilder::new(2).config(config).build();
    cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let dest = Arc::clone(cluster.node(NodeId(1)));
    dest.storage.create_shard(ShardId(0));
    let (tx, rx) = unbounded();
    let replay = ReplayProcess::start(
        &cluster,
        &dest,
        Arc::new(ValidationRegistry::new()),
        rx,
        None,
    );

    // The worker picking up the first job dies mid-job. The second job
    // writes the same key, so its key fence waits on the first job's
    // ticket: before the fix, the dead worker never marked its ticket and
    // the whole pipeline (and `join`) hung forever.
    arm_kill_replay_worker();
    for i in 0..2u64 {
        tx.send(ApplyMsg::Committed {
            xid: TxnId::new(NodeId(0), 2_000 + i),
            start_ts: Timestamp(10 * i + 5),
            commit_ts: Timestamp(10 * (i + 1)),
            ops: vec![WriteOp {
                shard: ShardId(0),
                key: 7,
                kind: WriteKind::Insert,
                value: val("x"),
            }],
        })
        .unwrap();
    }
    tx.send(ApplyMsg::Shutdown).unwrap();

    // Watchdog: `join` must return (with the panic surfaced as an error),
    // not hang — run it on the side and bound the wait.
    let (done_tx, done_rx) = unbounded();
    std::thread::spawn(move || {
        let _ = done_tx.send(replay.join());
    });
    let result = done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("ReplayProcess::join hung on a dead worker");
    let err = result.unwrap_err();
    assert!(matches!(err, DbError::Internal(_)), "got {err:?}");
    assert!(
        format!("{err}").contains("panicked"),
        "error does not mention the panic: {err}"
    );
}

#[test]
fn skipping_prepare_wait_is_caught_and_minimized() {
    // Control: with the engine intact, the reader prepare-waits, sees the
    // committed write, and the checker passes.
    let clean = run_experiment(false);
    assert_eq!(
        clean.last().unwrap().reads[0].observed,
        Some(val("new")),
        "control run must observe the committed write"
    );
    assert!(check_history(&clean, &check_config()).is_empty());

    // Mutated: the reader skips the prepared version and observes the
    // pre-state — a stale read the checker must flag.
    let broken = run_experiment(true);
    assert_eq!(
        broken.last().unwrap().reads[0].observed,
        Some(val("base")),
        "mutated run must read past the prepared version"
    );
    let violations = check_history(&broken, &check_config());
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::StaleRead { key: 1, .. })),
        "checker missed the injected anomaly: {violations:?}"
    );

    // Pad the history with unrelated clean transactions and let the
    // shrinker strip them back out.
    let mut padded = broken.clone();
    for i in 0..10u64 {
        let ts = Timestamp(1_000 + i);
        padded.push(TxnRecord {
            xid: remus::common::TxnId::new(NodeId(0), 9_000 + i),
            client: 9,
            begin_ts: ts,
            commit_ts: Some(Timestamp(1_100 + i)),
            reads: vec![],
            writes: vec![OpWrite {
                key: 100 + i,
                snap_ts: ts,
                kind: MutKind::Insert,
                value: Some(val(&format!("pad-{i}"))),
            }],
            routes: vec![],
            replica: false,
            begin_seq: 500 + 2 * i,
            commit_seq: 501 + 2 * i,
        });
    }
    let config = check_config();
    let (minimal, min_violations) = shrink_history(&padded, |h| check_history(h, &config));
    assert!(!min_violations.is_empty());
    assert!(
        minimal.len() <= 3,
        "shrinker left {} of {} records",
        minimal.len(),
        padded.len()
    );
    // Every surviving record touches the offending key or is the reader.
    assert!(minimal
        .iter()
        .all(|r| r.reads.iter().any(|op| op.key == 1) || r.writes.iter().any(|op| op.key == 1)));
}
