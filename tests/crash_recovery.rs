//! End-to-end crash recovery (paper §3.7): the fate of an interrupted
//! migration follows `T_m`'s 2PC state, and in-doubt shadow transactions
//! follow their source transaction's decision.

use remus::cluster::{ClusterBuilder, Session};
use remus::common::{NodeId, ShardId, TableId, Timestamp};
use remus::migration::diversion::run_tm_crash_after_prepare;
use remus::migration::recovery::{recover_migration, resolve_prepared_shadows, RecoveryDecision};
use remus::migration::snapshot::copy_shard_snapshot;
use remus::migration::{MigrationEngine, MigrationTask};
use remus::storage::Value;
use remus::txn::{commit_prepared, prepare_participant, Txn};

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

/// Crash before `T_m` commits: the migration rolls back; the source still
/// serves every committed write, including ones made after the (discarded)
/// snapshot copy.
#[test]
fn crash_before_tm_commit_rolls_back_and_source_serves() {
    let cluster = ClusterBuilder::new(2).build();
    let layout = cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let session = Session::connect(&cluster, NodeId(0));
    for k in 0..40u64 {
        session.run(|t| t.insert(&layout, k, val("v0"))).unwrap();
    }
    // The crashed migration got as far as the snapshot copy...
    let snapshot_ts = cluster.oracle.start_ts(NodeId(0));
    copy_shard_snapshot(
        &cluster,
        cluster.node(NodeId(0)),
        cluster.node(NodeId(1)),
        ShardId(0),
        snapshot_ts,
    )
    .unwrap();
    // ... a post-snapshot commit on the source ...
    session.run(|t| t.update(&layout, 7, val("v1"))).unwrap();
    // ... and an in-doubt T_m.
    let task = MigrationTask::single(ShardId(0), NodeId(0), NodeId(1));
    let tm = run_tm_crash_after_prepare(&cluster, &task).unwrap();

    let decision = recover_migration(&cluster, &task, tm).unwrap();
    assert_eq!(decision, RecoveryDecision::RolledBack);
    assert!(cluster.node(NodeId(0)).storage.hosts(ShardId(0)));
    assert!(!cluster.node(NodeId(1)).storage.hosts(ShardId(0)));
    let (v, _) = session.run(|t| t.read(&layout, 7)).unwrap();
    assert_eq!(v, Some(val("v1")));
    // The cluster accepts a fresh migration of the same shard afterwards.
    remus::migration::RemusEngine::new()
        .migrate(&cluster, &task)
        .unwrap();
    let (v, _) = session.run(|t| t.read(&layout, 7)).unwrap();
    assert_eq!(v, Some(val("v1")));
}

/// Crash mid phase-two of `T_m` with a prepared shadow in flight: the
/// migration rolls forward; the shadow commits with its source's
/// timestamp; the destination serves everything.
#[test]
fn crash_after_tm_commit_rolls_forward_with_in_doubt_shadow() {
    let cluster = ClusterBuilder::new(3).build();
    let layout = cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let session = Session::connect(&cluster, NodeId(0));
    for k in 0..40u64 {
        session.run(|t| t.insert(&layout, k, val("v0"))).unwrap();
    }
    // Snapshot fully copied before the crash.
    let snapshot_ts = cluster.oracle.start_ts(NodeId(0));
    copy_shard_snapshot(
        &cluster,
        cluster.node(NodeId(0)),
        cluster.node(NodeId(1)),
        ShardId(0),
        snapshot_ts,
    )
    .unwrap();

    // A synchronized source transaction that committed on the source while
    // its shadow was still prepared on the destination (MOCC's key
    // property: source commit implies shadow prepared).
    let source = cluster.node(NodeId(0));
    let dest = cluster.node(NodeId(1));
    let sx = source.storage.alloc_xid();
    let start = cluster.oracle.start_ts(NodeId(0));
    let mut shadow = Txn::begin_with(sx.shadow(), start, dest.id());
    shadow
        .update(&dest.storage, ShardId(0), 7, val("sync-write"))
        .unwrap();
    prepare_participant(&dest.storage, sx.shadow()).unwrap();
    source.storage.clog.begin(sx);
    let cts = cluster.oracle.commit_ts(NodeId(0));
    source.storage.clog.set_committed(sx, cts).unwrap();
    // Mirror the write on the source so both copies agree once recovered.
    source
        .storage
        .table(ShardId(0))
        .unwrap()
        .install_frozen(7, val("sync-write"));

    // T_m crashed mid phase two: one participant already committed.
    let task = MigrationTask::single(ShardId(0), NodeId(0), NodeId(1));
    let tm = run_tm_crash_after_prepare(&cluster, &task).unwrap();
    let ts = cluster.oracle.commit_ts(NodeId(0));
    commit_prepared(&cluster.node(NodeId(2)).storage, tm, ts).unwrap();

    let decision = recover_migration(&cluster, &task, tm).unwrap();
    assert_eq!(decision, RecoveryDecision::RolledForward(ts));
    assert!(!cluster.node(NodeId(0)).storage.hosts(ShardId(0)));
    assert!(cluster.node(NodeId(1)).storage.hosts(ShardId(0)));

    // The shadow followed its source's decision: committed at `cts`.
    assert_eq!(
        dest.storage.clog.status(sx.shadow()),
        remus::storage::TxnStatus::Committed(cts)
    );
    let (v, _) = session.run(|t| t.read(&layout, 7)).unwrap();
    assert_eq!(v, Some(val("sync-write")));
    // And all 40 keys survived.
    let (rows, _) = session.run(|t| t.scan_table(&layout)).unwrap();
    assert_eq!(rows.len(), 40);
}

/// A destination crash wipes the validation registry: prepared shadows of
/// aborted (or unknown) source transactions roll back and their writes
/// vanish.
#[test]
fn shadows_of_unresolved_sources_roll_back() {
    let cluster = ClusterBuilder::new(2).build();
    cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let dest = cluster.node(NodeId(1));
    dest.storage.create_shard(ShardId(0));

    let source = cluster.node(NodeId(0));
    // Aborted source transaction with a prepared shadow.
    let a = source.storage.alloc_xid();
    let mut sa = Txn::begin_with(a.shadow(), Timestamp(10), dest.id());
    sa.insert(&dest.storage, ShardId(0), 1, val("a")).unwrap();
    prepare_participant(&dest.storage, a.shadow()).unwrap();
    source.storage.clog.begin(a);
    source.storage.clog.set_aborted(a);

    let (committed, rolled_back) = resolve_prepared_shadows(source, dest);
    assert_eq!((committed, rolled_back), (0, 1));
    let table = dest.storage.table(ShardId(0)).unwrap();
    assert_eq!(table.stats().versions, 0);
}
