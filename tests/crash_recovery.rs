//! End-to-end crash recovery (paper §3.7): the fate of an interrupted
//! migration follows `T_m`'s 2PC state, and in-doubt shadow transactions
//! follow their source transaction's decision.

use std::sync::Arc;

use remus::chaos::{FaultSpec, PlanInjector};
use remus::cluster::{ClusterBuilder, Session};
use remus::common::{DbError, FaultAction, InjectionPoint, NodeId, ShardId, TableId, Timestamp};
use remus::migration::diversion::run_tm_crash_after_prepare;
use remus::migration::mocc::ValidationRegistry;
use remus::migration::recovery::{recover_migration, resolve_prepared_shadows, RecoveryDecision};
use remus::migration::replay::{ApplyMsg, ReplayProcess};
use remus::migration::snapshot::copy_shard_snapshot;
use remus::migration::{MigrationEngine, MigrationTask, RemusEngine};
use remus::storage::Value;
use remus::txn::{commit_prepared, prepare_participant, Txn};
use remus::wal::{WriteKind, WriteOp};

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

/// Crash before `T_m` commits: the migration rolls back; the source still
/// serves every committed write, including ones made after the (discarded)
/// snapshot copy.
#[test]
fn crash_before_tm_commit_rolls_back_and_source_serves() {
    let cluster = ClusterBuilder::new(2).build();
    let layout = cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let session = Session::connect(&cluster, NodeId(0));
    for k in 0..40u64 {
        session.run(|t| t.insert(&layout, k, val("v0"))).unwrap();
    }
    // The crashed migration got as far as the snapshot copy...
    let snapshot_ts = cluster.oracle.start_ts(NodeId(0));
    copy_shard_snapshot(
        &cluster,
        cluster.node(NodeId(0)),
        cluster.node(NodeId(1)),
        ShardId(0),
        snapshot_ts,
    )
    .unwrap();
    // ... a post-snapshot commit on the source ...
    session.run(|t| t.update(&layout, 7, val("v1"))).unwrap();
    // ... and an in-doubt T_m.
    let task = MigrationTask::single(ShardId(0), NodeId(0), NodeId(1));
    let tm = run_tm_crash_after_prepare(&cluster, &task).unwrap();

    let decision = recover_migration(&cluster, &task, tm).unwrap();
    assert_eq!(decision, RecoveryDecision::RolledBack);
    assert!(cluster.node(NodeId(0)).storage.hosts(ShardId(0)));
    assert!(!cluster.node(NodeId(1)).storage.hosts(ShardId(0)));
    let (v, _) = session.run(|t| t.read(&layout, 7)).unwrap();
    assert_eq!(v, Some(val("v1")));
    // The cluster accepts a fresh migration of the same shard afterwards.
    remus::migration::RemusEngine::new()
        .migrate(&cluster, &task)
        .unwrap();
    let (v, _) = session.run(|t| t.read(&layout, 7)).unwrap();
    assert_eq!(v, Some(val("v1")));
}

/// Crash mid phase-two of `T_m` with a prepared shadow in flight: the
/// migration rolls forward; the shadow commits with its source's
/// timestamp; the destination serves everything.
#[test]
fn crash_after_tm_commit_rolls_forward_with_in_doubt_shadow() {
    let cluster = ClusterBuilder::new(3).build();
    let layout = cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let session = Session::connect(&cluster, NodeId(0));
    for k in 0..40u64 {
        session.run(|t| t.insert(&layout, k, val("v0"))).unwrap();
    }
    // Snapshot fully copied before the crash.
    let snapshot_ts = cluster.oracle.start_ts(NodeId(0));
    copy_shard_snapshot(
        &cluster,
        cluster.node(NodeId(0)),
        cluster.node(NodeId(1)),
        ShardId(0),
        snapshot_ts,
    )
    .unwrap();

    // A synchronized source transaction that committed on the source while
    // its shadow was still prepared on the destination (MOCC's key
    // property: source commit implies shadow prepared).
    let source = cluster.node(NodeId(0));
    let dest = cluster.node(NodeId(1));
    let sx = source.storage.alloc_xid();
    let start = cluster.oracle.start_ts(NodeId(0));
    let mut shadow = Txn::begin_with(sx.shadow(), start, dest.id());
    shadow
        .update(&dest.storage, ShardId(0), 7, val("sync-write"))
        .unwrap();
    prepare_participant(&dest.storage, sx.shadow()).unwrap();
    source.storage.clog.begin(sx);
    let cts = cluster.oracle.commit_ts(NodeId(0));
    source.storage.clog.set_committed(sx, cts).unwrap();
    // Mirror the write on the source so both copies agree once recovered.
    source
        .storage
        .table(ShardId(0))
        .unwrap()
        .install_frozen(7, val("sync-write"));

    // T_m crashed mid phase two: one participant already committed.
    let task = MigrationTask::single(ShardId(0), NodeId(0), NodeId(1));
    let tm = run_tm_crash_after_prepare(&cluster, &task).unwrap();
    let ts = cluster.oracle.commit_ts(NodeId(0));
    commit_prepared(&cluster.node(NodeId(2)).storage, tm, ts).unwrap();

    let decision = recover_migration(&cluster, &task, tm).unwrap();
    assert_eq!(decision, RecoveryDecision::RolledForward(ts));
    assert!(!cluster.node(NodeId(0)).storage.hosts(ShardId(0)));
    assert!(cluster.node(NodeId(1)).storage.hosts(ShardId(0)));

    // The shadow followed its source's decision: committed at `cts`.
    assert_eq!(
        dest.storage.clog.status(sx.shadow()),
        remus::storage::TxnStatus::Committed(cts)
    );
    let (v, _) = session.run(|t| t.read(&layout, 7)).unwrap();
    assert_eq!(v, Some(val("sync-write")));
    // And all 40 keys survived.
    let (rows, _) = session.run(|t| t.scan_table(&layout)).unwrap();
    assert_eq!(rows.len(), 40);
}

/// A destination crash wipes the validation registry: prepared shadows of
/// aborted (or unknown) source transactions roll back and their writes
/// vanish.
#[test]
fn shadows_of_unresolved_sources_roll_back() {
    let cluster = ClusterBuilder::new(2).build();
    cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let dest = cluster.node(NodeId(1));
    dest.storage.create_shard(ShardId(0));

    let source = cluster.node(NodeId(0));
    // Aborted source transaction with a prepared shadow.
    let a = source.storage.alloc_xid();
    let mut sa = Txn::begin_with(a.shadow(), Timestamp(10), dest.id());
    sa.insert(&dest.storage, ShardId(0), 1, val("a")).unwrap();
    prepare_participant(&dest.storage, a.shadow()).unwrap();
    source.storage.clog.begin(a);
    source.storage.clog.set_aborted(a);

    let (committed, rolled_back) = resolve_prepared_shadows(source, dest);
    assert_eq!((committed, rolled_back), (0, 1));
    let table = dest.storage.table(ShardId(0)).unwrap();
    assert_eq!(table.stats().versions, 0);
}

/// The destination "crashes" in the middle of MOCC validation (injected via
/// the chaos seam): the shadow is already prepared but the validation ack
/// never reaches the source. The source transaction must abort (it cannot
/// commit without the verdict), and recovery resolves the orphaned prepared
/// shadow by rolling it back.
#[test]
fn destination_crash_during_mocc_validation_leaves_resolvable_shadow() {
    let cluster = ClusterBuilder::new(2).build();
    let layout = cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let session = Session::connect(&cluster, NodeId(0));
    for k in 0..20u64 {
        session.run(|t| t.insert(&layout, k, val("v0"))).unwrap();
    }
    let snapshot_ts = cluster.oracle.start_ts(NodeId(0));
    copy_shard_snapshot(
        &cluster,
        cluster.node(NodeId(0)),
        cluster.node(NodeId(1)),
        ShardId(0),
        snapshot_ts,
    )
    .unwrap();

    // Crash the destination at its first MOCC validation.
    cluster.install_fault_injector(Arc::new(PlanInjector::from_specs(vec![FaultSpec {
        point: InjectionPoint::MoccValidation,
        node: NodeId(1),
        occurrence: 0,
        action: FaultAction::Crash,
    }])));

    let source = cluster.node(NodeId(0));
    let dest = Arc::clone(cluster.node(NodeId(1)));
    let registry = Arc::new(ValidationRegistry::new());
    let (tx, rx) = crossbeam::channel::unbounded();
    let replay = ReplayProcess::start(&cluster, &dest, Arc::clone(&registry), rx, None);

    // A synchronized source transaction sends its write set for validation.
    let sx = source.storage.alloc_xid();
    tx.send(ApplyMsg::Validate {
        xid: sx,
        start_ts: cluster.oracle.start_ts(NodeId(0)),
        ops: vec![WriteOp {
            shard: ShardId(0),
            key: 7,
            kind: WriteKind::Update,
            value: val("never-acked"),
        }],
    })
    .unwrap();

    // The verdict surfaces the crash instead of validation-ok...
    let err = registry
        .await_verdict(sx, std::time::Duration::from_secs(2))
        .unwrap_err();
    assert_eq!(err, DbError::NodeUnavailable(NodeId(1)));
    // ... while the shadow was prepared before the "crash" (MOCC prepares
    // before acking, so a committed source always implies a prepared
    // shadow — here the source never commits).
    assert_eq!(
        dest.storage.clog.status(sx.shadow()),
        remus::storage::TxnStatus::Prepared
    );

    // The source transaction aborts for lack of a verdict.
    source.storage.clog.begin(sx);
    source.storage.clog.set_aborted(sx);

    // Recovery rolls the orphaned shadow back; the destination copy still
    // serves the pre-crash value.
    let (committed, rolled_back) = resolve_prepared_shadows(source, &dest);
    assert_eq!((committed, rolled_back), (0, 1));
    assert_eq!(
        dest.storage.clog.status(sx.shadow()),
        remus::storage::TxnStatus::Aborted
    );
    let probe = Txn::begin(&dest.storage, Timestamp(u64::MAX / 2));
    assert_eq!(
        probe.read(&dest.storage, ShardId(0), 7).unwrap(),
        Some(val("v0"))
    );

    cluster.uninstall_fault_injector();
    tx.send(ApplyMsg::Shutdown).unwrap();
    // The replay process is dropped un-joined: its worker pool "died with
    // the node"; the prepared shadow was resolved from CLOG state alone.
    drop(replay);
}

/// Propagation lag plus a widened sync-barrier window (both injected) while
/// a writer keeps committing: Remus must still drain `TS_unsync`, divert,
/// and finish with every last committed value on the destination.
#[test]
fn propagation_lag_during_sync_barrier_still_converges() {
    let cluster = ClusterBuilder::new(3).build();
    let layout = cluster.create_table(TableId(1), 0, 1, |_| NodeId(0));
    let session = Session::connect(&cluster, NodeId(0));
    for k in 0..40u64 {
        session.run(|t| t.insert(&layout, k, val("v0"))).unwrap();
    }

    // Slow the first shipments and the sync barrier itself.
    let mut specs: Vec<FaultSpec> = (0..5u32)
        .map(|occurrence| FaultSpec {
            point: InjectionPoint::PropagationShip,
            node: NodeId(0),
            occurrence,
            action: FaultAction::Delay(std::time::Duration::from_millis(5)),
        })
        .collect();
    specs.push(FaultSpec {
        point: InjectionPoint::SyncBarrier,
        node: NodeId(0),
        occurrence: 0,
        action: FaultAction::Delay(std::time::Duration::from_millis(20)),
    });
    cluster.install_fault_injector(Arc::new(PlanInjector::from_specs(specs)));

    // A writer keeps updating throughout the migration.
    let writer = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            let session = Session::connect(&cluster, NodeId(2));
            let mut committed: Vec<(u64, Value, Timestamp)> = Vec::new();
            for i in 0..60u64 {
                let key = i % 40;
                let value = val(&format!("w{i}"));
                if let Ok(((), cts)) = session.run(|t| t.update(&layout, key, value.clone())) {
                    committed.push((key, value, cts));
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            committed
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(5));
    let task = MigrationTask::single(ShardId(0), NodeId(0), NodeId(1));
    RemusEngine::new().migrate(&cluster, &task).unwrap();
    let committed = writer.join().unwrap();
    cluster.uninstall_fault_injector();

    // Ownership flipped and every last committed value is served.
    let owner = cluster
        .current_owner(cluster.node(NodeId(2)), ShardId(0))
        .unwrap();
    assert_eq!(owner.node, NodeId(1));
    assert!(!committed.is_empty());
    let max_cts = committed.iter().map(|(_, _, c)| *c).max().unwrap();
    let mut last: std::collections::HashMap<u64, Value> = std::collections::HashMap::new();
    for (key, value, _) in &committed {
        last.insert(*key, value.clone());
    }
    let reader = Session::connect(&cluster, NodeId(2));
    let mut txn = reader.begin_after(max_cts);
    for (key, value) in &last {
        assert_eq!(txn.read(&layout, *key).unwrap().as_ref(), Some(value));
    }
    txn.abort();
}
