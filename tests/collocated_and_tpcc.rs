//! Collocated migration (paper §3.8) and TPC-C scale-out integration: a
//! warehouse's eight shards move together and the workload keeps running.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use remus::cluster::{ClusterBuilder, Session};
use remus::common::{ClientId, NodeId, SimConfig};
use remus::migration::{MigrationEngine, MigrationTask, RemusEngine};
use remus::workload::driver::Workload;
use remus::workload::tpcc::{Tpcc, TpccConfig};

#[test]
fn collocated_warehouse_migration_under_tpcc_load() {
    let cluster = ClusterBuilder::new(3).config(SimConfig::instant()).build();
    cluster.start_maintenance(Duration::from_millis(300));
    let config = TpccConfig {
        warehouses: 6,
        districts: 2,
        customers: 10,
        items: 20,
        ..TpccConfig::default()
    };
    let tpcc = Arc::new(Tpcc::setup(&cluster, config, |w| NodeId(w % 3)));

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..3u32)
        .map(|c| {
            let cluster = Arc::clone(&cluster);
            let tpcc = Arc::clone(&tpcc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let session = Session::connect(&cluster, NodeId(c % 3));
                let mut rng = rand::rngs::SmallRng::seed_from_u64(c as u64);
                let mut commits = 0u64;
                let mut migration_aborts = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match session.run(|t| tpcc.run_once(ClientId(c), t, &mut rng)) {
                        Ok(_) => commits += 1,
                        Err(e) if e.is_migration_induced() => migration_aborts += 1,
                        Err(_) => {}
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                (commits, migration_aborts)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    // Move warehouse 0 — all eight collocated shards in one migration —
    // from node 0 to node 2.
    let shards = tpcc.warehouse_shards(0);
    assert_eq!(shards.len(), 8);
    let task = MigrationTask {
        shards: shards.clone(),
        source: NodeId(0),
        dest: NodeId(2),
    };
    let report = RemusEngine::new().migrate(&cluster, &task).unwrap();
    assert!(report.tuples_copied > 0);

    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    let mut total_commits = 0;
    let mut total_migration_aborts = 0;
    for c in clients {
        let (commits, aborts) = c.join().unwrap();
        total_commits += commits;
        total_migration_aborts += aborts;
    }
    assert!(total_commits > 0, "TPC-C clients must make progress");
    assert_eq!(
        total_migration_aborts, 0,
        "Remus must not abort TPC-C transactions"
    );

    // Collocation preserved: every shard of warehouse 0 is on node 2.
    for shard in shards {
        let owner = cluster
            .current_owner(cluster.node(NodeId(1)), shard)
            .unwrap()
            .node;
        assert_eq!(owner, NodeId(2));
        assert!(cluster.node(NodeId(2)).storage.hosts(shard));
        assert!(!cluster.node(NodeId(0)).storage.hosts(shard));
    }

    // Warehouse 0 transactions still run, now against node 2.
    let session = Session::connect(&cluster, NodeId(0));
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let mut post_commits = 0;
    for _ in 0..20 {
        if session.run(|t| tpcc.new_order(t, 0, &mut rng)).is_ok() {
            post_commits += 1;
        }
    }
    assert!(
        post_commits >= 15,
        "warehouse 0 barely works after its move: {post_commits}/20"
    );
}

#[test]
fn distributed_tpcc_transactions_survive_migration_of_remote_warehouse() {
    let cluster = ClusterBuilder::new(2).config(SimConfig::instant()).build();
    let config = TpccConfig {
        warehouses: 2,
        districts: 2,
        customers: 10,
        items: 20,
        remote_ratio: 1.0, // every payment crosses warehouses
        ..TpccConfig::default()
    };
    let tpcc = Arc::new(Tpcc::setup(&cluster, config, |w| NodeId(w % 2)));
    let session = Session::connect(&cluster, NodeId(0));
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);

    // Warm up cross-warehouse payments.
    for _ in 0..10 {
        let _ = session.run(|t| tpcc.payment(t, 0, &mut rng));
    }
    // Move warehouse 1 (the remote side) to node 0.
    let task = MigrationTask {
        shards: tpcc.warehouse_shards(1),
        source: NodeId(1),
        dest: NodeId(0),
    };
    RemusEngine::new().migrate(&cluster, &task).unwrap();
    // Cross-warehouse payments keep committing.
    let mut commits = 0;
    for _ in 0..20 {
        if session.run(|t| tpcc.payment(t, 0, &mut rng)).is_ok() {
            commits += 1;
        }
    }
    assert!(
        commits >= 15,
        "payments struggling after migration: {commits}/20"
    );
}
