//! `ShardMapCache` under planner-driven churn: the planner keeps
//! re-migrating the same hot shard in quick succession (cooldown 1 tick,
//! hairtrigger imbalance threshold), so every session's private ordered
//! cache and the nodes' read-through marks are invalidated over and over.
//! The contract under test: a *new* snapshot is never served a stale
//! owner — its reads see the freshest committed value and its writes land
//! on the owner the shard map reports — while a transaction that
//! straddles a migration keeps reading its own snapshot through the
//! read-through fallback.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::Duration;

use remus::clock::OracleKind;
use remus::cluster::{ClusterBuilder, Session};
use remus::common::{NodeId, PlannerConfig, ShardId, SimConfig, TableId, Timestamp, TxnId};
use remus::migration::{MigrationEngine, RemusEngine};
use remus::planner::{ObservationCollector, Planner};
use remus::storage::Value;

const ROUNDS: u8 = 6;
const HOT_WRITES: usize = 64;

#[test]
fn planner_churn_never_serves_a_stale_owner() {
    // GTS so a fresh session on any coordinator gets a snapshot past the
    // last commit (under DTS a stale-but-consistent snapshot is legal and
    // would fail the freshness assertions below).
    let cluster = ClusterBuilder::new(3)
        .oracle(OracleKind::Gts)
        .config(SimConfig::instant())
        .build();
    let layout = cluster.create_table(TableId(1), 0, 6, |i| NodeId(i % 3));

    // One representative key per shard, seeded so every shard exists on
    // its owner and carries at least one version.
    let writer = Session::connect(&cluster, NodeId(0));
    let mut key_of: BTreeMap<ShardId, u64> = BTreeMap::new();
    for key in 0..512u64 {
        if key_of.len() == 6 {
            break;
        }
        key_of.entry(layout.shard_for(key)).or_insert(key);
    }
    assert_eq!(key_of.len(), 6, "need a key in every shard");
    for &key in key_of.values() {
        writer
            .run(|t| t.insert(&layout, key, Value::from(vec![0])))
            .unwrap();
    }
    let hot_key = 0u64;
    let hot_shard = layout.shard_for(hot_key);

    // One move per tick, no cooldown, trigger on any imbalance. The hot
    // shard dominates the load, but its current node always keeps warmer
    // co-resident shards than the destinations (the weighted background
    // writes below), so every tick legitimately plans another move of the
    // same shard — the planner's anti-ping-pong rule stays satisfied.
    let mut config = PlannerConfig::balanced();
    config.imbalance_ratio = 1.01;
    config.cooldown_ticks = 1;
    config.max_moves_per_tick = 1;
    config.node_concurrency = 2;
    config.ewma_alpha = 1.0;
    config.cost_weight_versions = 0.0;
    config.cost_weight_wal = 0.0;
    config.colocation = false;
    config.seed = 42;
    let mut planner = Planner::new(config);
    let mut collector = ObservationCollector::new();
    let engine = RemusEngine::new();

    let mut moves = 0usize;
    for round in 1..=ROUNDS {
        for _ in 0..HOT_WRITES {
            writer
                .run(|t| t.update(&layout, hot_key, Value::from(vec![round])))
                .unwrap();
        }
        // Background warmth: shards sharing the hot shard's node get four
        // light writes, everyone else one, so moving the hot shard off its
        // node strictly improves the balance every round.
        let hot_owner = cluster
            .current_owner(cluster.node(NodeId(0)), hot_shard)
            .unwrap()
            .node;
        for (&shard, &key) in &key_of {
            if shard == hot_shard {
                continue;
            }
            let owner = cluster
                .current_owner(cluster.node(NodeId(0)), shard)
                .unwrap()
                .node;
            let weight = if owner == hot_owner { 4 } else { 1 };
            for _ in 0..weight {
                writer
                    .run(|t| t.update(&layout, key, Value::from(vec![round])))
                    .unwrap();
            }
        }

        let obs = collector.collect(&cluster, 1.0);
        let tick = planner.decide(&obs);
        assert!(
            !tick.decisions.is_empty(),
            "round {round}: the planner stopped churning"
        );

        // A transaction that begins before the migration and commits after
        // it must read its own snapshot both times: during dual execution
        // the shard still routes to the source for this begin_ts via the
        // read-through path. It runs in a thread because the engine's
        // dual-execution drain blocks until this snapshot retires.
        let (started_tx, started_rx) = mpsc::channel();
        let straddler = {
            let cluster = std::sync::Arc::clone(&cluster);
            std::thread::spawn(move || {
                let session = Session::connect(&cluster, NodeId(2));
                let mut txn = session.begin();
                let before = txn.read(&layout, hot_key).unwrap();
                started_tx.send(()).unwrap();
                // Long enough that T_m commits while this snapshot is live.
                std::thread::sleep(Duration::from_millis(10));
                let after = txn.read(&layout, hot_key).unwrap();
                txn.commit().unwrap();
                (before, after)
            })
        };
        started_rx.recv().unwrap();

        for decision in &tick.decisions {
            let remus::planner::Action::Migrate(task) = &decision.action else {
                panic!("round {round}: expected a migration, got {decision:?}");
            };
            assert_eq!(
                task.shards,
                vec![hot_shard],
                "round {round}: churn must keep targeting the hot shard"
            );
            engine.migrate(&cluster, task).unwrap();
            moves += 1;
        }

        let (before, after) = straddler.join().unwrap();
        assert_eq!(
            before,
            Some(Value::from(vec![round])),
            "round {round}: straddling snapshot began stale"
        );
        assert_eq!(
            after, before,
            "round {round}: straddling snapshot changed across the flip"
        );

        // Every coordinator's next snapshot must follow the flip: reads see
        // the freshest value (the stale source dropped its copy, so stale
        // routing would error, not just return old data), and writes land
        // on the owner the map reports.
        let owner = cluster
            .current_owner(cluster.node(NodeId(0)), hot_shard)
            .unwrap()
            .node;
        let mut last = Value::from(vec![round]);
        for c in 0..3u32 {
            let session = Session::connect(&cluster, NodeId(c));
            let (v, _) = session.run(|t| t.read(&layout, hot_key)).unwrap();
            assert_eq!(
                v,
                Some(last.clone()),
                "round {round}: coordinator {c} was served a stale owner"
            );
            let tagged = Value::from(vec![round, c as u8]);
            session
                .run(|t| t.update(&layout, hot_key, tagged.clone()))
                .unwrap();
            let on_owner = cluster
                .node(owner)
                .storage
                .table(hot_shard)
                .unwrap()
                .read(
                    hot_key,
                    Timestamp::MAX,
                    TxnId::INVALID,
                    &cluster.node(owner).storage.clog,
                    Duration::from_secs(1),
                )
                .unwrap();
            assert_eq!(
                on_owner,
                Some(tagged.clone()),
                "round {round}: coordinator {c} wrote through a stale owner"
            );
            last = tagged;
        }
    }
    assert!(
        moves >= ROUNDS as usize,
        "expected at least one migration per round, got {moves}"
    );
}
