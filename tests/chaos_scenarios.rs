//! Seeded chaos scenarios over all four migration engines.
//!
//! Each seed deterministically derives the engine, the timestamp oracle,
//! the fault profile (tolerated faults vs. a `T_m` coordinator crash), the
//! network perturbation, and the client workload. The recorded history must
//! satisfy snapshot isolation, monotone routing, and committed-data
//! preservation for every seed. Split by engine residue so the four suites
//! run in parallel.

use remus::chaos::{run_scenario, EngineKind, FaultProfile, ScenarioConfig};

const SEEDS_PER_ENGINE: u64 = 6;

fn run_residue(residue: u64, engine: EngineKind) {
    for i in 0..SEEDS_PER_ENGINE {
        let seed = i * 4 + residue;
        let config = ScenarioConfig::from_seed(seed);
        assert_eq!(config.engine, engine);
        let outcome = run_scenario(&config);
        assert!(
            outcome.passed(),
            "seed {seed} ({} / {:?} / {:?}): {:#?}",
            engine.name(),
            config.oracle,
            config.profile,
            outcome.violations
        );
        assert!(
            outcome.committed > 0,
            "seed {seed}: no transaction committed"
        );
    }
}

#[test]
fn chaos_seeds_remus() {
    run_residue(0, EngineKind::Remus);
}

#[test]
fn chaos_seeds_lock_and_abort() {
    run_residue(1, EngineKind::LockAndAbort);
}

#[test]
fn chaos_seeds_wait_and_remaster() {
    run_residue(2, EngineKind::WaitAndRemaster);
}

#[test]
fn chaos_seeds_squall() {
    run_residue(3, EngineKind::Squall);
}

/// Parallel data plane under copy-worker crashes: for every tolerated-fault
/// seed of the push engines (Squall pulls, it has no chunked snapshot
/// copy), run with a 4-wide copy/replay pool and a chunk size small enough
/// to give every shard several chunks, and crash a copy worker mid-chunk
/// twice. The chunk retry must absorb the crashes, the migration must
/// commit, and the history must still satisfy SI.
#[test]
fn parallel_copy_worker_crashes_preserve_si() {
    use remus::chaos::{run_scenario_with_specs, FaultPlan, FaultSpec};
    use remus::common::fault::{FaultAction, InjectionPoint};
    use remus::common::{NodeId, ParallelismConfig};

    let push = [
        EngineKind::Remus,
        EngineKind::LockAndAbort,
        EngineKind::WaitAndRemaster,
    ];
    let mut ran = 0;
    for seed in 0..16u64 {
        let mut config = ScenarioConfig::from_seed(seed);
        if config.profile != FaultProfile::Tolerated || !push.contains(&config.engine) {
            continue;
        }
        config.parallelism = ParallelismConfig {
            copy_workers: 4,
            replay_workers: 4,
            chunk_size: 8,
            drain_batch: 4,
        };
        let plan = FaultPlan::generate(seed, config.profile, NodeId(0), NodeId(1));
        // Replace any seeded copy-chunk kills with exactly two worker
        // crashes, so every seed exercises the mid-chunk retry and the
        // total stays inside the 4-attempt-per-chunk budget.
        let mut specs: Vec<FaultSpec> = plan
            .specs
            .iter()
            .filter(|s| {
                s.point != InjectionPoint::CopyChunk
                    || !matches!(s.action, FaultAction::Fail | FaultAction::Crash)
            })
            .copied()
            .collect();
        for occurrence in [0u32, 3] {
            specs.push(FaultSpec {
                point: InjectionPoint::CopyChunk,
                node: NodeId(0),
                occurrence,
                action: FaultAction::Crash,
            });
        }
        let outcome = run_scenario_with_specs(&config, &plan, &specs);
        assert!(
            outcome.passed(),
            "seed {seed} ({} / parallel, crashed copy workers): {:#?}",
            config.engine.name(),
            outcome.violations
        );
        assert!(
            outcome.migration_committed,
            "seed {seed}: migration did not commit under copy-worker crashes"
        );
        ran += 1;
    }
    assert!(ran >= 8, "only {ran} parallel crash seeds ran");
}

/// Same seed, run twice: identical fault schedule, identical verdict. One
/// tolerated-profile seed and one `T_m`-crash seed.
#[test]
fn same_seed_reproduces_schedule_and_verdict() {
    for seed in [3u64, 4] {
        let config = ScenarioConfig::from_seed(seed);
        let first = run_scenario(&config);
        let second = run_scenario(&config);
        assert_eq!(first.plan, second.plan, "seed {seed}: schedule diverged");
        assert_eq!(
            first.passed(),
            second.passed(),
            "seed {seed}: verdict diverged"
        );
        assert_eq!(
            first.migration_committed, second.migration_committed,
            "seed {seed}: migration fate diverged"
        );
    }
    // The pair covers both profiles.
    assert_eq!(
        ScenarioConfig::from_seed(3).profile,
        FaultProfile::Tolerated
    );
    assert_eq!(ScenarioConfig::from_seed(4).profile, FaultProfile::CrashTm);
}
