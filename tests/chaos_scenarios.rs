//! Seeded chaos scenarios over all four migration engines.
//!
//! Each seed deterministically derives the engine, the timestamp oracle,
//! the fault profile (tolerated faults vs. a `T_m` coordinator crash), the
//! network perturbation, and the client workload. The recorded history must
//! satisfy snapshot isolation, monotone routing, and committed-data
//! preservation for every seed. Split by engine residue so the four suites
//! run in parallel.

use remus::chaos::{run_scenario, EngineKind, FaultProfile, ScenarioConfig};

const SEEDS_PER_ENGINE: u64 = 6;

fn run_residue(residue: u64, engine: EngineKind) {
    for i in 0..SEEDS_PER_ENGINE {
        let seed = i * 4 + residue;
        let config = ScenarioConfig::from_seed(seed);
        assert_eq!(config.engine, engine);
        let outcome = run_scenario(&config);
        assert!(
            outcome.passed(),
            "seed {seed} ({} / {:?} / {:?}): {:#?}",
            engine.name(),
            config.oracle,
            config.profile,
            outcome.violations
        );
        assert!(
            outcome.committed > 0,
            "seed {seed}: no transaction committed"
        );
    }
}

#[test]
fn chaos_seeds_remus() {
    run_residue(0, EngineKind::Remus);
}

#[test]
fn chaos_seeds_lock_and_abort() {
    run_residue(1, EngineKind::LockAndAbort);
}

#[test]
fn chaos_seeds_wait_and_remaster() {
    run_residue(2, EngineKind::WaitAndRemaster);
}

#[test]
fn chaos_seeds_squall() {
    run_residue(3, EngineKind::Squall);
}

/// Same seed, run twice: identical fault schedule, identical verdict. One
/// tolerated-profile seed and one `T_m`-crash seed.
#[test]
fn same_seed_reproduces_schedule_and_verdict() {
    for seed in [3u64, 4] {
        let config = ScenarioConfig::from_seed(seed);
        let first = run_scenario(&config);
        let second = run_scenario(&config);
        assert_eq!(first.plan, second.plan, "seed {seed}: schedule diverged");
        assert_eq!(
            first.passed(),
            second.passed(),
            "seed {seed}: verdict diverged"
        );
        assert_eq!(
            first.migration_committed, second.migration_committed,
            "seed {seed}: migration fate diverged"
        );
    }
    // The pair covers both profiles.
    assert_eq!(
        ScenarioConfig::from_seed(3).profile,
        FaultProfile::Tolerated
    );
    assert_eq!(ScenarioConfig::from_seed(4).profile, FaultProfile::CrashTm);
}
