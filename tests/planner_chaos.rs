//! Seeded chaos over the elasticity autopilot (planner mode).
//!
//! Unlike `chaos_scenarios.rs`, where the migration is fixed by the
//! harness, here the *planner chooses every migration* from load it
//! measured itself: each seed runs four measure → plan → execute rounds,
//! with a seeded fault plan and racing writer threads around every chosen
//! migration. The recorded history must satisfy snapshot isolation with
//! one routing spec per autopilot move, committed data must survive every
//! move, and — the planner-specific contract — replaying a seed must
//! reproduce the decision list verbatim.
//!
//! Seeds are split by engine residue (`seed % 3` picks the push engine)
//! so the three suites run in parallel; the oracle alternates GTS/DTS
//! across engine cycles (`seed / 3`).

use remus::chaos::planner_mode::{run_planner_scenario, PlannerScenarioConfig};
use remus::chaos::runner::EngineKind;

/// Seeds per engine residue; 3 residues × 4 = 12 scenarios total.
const SEEDS_PER_ENGINE: u64 = 4;

fn run_residue(residue: u64, engine: EngineKind) {
    for i in 0..SEEDS_PER_ENGINE {
        let seed = i * 3 + residue;
        let config = PlannerScenarioConfig::from_seed(seed);
        assert_eq!(config.engine, engine);
        let outcome = run_planner_scenario(&config);
        assert!(
            outcome.passed(),
            "seed {seed} ({} / {:?}): {:#?}",
            engine.name(),
            config.oracle,
            outcome.violations
        );
        assert!(
            !outcome.decisions.is_empty(),
            "seed {seed}: the planner never tripped on the hot node"
        );
        assert_eq!(outcome.decisions.len(), outcome.migrations.len());
        assert!(
            outcome.migrations.iter().all(|m| m.committed),
            "seed {seed}: an autopilot-chosen migration failed outright"
        );
        assert!(
            outcome.committed > 0,
            "seed {seed}: no writer transaction committed"
        );
    }
}

#[test]
fn planner_chaos_seeds_remus() {
    run_residue(0, EngineKind::Remus);
}

#[test]
fn planner_chaos_seeds_lock_and_abort() {
    run_residue(1, EngineKind::LockAndAbort);
}

#[test]
fn planner_chaos_seeds_wait_and_remaster() {
    run_residue(2, EngineKind::WaitAndRemaster);
}

/// The determinism contract: same seed, same decisions — byte-for-byte.
/// One replayed seed per engine, including the engine that aborts
/// conflicting writers (whose abort pattern must *not* leak into the
/// planner's measured input).
#[test]
fn planner_decisions_replay_identically() {
    for seed in [0u64, 1, 2] {
        let config = PlannerScenarioConfig::from_seed(seed);
        let a = run_planner_scenario(&config);
        let b = run_planner_scenario(&config);
        assert_eq!(
            a.decisions, b.decisions,
            "seed {seed}: decision replay diverged"
        );
        assert!(a.passed() && b.passed());
    }
}
