//! The paper's consistency probe (hybrid workload B): the analytical
//! duplicate-primary-key check must pass during and after consolidation,
//! and batch ingestion must survive every engine's migrations.

use std::sync::Arc;
use std::time::Duration;

use remus::cluster::{CcMode, ClusterBuilder, Session};
use remus::common::{NodeId, SimConfig};
use remus::migration::{
    LockAndAbort, MigrationController, MigrationEngine, MigrationPlan, RemusEngine, SquallEngine,
    WaitAndRemaster,
};
use remus::workload::hybrid::{AnalyticalClient, BatchIngest};
use remus::workload::ycsb::{Ycsb, YcsbConfig};

fn consolidation_with_ingest(engine: Arc<dyn MigrationEngine>, cc: CcMode) {
    let cluster = ClusterBuilder::new(3)
        .cc_mode(cc)
        .config(SimConfig::instant())
        .build();
    cluster.start_maintenance(Duration::from_millis(300));
    let ycsb = Ycsb::setup(
        &cluster,
        YcsbConfig {
            shards: 9,
            keys: 1_800,
            ..YcsbConfig::default()
        },
    );
    let layout = ycsb.layout;

    // Ingestion runs concurrently with the consolidation.
    let ingest_handle = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            BatchIngest::new(layout, 1_800, 2_000, 4, 16)
                .with_pause(Duration::from_millis(50))
                .run(&cluster, NodeId(1), None)
        })
    };
    std::thread::sleep(Duration::from_millis(20));

    let name = engine.name();
    let plan = MigrationPlan::consolidate(&cluster, NodeId(0), 1);
    let controller = MigrationController::new(Arc::clone(&cluster), engine);
    controller
        .run_plan(&plan, |_, _| {})
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let ingest = ingest_handle.join().unwrap();
    assert_eq!(
        ingest.committed, 4,
        "{name}: every batch must eventually commit"
    );

    // No duplicate primary keys anywhere; every committed tuple present.
    // Count via the ingest's own coordinator: its clock has observed every
    // ingest commit, so the snapshot is guaranteed fresh under DTS.
    let analytical = AnalyticalClient { layout };
    let distinct = analytical
        .check_consistency(&cluster, NodeId(1))
        .unwrap_or_else(|e| panic!("{name}: consistency check failed: {e}"));
    assert_eq!(
        distinct,
        1_800 + 4 * 2_000,
        "{name}: tuples missing after consolidation"
    );
    assert!(cluster.node(NodeId(0)).data_shards().is_empty());

    // A follow-up workload still runs cleanly.
    let session = Session::connect(&cluster, NodeId(1));
    for k in 0..50u64 {
        session
            .run(|t| t.update(&layout, k, remus::storage::Value::from(vec![9u8; 16])))
            .unwrap_or_else(|e| panic!("{name}: post-migration update failed: {e}"));
    }
}

#[test]
fn remus_consolidation_is_consistent() {
    consolidation_with_ingest(Arc::new(RemusEngine::new()), CcMode::Mvcc);
}

#[test]
fn lock_and_abort_consolidation_is_consistent() {
    consolidation_with_ingest(Arc::new(LockAndAbort::new()), CcMode::Mvcc);
}

#[test]
fn wait_and_remaster_consolidation_is_consistent() {
    consolidation_with_ingest(Arc::new(WaitAndRemaster::new()), CcMode::Mvcc);
}

#[test]
fn squall_consolidation_is_consistent() {
    consolidation_with_ingest(Arc::new(SquallEngine::new()), CcMode::ShardLock);
}

/// Remus specifically: zero ingestion aborts (the headline Table 2 row).
#[test]
fn remus_ingestion_never_aborts() {
    let cluster = ClusterBuilder::new(3).config(SimConfig::instant()).build();
    cluster.start_maintenance(Duration::from_millis(300));
    let ycsb = Ycsb::setup(
        &cluster,
        YcsbConfig {
            shards: 9,
            keys: 900,
            ..YcsbConfig::default()
        },
    );
    let layout = ycsb.layout;
    let ingest_handle = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            BatchIngest::new(layout, 900, 3_000, 3, 16).run(&cluster, NodeId(0), None)
        })
    };
    std::thread::sleep(Duration::from_millis(10));
    let plan = MigrationPlan::consolidate(&cluster, NodeId(0), 1);
    let controller = MigrationController::new(Arc::clone(&cluster), Arc::new(RemusEngine::new()));
    controller.run_plan(&plan, |_, _| {}).unwrap();
    let ingest = ingest_handle.join().unwrap();
    assert_eq!(
        ingest.aborted_attempts, 0,
        "Remus must never abort the ingestion"
    );
    assert_eq!(ingest.abort_ratio, 0.0);
}
