//! Hybrid workload A in miniature: a real-time batch-ingestion pipeline
//! keeps appending monotonically-keyed tuples (2PC across all nodes) while
//! Remus migrates shards out from under it — the ingestion never aborts.
//!
//! Run with: `cargo run --release --example hybrid_ingestion`

use std::sync::Arc;
use std::time::Duration;

use remus::cluster::ClusterBuilder;
use remus::common::{NodeId, SimConfig};
use remus::migration::{MigrationController, MigrationPlan, RemusEngine};
use remus::workload::hybrid::{AnalyticalClient, BatchIngest};
use remus::workload::ycsb::{Ycsb, YcsbConfig};

fn main() {
    let cluster = ClusterBuilder::new(3).config(SimConfig::instant()).build();
    cluster.start_maintenance(Duration::from_millis(500));
    let ycsb = Ycsb::setup(
        &cluster,
        YcsbConfig {
            shards: 12,
            keys: 3_000,
            ..YcsbConfig::default()
        },
    );
    let layout = ycsb.layout;

    // The ingestion client: 6 batches of 5000 tuples, keys continuing
    // after the loaded data, committed with 2PC across all three nodes.
    let ingest_handle = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            BatchIngest::new(layout, 3_000, 5_000, 6, 32)
                .with_pause(Duration::from_millis(100))
                .run(&cluster, NodeId(1), None)
        })
    };

    // Meanwhile, consolidate node 0 away with Remus.
    std::thread::sleep(Duration::from_millis(50));
    let plan = MigrationPlan::consolidate(&cluster, NodeId(0), 2);
    let controller = MigrationController::new(Arc::clone(&cluster), Arc::new(RemusEngine::new()));
    let reports = controller.run_plan(&plan, |i, r| {
        println!(
            "migration {i}: {} tuples copied, {} records replayed, {:?}",
            r.tuples_copied, r.records_replayed, r.total
        );
    });
    reports.expect("consolidation failed");

    let report = ingest_handle.join().unwrap();
    println!(
        "ingestion: {} batches committed, {} aborted attempts (abort ratio {:.0}%)",
        report.committed,
        report.aborted_attempts,
        report.abort_ratio * 100.0
    );
    assert_eq!(
        report.aborted_attempts, 0,
        "Remus must not abort the ingestion"
    );

    // The paper's consistency probe: no duplicate primary keys anywhere.
    // Count through the ingest's coordinator: under DTS another node's
    // session may get a (legitimately) stale snapshot within clock skew.
    let analytical = AnalyticalClient { layout };
    let distinct = analytical
        .check_consistency(&cluster, NodeId(1))
        .expect("consistency check");
    println!("consistency check passed: {distinct} distinct keys (3000 loaded + 30000 ingested)");
    assert_eq!(distinct, 33_000);
}
