//! Quickstart: build a two-node cluster, load a sharded table, and move a
//! shard with Remus while a client keeps reading and writing — with zero
//! aborts and no downtime.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use remus::cluster::{ClusterBuilder, Session};
use remus::common::{NodeId, ShardId, TableId};
use remus::migration::{MigrationEngine, MigrationTask, RemusEngine};
use remus::storage::Value;

fn main() {
    // A two-node cluster with the decentralized timestamp scheme (DTS).
    let cluster = ClusterBuilder::new(2).build();

    // One user table with four shards, all initially on node 0.
    let layout = cluster.create_table(TableId(1), 0, 4, |_| NodeId(0));

    // Load some data through ordinary transactions.
    let session = Session::connect(&cluster, NodeId(0));
    for key in 0..1_000u64 {
        session
            .run(|txn| txn.insert(&layout, key, Value::from(vec![b'x'; 32])))
            .expect("load failed");
    }
    println!("loaded 1000 tuples across 4 shards on node 0");

    // A client hammers the table from node 1 while the migration runs.
    let stop = Arc::new(AtomicBool::new(false));
    let client = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let session = Session::connect(&cluster, NodeId(1));
            let mut ops = 0u64;
            let mut failures = 0u64;
            let mut key = 0u64;
            while !stop.load(Ordering::Relaxed) {
                key = (key + 7) % 1_000;
                let r = session.run(|txn| {
                    txn.read(&layout, key)?;
                    txn.update(&layout, key, Value::from(vec![b'y'; 32]))
                });
                match r {
                    Ok(_) => ops += 1,
                    Err(_) => failures += 1,
                }
                std::thread::sleep(Duration::from_micros(300));
            }
            (ops, failures)
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // Live-migrate shard 0 from node 0 to node 1 with Remus.
    let engine = RemusEngine::new();
    let task = MigrationTask::single(ShardId(0), NodeId(0), NodeId(1));
    let report = engine.migrate(&cluster, &task).expect("migration failed");
    println!(
        "migrated shard 0: {} tuples copied, {} change records replayed, \
         {} validation conflicts, {:?} total",
        report.tuples_copied, report.records_replayed, report.validation_conflicts, report.total
    );

    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    let (ops, failures) = client.join().unwrap();
    println!("client committed {ops} transactions with {failures} failures during the move");
    assert_eq!(failures, 0, "Remus must not abort any client transaction");

    // The shard now lives on node 1; all data is still reachable.
    assert!(cluster.node(NodeId(1)).storage.hosts(ShardId(0)));
    assert!(!cluster.node(NodeId(0)).storage.hosts(ShardId(0)));
    let (rows, _) = session
        .run(|txn| txn.scan_table(&layout))
        .expect("scan failed");
    assert_eq!(rows.len(), 1_000);
    println!("all 1000 tuples reachable after the migration — done");
}
