//! Cluster consolidation under load: drain one node of a six-node cluster
//! while YCSB clients keep running, once with Remus and once with the
//! lock-and-abort baseline, and compare the damage.
//!
//! Run with: `cargo run --release --example live_consolidation`

use std::sync::Arc;
use std::time::Duration;

use remus::cluster::ClusterBuilder;
use remus::common::{NodeId, SimConfig};
use remus::migration::{
    LockAndAbort, MigrationController, MigrationEngine, MigrationPlan, RemusEngine,
};
use remus::workload::driver::Driver;
use remus::workload::ycsb::{Ycsb, YcsbConfig};

fn consolidate(engine: Arc<dyn MigrationEngine>) {
    let cluster = ClusterBuilder::new(6).config(SimConfig::instant()).build();
    cluster.start_maintenance(Duration::from_millis(500));
    let ycsb = Arc::new(Ycsb::setup(
        &cluster,
        YcsbConfig {
            shards: 36,
            keys: 9_000,
            ..YcsbConfig::default()
        },
    ));

    let driver = Driver::start_with_think(
        &cluster,
        6,
        Duration::from_micros(500),
        Arc::clone(&ycsb) as _,
    );
    driver.run_for(Duration::from_secs(1));

    // Remove node 0: move all of its shards to the other five nodes.
    let name = engine.name();
    let plan = MigrationPlan::consolidate(&cluster, NodeId(0), 2);
    let migrations = plan.len();
    let controller = MigrationController::new(Arc::clone(&cluster), engine);
    driver.metrics.set_migration_active(true);
    controller
        .run_plan(&plan, |_, _| {})
        .expect("consolidation failed");
    driver.metrics.set_migration_active(false);

    driver.run_for(Duration::from_secs(1));
    let metrics = driver.stop();
    println!(
        "{name:>18}: {migrations} migrations | commits={} | migration-induced aborts={} | \
         ww aborts={} | latency increase={:.2} ms",
        metrics.counters.commits(),
        metrics.counters.migration_aborts(),
        metrics.counters.ww_aborts(),
        metrics.latency_increase().as_secs_f64() * 1e3,
    );
    assert!(
        cluster.node(NodeId(0)).data_shards().is_empty(),
        "node 0 must end empty"
    );
}

fn main() {
    println!("consolidating a six-node cluster down to five, under YCSB load:");
    consolidate(Arc::new(RemusEngine::new()));
    consolidate(Arc::new(LockAndAbort::new()));
    println!("note: Remus reports zero migration-induced aborts; lock-and-abort may not.");
}
