//! Load balancing a skewed workload: a Zipfian YCSB load hammers hot
//! shards piled on one node; Remus spreads them over the cluster and the
//! throughput rises — with zero migration-induced aborts.
//!
//! Run with: `cargo run --release --example load_balancing`

use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use remus::cluster::ClusterBuilder;
use remus::common::{NodeId, ShardId, SimConfig};
use remus::migration::{MigrationController, MigrationPlan, RemusEngine};
use remus::shard::key_hash;
use remus::workload::driver::Driver;
use remus::workload::ycsb::{KeyDistribution, Ycsb, YcsbConfig, Zipfian};

fn main() {
    let cluster = ClusterBuilder::new(4).config(SimConfig::instant()).build();
    cluster.start_maintenance(Duration::from_millis(500));
    let config = YcsbConfig {
        shards: 16,
        keys: 8_000,
        distribution: KeyDistribution::Zipfian(0.99),
        ..YcsbConfig::default()
    };

    // Find the hot shards of the access pattern and pile them on node 0.
    let probe_layout =
        remus::shard::TableLayout::new(config.table, config.base_shard, config.shards);
    let zipf = Zipfian::new(config.keys, 0.99);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let mut hits = vec![0u64; config.shards as usize];
    for _ in 0..50_000 {
        let key = key_hash(zipf.sample(&mut rng)) % config.keys;
        hits[(probe_layout.shard_for(key).0) as usize] += 1;
    }
    let mut order: Vec<u32> = (0..config.shards).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(hits[i as usize]));
    let hot: Vec<u32> = order[..6].to_vec();
    println!("hot shards (by sampled hits): {hot:?}");

    let ycsb = Arc::new(Ycsb::setup_with_placement(&cluster, config, |i| {
        if hot.contains(&i) {
            NodeId(0)
        } else {
            NodeId(1 + i % 3)
        }
    }));

    let driver = Driver::start_with_think(
        &cluster,
        8,
        Duration::from_micros(400),
        Arc::clone(&ycsb) as _,
    );
    driver.run_for(Duration::from_secs(2));
    let before = driver.metrics.counters.commits();

    // Spread four of the six hot shards over the other nodes.
    let shards: Vec<ShardId> = hot[..4].iter().map(|&i| ShardId(i as u64)).collect();
    let plan =
        MigrationPlan::move_shards(&shards, NodeId(0), &[NodeId(1), NodeId(2), NodeId(3)], 2);
    let controller = MigrationController::new(Arc::clone(&cluster), Arc::new(RemusEngine::new()));
    driver.metrics.set_migration_active(true);
    controller
        .run_plan(&plan, |_, _| {})
        .expect("load balancing failed");
    driver.metrics.set_migration_active(false);

    driver.run_for(Duration::from_secs(2));
    let metrics = driver.stop();
    let after = metrics.counters.commits() - before;
    println!(
        "commits: {before} in the 2s before balancing, {after} in the ~2s after \
         (plus the balancing window)"
    );
    println!(
        "migration-induced aborts: {} (must be 0), ww aborts: {}",
        metrics.counters.migration_aborts(),
        metrics.counters.ww_aborts()
    );
    assert_eq!(metrics.counters.migration_aborts(), 0);
}
