#![warn(missing_docs)]

//! Remus — live shard migration for shared-nothing distributed databases
//! with snapshot isolation.
//!
//! This is the façade crate: it re-exports the public API of the whole
//! workspace so applications (and the `examples/` directory) can depend on a
//! single crate. See the README for a tour and `DESIGN.md` for the mapping
//! from the SIGMOD 2022 paper to modules.
//!
//! ```
//! // The workspace builds a full simulated cluster; see examples/quickstart.rs.
//! use remus::common::SimConfig;
//! let cfg = SimConfig::instant();
//! assert_eq!(cfg.network_latency, std::time::Duration::ZERO);
//! ```

pub use remus_chaos as chaos;
pub use remus_clock as clock;
pub use remus_cluster as cluster;
pub use remus_common as common;
pub use remus_core as migration;
pub use remus_planner as planner;
pub use remus_shard as shard;
pub use remus_storage as storage;
pub use remus_txn as txn;
pub use remus_wal as wal;
pub use remus_workload as workload;
