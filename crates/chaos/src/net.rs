//! A fault-injecting [`Network`] implementation.
//!
//! [`FaultyNetwork`] wraps the cluster's network cost model and perturbs
//! every cross-node hop with seeded per-link jitter plus transient
//! partitions. `Network::hop` is synchronous (it cannot drop or duplicate a
//! message — higher layers assume reliable delivery), so both jitter and
//! partitions are expressed as extra delay. Jitter still *reorders*
//! concurrently in-flight messages: two threads hopping the same link can
//! overtake each other inside the jitter window, which is exactly the
//! reordering chaos tests want.
//!
//! All randomness comes from a [`SmallRng`] seeded at construction; the hop
//! *sequence* per link is counted, so a partition is "hops 4..9 of link
//! (0,1) take +15 ms" — deterministic in the link's traffic ordinal, not in
//! wall-clock time.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use remus_common::NodeId;
use remus_txn::Network;

/// A transient one-directional link partition: hops `start..start+len` of
/// the link each pay `delay` extra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// First affected hop ordinal on the link (0-based).
    pub start: u64,
    /// Number of affected hops.
    pub len: u64,
    /// Extra delay per affected hop.
    pub delay: Duration,
}

/// Seeded jitter + transient partitions over an inner network.
pub struct FaultyNetwork {
    inner: Box<dyn Network>,
    max_jitter_us: u64,
    partitions: Vec<Partition>,
    state: Mutex<NetState>,
}

struct NetState {
    rng: SmallRng,
    hop_counts: HashMap<(NodeId, NodeId), u64>,
}

impl FaultyNetwork {
    /// Wraps `inner` with explicit jitter bound and partitions.
    pub fn new(
        inner: Box<dyn Network>,
        seed: u64,
        max_jitter: Duration,
        partitions: Vec<Partition>,
    ) -> FaultyNetwork {
        FaultyNetwork {
            inner,
            max_jitter_us: max_jitter.as_micros() as u64,
            partitions,
            state: Mutex::new(NetState {
                rng: SmallRng::seed_from_u64(seed.wrapping_mul(0xa076_1d64_78bd_642f) ^ 0x7e7),
                hop_counts: HashMap::new(),
            }),
        }
    }

    /// Derives a network from a seed: up to 500 µs of per-hop jitter and
    /// 0..3 transient partitions of 5–20 ms over the first ~40 hops of
    /// random links among `nodes`. Delays are bounded well below the
    /// cluster's lock-wait timeout so they perturb interleavings without
    /// tripping timeout guards.
    pub fn from_seed(seed: u64, nodes: u32) -> FaultyNetwork {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xd6e8_feb8_6659_fd93) ^ 0xca0);
        let mut partitions = Vec::new();
        for _ in 0..rng.gen_range(0..3usize) {
            let from = NodeId(rng.gen_range(0..nodes));
            let mut to = NodeId(rng.gen_range(0..nodes));
            if to == from {
                to = NodeId((to.0 + 1) % nodes);
            }
            partitions.push(Partition {
                from,
                to,
                start: rng.gen_range(0..40u64),
                len: rng.gen_range(1..6u64),
                delay: Duration::from_millis(rng.gen_range(5..20u64)),
            });
        }
        FaultyNetwork::new(
            Box::new(remus_txn::NoNetwork),
            seed,
            Duration::from_micros(500),
            partitions,
        )
    }

    /// The configured partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }
}

impl Network for FaultyNetwork {
    fn hop(&self, from: NodeId, to: NodeId) {
        if from == to {
            return;
        }
        let mut extra = Duration::ZERO;
        {
            let mut state = self.state.lock();
            let count = state.hop_counts.entry((from, to)).or_insert(0);
            let ordinal = *count;
            *count += 1;
            for p in &self.partitions {
                if p.from == from && p.to == to && ordinal >= p.start && ordinal < p.start + p.len {
                    extra += p.delay;
                }
            }
            if self.max_jitter_us > 0 {
                extra += Duration::from_micros(state.rng.gen_range(0..=self.max_jitter_us));
            }
        }
        if !extra.is_zero() {
            std::thread::sleep(extra);
        }
        self.inner.hop(from, to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_partitions() {
        let a = FaultyNetwork::from_seed(7, 3);
        let b = FaultyNetwork::from_seed(7, 3);
        assert_eq!(a.partitions(), b.partitions());
    }

    #[test]
    fn partitions_never_self_loop() {
        for seed in 0..60u64 {
            for p in FaultyNetwork::from_seed(seed, 3).partitions() {
                assert_ne!(p.from, p.to);
            }
        }
    }

    #[test]
    fn partition_window_delays_matching_hops() {
        let net = FaultyNetwork::new(
            Box::new(remus_txn::NoNetwork),
            1,
            Duration::ZERO,
            vec![Partition {
                from: NodeId(0),
                to: NodeId(1),
                start: 1,
                len: 1,
                delay: Duration::from_millis(15),
            }],
        );
        let t0 = std::time::Instant::now();
        net.hop(NodeId(0), NodeId(1)); // ordinal 0: free
        let fast = t0.elapsed();
        let t1 = std::time::Instant::now();
        net.hop(NodeId(0), NodeId(1)); // ordinal 1: partitioned
        let slow = t1.elapsed();
        assert!(fast < Duration::from_millis(10));
        assert!(slow >= Duration::from_millis(14));
        // Local hops are always free and do not advance link counters.
        let t2 = std::time::Instant::now();
        net.hop(NodeId(0), NodeId(0));
        assert!(t2.elapsed() < Duration::from_millis(5));
    }
}
