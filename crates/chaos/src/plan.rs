//! Seeded fault plans.
//!
//! A [`FaultPlan`] is a finite list of [`FaultSpec`]s generated
//! deterministically from a seed: "at the 3rd visit of `PropagationShip` on
//! node 0, delay 4 ms". The [`PlanInjector`] counts visits per
//! `(point, node)` pair and fires the matching spec, so the *schedule* of
//! faults is a pure function of the seed and of how often each seam is
//! visited — never of wall-clock time.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use remus_common::fault::{FaultAction, FaultInjector, InjectionPoint};
use remus_common::NodeId;

/// One scheduled fault: the `occurrence`-th visit (0-based) of `point` on
/// `node` performs `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which seam fires.
    pub point: InjectionPoint,
    /// On which node's visit.
    pub node: NodeId,
    /// Which visit (0-based occurrence count) of `(point, node)` fires.
    pub occurrence: u32,
    /// What happens at that visit.
    pub action: FaultAction,
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{}#{} -> {:?}",
            self.point, self.node, self.occurrence, self.action
        )
    }
}

/// Which family of faults a plan draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// Faults every engine must tolerate without violating SI or losing
    /// data: propagation lag, replay-worker stalls, a widened sync-barrier
    /// window, a slowed snapshot copy, slowed MOCC validation, plus a
    /// possible clock-skew spike. The migration is expected to succeed.
    Tolerated,
    /// Exactly one crash of the `T_m` coordinator at a seeded 2PC step
    /// (before prepare / after prepare / before commit / after the first
    /// participant commit). Recovery must resolve the in-doubt `T_m` and
    /// the history must still check out.
    CrashTm,
    /// Exactly one whole-node crash-restart of the migration source or
    /// destination at a seeded stage of the copy/catch-up pipeline
    /// (encoded in the spec's `occurrence`: 0 = before the snapshot copy,
    /// 1 = after it, 2 = after post-copy catch-up traffic). The node is
    /// rebuilt from its on-disk WAL via `Cluster::restart_node` and a
    /// fresh engine must then complete the migration with SI intact.
    CrashRestart,
    /// Replica chaos: the canonical 4-node replica scenario (primaries
    /// 0–2, replica 3) runs a WAL-shipped replica while a live Remus
    /// migration moves a shard between primaries. Ship batches are
    /// delayed, reordered (`Fail` holds a batch until after its
    /// successor, then retransmits), and duplicated (`Crash`); the
    /// replica applier is stalled; and about two in five seeds also
    /// crash-restart the replica mid-backfill (a `CrashRestart` spec on
    /// the replica node), forcing a from-scratch re-bootstrap. Every
    /// fault is tolerated: the SI oracle and the replica-staleness
    /// oracle must both stay green.
    Replica,
}

/// The replica node of the canonical [`FaultProfile::Replica`] scenario
/// (4 nodes: primaries 0–2, replica 3).
pub const REPLICA_NODE: NodeId = NodeId(3);

/// A deterministic, seed-derived fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// The profile it was drawn from.
    pub profile: FaultProfile,
    /// The scheduled faults.
    pub specs: Vec<FaultSpec>,
    /// A clock-skew spike (ms) applied to the destination node's physical
    /// clock before the migration starts, if any.
    pub clock_spike_ms: Option<u64>,
}

impl FaultPlan {
    /// Generates the plan for `seed`. `source`/`dest` are the migration's
    /// endpoints (faults target the seams those nodes visit).
    ///
    /// Delay magnitudes are kept far below the cluster's lock-wait timeout
    /// so tolerated faults slow the pipeline down without tripping any
    /// timeout guard.
    pub fn generate(seed: u64, profile: FaultProfile, source: NodeId, dest: NodeId) -> FaultPlan {
        // Decorrelate from other seed consumers (network, workload).
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed);
        let mut specs = Vec::new();
        match profile {
            FaultProfile::Tolerated => {
                for _ in 0..rng.gen_range(1..4usize) {
                    specs.push(FaultSpec {
                        point: InjectionPoint::PropagationShip,
                        node: source,
                        occurrence: rng.gen_range(0..16u32),
                        action: FaultAction::Delay(Duration::from_millis(rng.gen_range(1..8u64))),
                    });
                }
                for _ in 0..rng.gen_range(0..3usize) {
                    specs.push(FaultSpec {
                        point: InjectionPoint::ReplayApply,
                        node: dest,
                        occurrence: rng.gen_range(0..12u32),
                        action: FaultAction::Delay(Duration::from_millis(rng.gen_range(1..10u64))),
                    });
                }
                if rng.gen_bool(0.5) {
                    specs.push(FaultSpec {
                        point: InjectionPoint::SyncBarrier,
                        node: source,
                        occurrence: 0,
                        action: FaultAction::Delay(Duration::from_millis(rng.gen_range(5..25u64))),
                    });
                }
                if rng.gen_bool(0.4) {
                    specs.push(FaultSpec {
                        point: InjectionPoint::SnapshotCopy,
                        node: source,
                        occurrence: 0,
                        action: FaultAction::Delay(Duration::from_millis(rng.gen_range(1..6u64))),
                    });
                }
                // Chunked-copy seams: delays stagger the worker pool; at
                // most two Fail/Crash specs kill a copy worker mid-chunk.
                // Each killed attempt is retried (frozen installs are
                // idempotent, 4 attempts per chunk), so two failures can
                // never exhaust a chunk's retry budget.
                for _ in 0..rng.gen_range(0..3usize) {
                    specs.push(FaultSpec {
                        point: InjectionPoint::CopyChunk,
                        node: source,
                        occurrence: rng.gen_range(0..8u32),
                        action: FaultAction::Delay(Duration::from_millis(rng.gen_range(1..5u64))),
                    });
                }
                for _ in 0..rng.gen_range(0..3usize) {
                    let action = if rng.gen_bool(0.5) {
                        FaultAction::Fail
                    } else {
                        FaultAction::Crash
                    };
                    specs.push(FaultSpec {
                        point: InjectionPoint::CopyChunk,
                        node: source,
                        occurrence: rng.gen_range(0..6u32),
                        action,
                    });
                }
                if rng.gen_bool(0.3) {
                    specs.push(FaultSpec {
                        point: InjectionPoint::MoccValidation,
                        node: dest,
                        occurrence: rng.gen_range(0..4u32),
                        action: FaultAction::Delay(Duration::from_millis(rng.gen_range(1..5u64))),
                    });
                }
            }
            FaultProfile::CrashTm => {
                let crash_points = [
                    InjectionPoint::TmBeforePrepare,
                    InjectionPoint::TmAfterPrepare,
                    InjectionPoint::TmBeforeCommit,
                    InjectionPoint::TmAfterFirstCommit,
                ];
                let point = crash_points[rng.gen_range(0..crash_points.len())];
                specs.push(FaultSpec {
                    point,
                    node: source,
                    occurrence: 0,
                    action: FaultAction::Crash,
                });
            }
            FaultProfile::Replica => {
                // Ship-stream faults on the primaries (the migration
                // endpoints plus the third primary of the canonical
                // topology). Delay lags a stream; Fail reorders a batch
                // behind its successor then retransmits it; Crash
                // duplicates a send — all absorbed by the apply-LSN gate.
                let primaries = [source, dest, NodeId(2)];
                for _ in 0..rng.gen_range(1..5usize) {
                    let action = match rng.gen_range(0..3u8) {
                        0 => FaultAction::Delay(Duration::from_millis(rng.gen_range(1..8u64))),
                        1 => FaultAction::Fail,
                        _ => FaultAction::Crash,
                    };
                    specs.push(FaultSpec {
                        point: InjectionPoint::ShipBatch,
                        node: primaries[rng.gen_range(0..primaries.len())],
                        occurrence: rng.gen_range(0..12u32),
                        action,
                    });
                }
                // Stalled replica applier.
                for _ in 0..rng.gen_range(0..3usize) {
                    specs.push(FaultSpec {
                        point: InjectionPoint::ReplicaApply,
                        node: REPLICA_NODE,
                        occurrence: rng.gen_range(0..12u32),
                        action: FaultAction::Delay(Duration::from_millis(rng.gen_range(1..8u64))),
                    });
                }
                // The concurrent migration still absorbs propagation lag.
                for _ in 0..rng.gen_range(0..2usize) {
                    specs.push(FaultSpec {
                        point: InjectionPoint::PropagationShip,
                        node: source,
                        occurrence: rng.gen_range(0..16u32),
                        action: FaultAction::Delay(Duration::from_millis(rng.gen_range(1..8u64))),
                    });
                }
                // Some seeds crash-restart the replica mid-backfill; the
                // runner reads this spec rather than counting visits.
                if rng.gen_bool(0.4) {
                    specs.push(FaultSpec {
                        point: InjectionPoint::CrashRestart,
                        node: REPLICA_NODE,
                        occurrence: 0,
                        action: FaultAction::Crash,
                    });
                }
            }
            FaultProfile::CrashRestart => {
                let victim = if rng.gen_bool(0.5) { source } else { dest };
                specs.push(FaultSpec {
                    point: InjectionPoint::CrashRestart,
                    node: victim,
                    // `occurrence` doubles as the pipeline stage the crash
                    // lands in (see the profile docs); the runner reads it
                    // straight from the spec rather than counting visits.
                    occurrence: rng.gen_range(0..3u32),
                    action: FaultAction::Crash,
                });
            }
        }
        let clock_spike_ms = if matches!(profile, FaultProfile::Tolerated | FaultProfile::Replica)
            && rng.gen_bool(0.4)
        {
            Some(rng.gen_range(5..40u64))
        } else {
            None
        };
        FaultPlan {
            seed,
            profile,
            specs,
            clock_spike_ms,
        }
    }

    /// The single crash point of a `CrashTm` plan.
    pub fn crash_point(&self) -> Option<InjectionPoint> {
        self.specs
            .iter()
            .find(|s| s.action == FaultAction::Crash)
            .map(|s| s.point)
    }

    /// The `(victim, stage)` of a `CrashRestart` plan (stage as documented
    /// on [`FaultProfile::CrashRestart`]).
    pub fn crash_restart_spec(&self) -> Option<(NodeId, u32)> {
        self.specs
            .iter()
            .find(|s| s.point == InjectionPoint::CrashRestart)
            .map(|s| (s.node, s.occurrence))
    }

    /// Whether a `Replica` plan crash-restarts the replica mid-backfill.
    pub fn replica_restart(&self) -> bool {
        self.specs
            .iter()
            .any(|s| s.point == InjectionPoint::CrashRestart && s.node == REPLICA_NODE)
    }
}

/// A [`FaultInjector`] that fires the specs of a plan by occurrence count.
///
/// Visit counting uses a mutex-protected map; decisions depend only on the
/// per-`(point, node)` visit ordinal, which makes the schedule robust to
/// thread interleaving at *other* seams.
pub struct PlanInjector {
    specs: Vec<FaultSpec>,
    counts: Mutex<HashMap<(InjectionPoint, NodeId), u32>>,
}

impl PlanInjector {
    /// An injector firing the plan's specs.
    pub fn new(plan: &FaultPlan) -> PlanInjector {
        PlanInjector::from_specs(plan.specs.clone())
    }

    /// An injector firing an explicit spec list (used by the shrinker to
    /// re-run with fault subsets).
    pub fn from_specs(specs: Vec<FaultSpec>) -> PlanInjector {
        PlanInjector {
            specs,
            counts: Mutex::new(HashMap::new()),
        }
    }
}

impl FaultInjector for PlanInjector {
    fn decide(&self, point: InjectionPoint, node: NodeId) -> FaultAction {
        let mut counts = self.counts.lock();
        let count = counts.entry((point, node)).or_insert(0);
        let occurrence = *count;
        *count += 1;
        self.specs
            .iter()
            .find(|s| s.point == point && s.node == node && s.occurrence == occurrence)
            .map(|s| s.action)
            .unwrap_or(FaultAction::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        for seed in 0..50u64 {
            for profile in [
                FaultProfile::Tolerated,
                FaultProfile::CrashTm,
                FaultProfile::CrashRestart,
                FaultProfile::Replica,
            ] {
                let a = FaultPlan::generate(seed, profile, NodeId(0), NodeId(1));
                let b = FaultPlan::generate(seed, profile, NodeId(0), NodeId(1));
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let plans: Vec<FaultPlan> = (0..20)
            .map(|s| FaultPlan::generate(s, FaultProfile::Tolerated, NodeId(0), NodeId(1)))
            .collect();
        assert!(plans.windows(2).any(|w| w[0].specs != w[1].specs));
    }

    #[test]
    fn crash_plan_has_exactly_one_crash() {
        for seed in 0..30u64 {
            let plan = FaultPlan::generate(seed, FaultProfile::CrashTm, NodeId(0), NodeId(1));
            let crashes = plan
                .specs
                .iter()
                .filter(|s| s.action == FaultAction::Crash)
                .count();
            assert_eq!(crashes, 1);
            assert!(plan.crash_point().is_some());
        }
    }

    #[test]
    fn crash_restart_plan_targets_an_endpoint_at_a_valid_stage() {
        let mut victims = std::collections::HashSet::new();
        let mut stages = std::collections::HashSet::new();
        for seed in 0..40u64 {
            let plan = FaultPlan::generate(seed, FaultProfile::CrashRestart, NodeId(0), NodeId(1));
            assert_eq!(plan.specs.len(), 1);
            let (victim, stage) = plan.crash_restart_spec().expect("restart spec");
            assert!(victim == NodeId(0) || victim == NodeId(1));
            assert!(stage < 3, "seed {seed}: stage {stage}");
            assert_eq!(plan.crash_point(), Some(InjectionPoint::CrashRestart));
            victims.insert(victim);
            stages.insert(stage);
        }
        // The seed space actually exercises both victims and all stages.
        assert_eq!(victims.len(), 2);
        assert_eq!(stages.len(), 3);
    }

    #[test]
    fn injector_fires_on_the_scheduled_occurrence_only() {
        let spec = FaultSpec {
            point: InjectionPoint::PropagationShip,
            node: NodeId(0),
            occurrence: 2,
            action: FaultAction::Fail,
        };
        let inj = PlanInjector::from_specs(vec![spec]);
        // Visits 0 and 1 continue; visit 2 fires; later visits continue.
        assert_eq!(
            inj.decide(InjectionPoint::PropagationShip, NodeId(0)),
            FaultAction::Continue
        );
        // A visit of a different point/node does not advance this counter.
        assert_eq!(
            inj.decide(InjectionPoint::ReplayApply, NodeId(0)),
            FaultAction::Continue
        );
        assert_eq!(
            inj.decide(InjectionPoint::PropagationShip, NodeId(1)),
            FaultAction::Continue
        );
        assert_eq!(
            inj.decide(InjectionPoint::PropagationShip, NodeId(0)),
            FaultAction::Continue
        );
        assert_eq!(
            inj.decide(InjectionPoint::PropagationShip, NodeId(0)),
            FaultAction::Fail
        );
        assert_eq!(
            inj.decide(InjectionPoint::PropagationShip, NodeId(0)),
            FaultAction::Continue
        );
    }

    #[test]
    fn tolerated_copy_chunk_kills_stay_within_retry_budget() {
        for seed in 0..200u64 {
            let plan = FaultPlan::generate(seed, FaultProfile::Tolerated, NodeId(0), NodeId(1));
            let kills = plan
                .specs
                .iter()
                .filter(|s| {
                    s.point == InjectionPoint::CopyChunk
                        && matches!(s.action, FaultAction::Fail | FaultAction::Crash)
                })
                .count();
            assert!(kills <= 2, "seed {seed}: {kills} copy-chunk kills");
        }
    }

    #[test]
    fn replica_plans_cover_ship_apply_and_restart() {
        let mut ship = false;
        let mut apply = false;
        let mut restarts = 0usize;
        for seed in 0..40u64 {
            let plan = FaultPlan::generate(seed, FaultProfile::Replica, NodeId(0), NodeId(1));
            ship |= plan
                .specs
                .iter()
                .any(|s| s.point == InjectionPoint::ShipBatch);
            apply |= plan
                .specs
                .iter()
                .any(|s| s.point == InjectionPoint::ReplicaApply && s.node == REPLICA_NODE);
            if plan.replica_restart() {
                restarts += 1;
            }
            for spec in &plan.specs {
                if let FaultAction::Delay(d) = spec.action {
                    assert!(d < Duration::from_millis(50), "{spec}");
                }
            }
        }
        assert!(ship, "no seed scheduled a ship-batch fault");
        assert!(apply, "no seed scheduled a replica-apply stall");
        assert!(
            restarts > 0 && restarts < 40,
            "mid-backfill restarts should fire on some but not all seeds: {restarts}"
        );
    }

    #[test]
    fn tolerated_delays_stay_far_below_lock_wait_timeout() {
        for seed in 0..100u64 {
            let plan = FaultPlan::generate(seed, FaultProfile::Tolerated, NodeId(0), NodeId(1));
            for spec in &plan.specs {
                if let FaultAction::Delay(d) = spec.action {
                    assert!(d < Duration::from_millis(50), "{spec}");
                }
            }
        }
    }
}
