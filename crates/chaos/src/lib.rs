#![warn(missing_docs)]

//! Deterministic fault-injection harness and snapshot-isolation history
//! checker for migration chaos tests.
//!
//! The crate has four layers:
//!
//! * [`plan`] — seeded [`FaultPlan`]s: a finite fault schedule derived
//!   deterministically from a `u64` seed, fired at named
//!   [`InjectionPoint`](remus_common::InjectionPoint)s by occurrence count;
//!   [`net::FaultyNetwork`] adds seeded per-link jitter and transient
//!   partitions underneath the whole cluster.
//! * [`history`] — the lock-free [`HistoryLog`] client threads record every
//!   attempted transaction into.
//! * [`checker`] — the pure post-hoc SI checker: snapshot reads,
//!   first-committer-wins, no aborted writes visible, monotone shard-map
//!   routing across `T_m`, and committed-data preservation.
//! * [`runner`] / [`shrink`] — seed-to-verdict scenario execution over all
//!   four migration engines, plus greedy counterexample minimization
//!   (history records, fault specs, seeds).
//!
//! Entry points: [`run_scenario`]`(&`[`ScenarioConfig::from_seed`]`(seed))`
//! for one scenario, `src/bin/chaos_smoke.rs` for the CI smoke loop.

pub mod checker;
pub mod history;
pub mod net;
pub mod plan;
pub mod planner_mode;
pub mod runner;
pub mod shrink;

pub use checker::{
    check_final_state, check_history, check_history_multi, check_serializability, CheckConfig,
    MigrationSpec, OracleId, Verdict, Violation,
};
pub use history::{HistoryLog, MutKind, OpRead, OpWrite, TxnRecord};
pub use net::{FaultyNetwork, Partition};
pub use plan::{FaultPlan, FaultProfile, FaultSpec, PlanInjector};
pub use planner_mode::{run_planner_scenario, PlannerScenarioConfig, PlannerScenarioOutcome};
pub use runner::{
    run_scenario, run_scenario_with_specs, EngineKind, ScenarioConfig, ScenarioOutcome,
};
pub use shrink::{shrink_history, shrink_plan, smallest_failing_seed};
