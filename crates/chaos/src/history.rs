//! The committed-operation history recorder.
//!
//! Client threads record one [`TxnRecord`] per attempted transaction
//! (committed or aborted) into a [`HistoryLog`]. The log is an append-only
//! segmented slot array: an appender reserves a slot with one atomic
//! `fetch_add` and publishes the record with a `OnceLock::set` — no lock is
//! taken on the hot path once the segment exists (a segment is allocated
//! under a write lock once per 1024 records). The checker snapshots the log
//! after every worker joined.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use remus_common::{NodeId, ShardId, Timestamp, TxnId};
use remus_storage::Value;

/// The kind of a recorded write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutKind {
    /// Row creation.
    Insert,
    /// Row overwrite.
    Update,
    /// Row deletion.
    Delete,
}

/// One observed read: `observed` is what the engine actually returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRead {
    /// Key read.
    pub key: u64,
    /// The snapshot the statement executed at, captured *after* the
    /// statement (shard-lock mode refreshes the transaction snapshot per
    /// statement, so the begin-time snapshot would be wrong there).
    pub snap_ts: Timestamp,
    /// The value returned (`None` = not found).
    pub observed: Option<Value>,
}

/// One write performed by a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpWrite {
    /// Key written.
    pub key: u64,
    /// The statement snapshot, captured after the statement (see
    /// [`OpRead::snap_ts`]). First-committer-wins is judged against this.
    pub snap_ts: Timestamp,
    /// Write kind.
    pub kind: MutKind,
    /// The value the row holds after this write (`None` for deletes).
    pub value: Option<Value>,
}

/// The full record of one attempted client transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// Transaction id (diagnostics only; the checker keys on timestamps).
    pub xid: TxnId,
    /// Recording client (0 = preload/scan infrastructure).
    pub client: u32,
    /// The begin-time snapshot — the one routing decisions use.
    pub begin_ts: Timestamp,
    /// Commit timestamp; `None` means the transaction aborted.
    pub commit_ts: Option<Timestamp>,
    /// Reads, in execution order.
    pub reads: Vec<OpRead>,
    /// Writes, in execution order.
    pub writes: Vec<OpWrite>,
    /// Sticky routing decisions the transaction made.
    pub routes: Vec<(ShardId, NodeId)>,
    /// Real-time order marker ticked from a shared counter *before*
    /// `begin()` was called. Together with [`commit_seq`](Self::commit_seq)
    /// this brackets the transaction in real time, which the checker needs
    /// for the forced-visibility rule that stays sound under decentralized
    /// timestamps: a write is only *required* to be visible when it fully
    /// committed (its `commit_seq`) before the reader began (its
    /// `begin_seq`).
    pub begin_seq: u64,
    /// Real-time order marker ticked *after* `commit()` returned. Zero /
    /// meaningless for aborted transactions.
    pub commit_seq: u64,
    /// True for read-only transactions served by a replica at its applied
    /// watermark. The checker validates these with the *strict* forcing
    /// rule regardless of oracle — the watermark soundness claim is that a
    /// replica read at `W` misses no commit with `cts <= W`, even under
    /// decentralized timestamps — and additionally requires each replica
    /// session's snapshots to be monotone. Replica records never carry
    /// writes or routes.
    pub replica: bool,
}

impl TxnRecord {
    /// Whether the transaction committed.
    pub fn committed(&self) -> bool {
        self.commit_ts.is_some()
    }
}

const SEGMENT: usize = 1024;

type Slot = OnceLock<TxnRecord>;

/// Append-only concurrent transaction log (see module docs).
#[derive(Default)]
pub struct HistoryLog {
    segments: RwLock<Vec<Arc<Vec<Slot>>>>,
    next: AtomicUsize,
}

impl HistoryLog {
    /// An empty log.
    pub fn new() -> HistoryLog {
        HistoryLog::default()
    }

    /// Appends one record. Lock-free once the target segment exists.
    pub fn record(&self, rec: TxnRecord) {
        let index = self.next.fetch_add(1, Ordering::SeqCst);
        let (seg_idx, slot_idx) = (index / SEGMENT, index % SEGMENT);
        loop {
            {
                let segments = self.segments.read();
                if let Some(segment) = segments.get(seg_idx) {
                    let segment = Arc::clone(segment);
                    drop(segments);
                    if segment[slot_idx].set(rec).is_err() {
                        panic!("history slot {index} filled twice");
                    }
                    return;
                }
            }
            let mut segments = self.segments.write();
            while segments.len() <= seg_idx {
                segments.push(Arc::new((0..SEGMENT).map(|_| OnceLock::new()).collect()));
            }
        }
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::SeqCst)
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots the log in append order. Call after every recording thread
    /// has finished; slots still being published are skipped.
    pub fn snapshot(&self) -> Vec<TxnRecord> {
        let len = self.len();
        let segments = self.segments.read().clone();
        let mut out = Vec::with_capacity(len);
        for index in 0..len {
            if let Some(segment) = segments.get(index / SEGMENT) {
                if let Some(rec) = segment[index % SEGMENT].get() {
                    out.push(rec.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(client: u32, seq: u64) -> TxnRecord {
        TxnRecord {
            xid: TxnId::new(NodeId(0), seq),
            client,
            begin_ts: Timestamp(seq),
            commit_ts: Some(Timestamp(seq + 1)),
            reads: vec![],
            writes: vec![],
            routes: vec![],
            begin_seq: seq,
            commit_seq: seq + 1,
            replica: false,
        }
    }

    #[test]
    fn records_survive_in_append_order() {
        let log = HistoryLog::new();
        for i in 0..2500u64 {
            log.record(rec(0, i));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2500);
        assert!(snap.windows(2).all(|w| w[0].begin_ts < w[1].begin_ts));
    }

    #[test]
    fn concurrent_appends_lose_nothing() {
        let log = Arc::new(HistoryLog::new());
        let threads: Vec<_> = (0..8u32)
            .map(|c| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        log.record(rec(c, u64::from(c) * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 8 * 500);
        // Every (client, seq) pair present exactly once.
        let mut seen: Vec<TxnId> = snap.iter().map(|r| r.xid).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 8 * 500);
    }
}
