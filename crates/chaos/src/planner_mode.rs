//! Chaos planner mode: the elasticity autopilot under faults.
//!
//! The classic runner ([`run_scenario`](crate::runner::run_scenario))
//! migrates a *fixed* shard between *fixed* nodes. Planner mode instead
//! lets the planner choose every migration from measured load, then runs
//! the chosen migrations through a real engine with injected faults and
//! concurrent writers, and checks the multi-migration history against SI.
//!
//! A scenario is `rounds` iterations of:
//!
//! 1. **Reset** the load accounting (isolates this round's measurement
//!    from the previous round's fault-era traffic).
//! 2. **Measured batch** — single-threaded, read-only, seeded traffic
//!    that hammers one seed-chosen hot node and brushes every other
//!    shard. Read tallies are charged at statement execution, so the
//!    resulting per-shard loads are a pure function of the seed and the
//!    ownership state — the planner's input replays bit-identically.
//! 3. **Plan** — one [`Planner::decide`] tick over the rolled window
//!    (`PlannerConfig::chaos_mode`: EWMA off, cost signals off, infinite
//!    cooldown, so decisions depend on nothing timing-polluted).
//! 4. **Execute** — each planned migration runs through the scenario's
//!    engine with a seeded fault plan installed and seeded writer threads
//!    racing it, every attempt recorded into the history.
//!
//! The determinism contract extends the runner's: not just the fault
//! schedule and the verdict, but the *decision list itself* is a pure
//! function of the seed — [`PlannerScenarioOutcome::decisions`] compares
//! equal across replays of the same seed. The final history must satisfy
//! snapshot isolation with one [`MigrationSpec`] per autopilot-chosen
//! move, and the final table contents must equal the history's model.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use remus_clock::{Dts, Gts, OracleKind, PhysicalClock, TimestampOracle, WallClock};
use remus_cluster::{Cluster, ClusterBuilder, ReplicaSession, Session};
use remus_common::{NodeId, PlannerConfig, ShardId, SimConfig, TableId, Timestamp, TxnId};
use remus_planner::{Action, ObservationCollector, Planner};
use remus_shard::TableLayout;
use remus_storage::Value;

use crate::checker::{check_final_state, check_history_multi, MigrationSpec, Verdict, Violation};
use crate::history::{HistoryLog, MutKind, OpRead, OpWrite, TxnRecord};
use crate::net::FaultyNetwork;
use crate::plan::{FaultPlan, FaultProfile, PlanInjector};
use crate::runner::EngineKind;

/// How many times the measured batch sweeps each shard of the hot node
/// (cold shards are swept once). With 8 keys per shard and 2 shards per
/// node this yields hot-node load 80 vs. 16 per cold node — far past the
/// 1.2 imbalance trigger, and light enough that moving one hot shard
/// strictly improves the balance.
const HOT_SWEEPS: u32 = 5;

/// Full description of one planner-mode chaos scenario.
#[derive(Debug, Clone)]
pub struct PlannerScenarioConfig {
    /// Master seed: hot-node choices, fault plans, and writer keys all
    /// derive from it.
    pub seed: u64,
    /// Engine the autopilot's migrations run through (push engines; the
    /// planner drives them interchangeably).
    pub engine: EngineKind,
    /// Timestamp oracle. GTS enables the timestamp-strict read axiom.
    pub oracle: OracleKind,
    /// Cluster size.
    pub nodes: u32,
    /// Preloaded key range `0..keys`.
    pub keys: u64,
    /// Shard count (direct layout: key `k` lives on shard `k % shards`).
    pub shards: u32,
    /// Measure → plan → execute iterations.
    pub rounds: u32,
    /// Writer threads racing each planned migration.
    pub writers: u32,
    /// Transactions per writer per migration.
    pub txns_per_writer: u32,
    /// Replica actions on: the planner runs
    /// [`PlannerConfig::chaos_replica_mode`], the last node starts as an
    /// empty spare (shards spread over the others), and the round script
    /// alternates read-hot and write-only measured batches so the seed
    /// deterministically drives a provision *and* a decommission.
    pub replicas: bool,
}

impl PlannerScenarioConfig {
    /// Derives the canonical planner scenario for a seed: the engine
    /// cycles through the push engines and the oracle alternates GTS/DTS
    /// across engine cycles.
    pub fn from_seed(seed: u64) -> PlannerScenarioConfig {
        let push = [
            EngineKind::Remus,
            EngineKind::LockAndAbort,
            EngineKind::WaitAndRemaster,
        ];
        let oracle = if (seed / 3).is_multiple_of(2) {
            OracleKind::Gts
        } else {
            OracleKind::Dts
        };
        PlannerScenarioConfig {
            seed,
            engine: push[(seed % 3) as usize],
            oracle,
            nodes: 3,
            keys: 48,
            shards: 6,
            rounds: 4,
            writers: 2,
            txns_per_writer: 6,
            replicas: false,
        }
    }

    /// The replica-action variant for a seed: the canonical 4-node replica
    /// topology (shards spread over nodes 0–2, node 3 an empty spare), the
    /// engine cycling through the push engines for the migrations that
    /// still run, and the oracle chosen explicitly so a test matrix can
    /// sweep seeds × {GTS, DTS}.
    ///
    /// The round script is fixed: rounds 0, 1, and 3 measure a read-hot
    /// batch, round 2 a write-only batch. Round 0 trips the read-offload
    /// trigger (`Replicate` to the spare), round 1 balances with the
    /// replica live, round 2's readless window drops demand below the
    /// floor (`Decommission`), and round 3 balances again after the
    /// retirement (re-provisioning is parked behind the infinite chaos
    /// cooldown).
    pub fn replica_from_seed(seed: u64, oracle: OracleKind) -> PlannerScenarioConfig {
        let push = [
            EngineKind::Remus,
            EngineKind::LockAndAbort,
            EngineKind::WaitAndRemaster,
        ];
        PlannerScenarioConfig {
            seed,
            engine: push[(seed % 3) as usize],
            oracle,
            nodes: 4,
            keys: 48,
            shards: 6,
            rounds: 4,
            writers: 2,
            txns_per_writer: 6,
            replicas: true,
        }
    }

    /// How many of the first nodes own shards (the rest start as spares).
    fn spread(&self) -> u32 {
        if self.replicas {
            self.nodes - 1
        } else {
            self.nodes
        }
    }
}

/// The result of one planner-mode scenario run.
#[derive(Debug)]
pub struct PlannerScenarioOutcome {
    /// Engine exercised.
    pub engine: EngineKind,
    /// Every planner decision in execution order, in the planner's stable
    /// string form. Identical across replays of the same seed.
    pub decisions: Vec<String>,
    /// One spec per executed migration, as handed to the checker.
    pub migrations: Vec<MigrationSpec>,
    /// Every recorded transaction.
    pub history: Vec<TxnRecord>,
    /// Checker verdict: the violation list plus which oracles failed
    /// (passing = SI held across every chosen migration).
    pub violations: Verdict,
    /// Committed writer transactions.
    pub committed: usize,
    /// Aborted writer transactions.
    pub aborted: usize,
}

impl PlannerScenarioOutcome {
    /// Whether the history checked out.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total keys read through replica sessions — the staleness oracle's
    /// evidence that replica actions were actually exercised.
    pub fn replica_reads(&self) -> usize {
        self.history
            .iter()
            .filter(|r| r.replica)
            .map(|r| r.reads.len())
            .sum()
    }
}

/// Runs one planner-mode scenario.
pub fn run_planner_scenario(config: &PlannerScenarioConfig) -> PlannerScenarioOutcome {
    // ---- cluster ----
    let oracle: Arc<dyn TimestampOracle> = match config.oracle {
        OracleKind::Gts => Arc::new(Gts::new()),
        OracleKind::Dts => {
            let clocks: Vec<Arc<dyn PhysicalClock>> = (0..config.nodes)
                .map(|_| Arc::new(WallClock::new()) as Arc<dyn PhysicalClock>)
                .collect();
            Arc::new(Dts::from_clocks(clocks))
        }
    };
    let cluster = ClusterBuilder::new(config.nodes as usize)
        .config(SimConfig::instant())
        .oracle_instance(oracle)
        .network(Arc::new(FaultyNetwork::from_seed(
            config.seed,
            config.nodes,
        )))
        .cc_mode(config.engine.cc_mode())
        .build();
    // In replica mode the last node starts as an empty spare — the only
    // admissible `Replicate` destination, so the decision is seed-pure.
    let spread = config.spread();
    let layout = cluster
        .create_table_with_layout(TableLayout::direct(TableId(1), 0, config.shards), |i| {
            NodeId(i % spread)
        });
    let mut owners: BTreeMap<ShardId, NodeId> = layout
        .shard_ids()
        .enumerate()
        .map(|(i, shard)| (shard, NodeId(i as u32 % spread)))
        .collect();

    // ---- shared recording state ----
    let log = Arc::new(HistoryLog::new());
    let seq = Arc::new(AtomicU64::new(0));

    // ---- preload (client 0) ----
    let session = Session::connect(&cluster, NodeId(0));
    {
        let begin_seq = seq.fetch_add(1, Ordering::SeqCst);
        let mut txn = session.begin();
        let begin_ts = txn.begin_ts();
        let mut writes = Vec::new();
        for key in 0..config.keys {
            let value = Value::copy_from_slice(format!("init-{key}").as_bytes());
            txn.insert(&layout, key, value.clone())
                .expect("preload insert");
            writes.push(OpWrite {
                key,
                snap_ts: txn.start_ts(),
                kind: MutKind::Insert,
                value: Some(value),
            });
        }
        let routes = txn.routes();
        let xid = txn.xid();
        let cts = txn.commit().expect("preload commit");
        let commit_seq = seq.fetch_add(1, Ordering::SeqCst);
        log.record(TxnRecord {
            xid,
            client: 0,
            begin_ts,
            commit_ts: Some(cts),
            reads: vec![],
            writes,
            routes,
            begin_seq,
            commit_seq,
            replica: false,
        });
    }

    // ---- measure → plan → execute rounds ----
    let planner_config = if config.replicas {
        PlannerConfig::chaos_replica_mode(config.seed)
    } else {
        PlannerConfig::chaos_mode(config.seed)
    };
    let mut planner = Planner::new(planner_config);
    let mut collector = ObservationCollector::new();
    let mut decisions: Vec<String> = Vec::new();
    let mut migrations: Vec<MigrationSpec> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    // The replica process the harness provisioned, if one is live. The
    // harness executes replica decisions itself and never enables the
    // cluster's read-offload flag, so the measured batches stay
    // primary-routed and the planner's input stays a pure function of the
    // seed even while a replica is attached.
    let mut replica_proc: Option<(NodeId, remus_core::ReplicaProcess)> = None;
    let mut replica_sweeps: u64 = 0;
    let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for round in 0..config.rounds {
        // 1. Isolate this round's measurement from fault-era traffic.
        cluster.reset_load();

        // 2. Deterministic measured batch: single-threaded recorded
        // sweeps. Read-hot rounds sweep reads, HOT_SWEEPS per shard of the
        // hot node and one elsewhere; in replica mode round 2 is instead a
        // uniform write-only sweep, which zeroes the windowed read demand
        // (the decommission trigger) without tripping the balancer.
        let hot = NodeId(rng.gen_range(0..spread));
        let write_only = config.replicas && round == 2;
        if write_only {
            for shard in layout.shard_ids() {
                record_shard_write_sweep(&layout, &session, &log, &seq, config.keys, shard, round);
            }
        } else {
            for shard in layout.shard_ids() {
                let sweeps = if owners[&shard] == hot { HOT_SWEEPS } else { 1 };
                for _ in 0..sweeps {
                    record_shard_sweep(&layout, &session, &log, &seq, config.keys, shard);
                }
            }
        }

        // 3. One planner tick over the freshly rolled window.
        let obs = collector.collect(&cluster, 1.0);
        let tick = planner.decide(&obs);

        // 4. Execute each decision with faults and racing writers.
        for decision in tick.decisions {
            decisions.push(decision.to_string());
            let plan_seed = config
                .seed
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add(u64::from(round) + 1);
            match decision.action {
                Action::Migrate(task) => {
                    let shard = task.shards[0];
                    let plan = FaultPlan::generate(
                        plan_seed,
                        FaultProfile::Tolerated,
                        task.source,
                        task.dest,
                    );
                    let injector = Arc::new(PlanInjector::from_specs(plan.specs));
                    cluster
                        .install_fault_injector(injector as Arc<dyn remus_common::FaultInjector>);
                    let workers: Vec<_> = (0..config.writers)
                        .map(|w| {
                            spawn_writer(
                                &cluster,
                                &layout,
                                &log,
                                &seq,
                                config,
                                round * 8 + w + 1,
                                config.txns_per_writer,
                            )
                        })
                        .collect();
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    let result = config.engine.build().migrate(&cluster, &task);
                    for w in workers {
                        w.join().expect("writer thread");
                    }
                    cluster.uninstall_fault_injector();

                    // An engine can fail after the ownership transfer
                    // committed (post-T_m phases); routing is the ground
                    // truth, exactly as in the autopilot executor.
                    let row = cluster
                        .current_owner(cluster.node(task.source), shard)
                        .expect("owner row");
                    let committed = match &result {
                        Ok(_) => true,
                        Err(e) => {
                            let landed = row.node == task.dest;
                            if !landed {
                                failures.push(format!("{e:?}"));
                                planner.note_failed(&task.shards);
                            }
                            landed
                        }
                    };
                    let tm_cts = (committed && row.node == task.dest && row.cts.is_valid())
                        .then_some(row.cts);
                    migrations.push(MigrationSpec {
                        shard,
                        source: task.source,
                        dest: task.dest,
                        tm_cts,
                        committed,
                    });
                    if committed {
                        owners.insert(shard, task.dest);
                    }
                }
                Action::Replicate { src, dst, .. } => {
                    // Ship-stream and applier faults from the canonical
                    // replica profile, racing the bootstrap along with the
                    // seeded writers. (The profile's optional CrashRestart
                    // spec is runner-driven and inert here — planner-mode
                    // re-bootstrap drills live in the classic runner.)
                    let other = NodeId((src.0 + 1) % spread);
                    let plan = FaultPlan::generate(plan_seed, FaultProfile::Replica, src, other);
                    let injector = Arc::new(PlanInjector::from_specs(plan.specs));
                    cluster
                        .install_fault_injector(injector as Arc<dyn remus_common::FaultInjector>);
                    let workers: Vec<_> = (0..config.writers)
                        .map(|w| {
                            spawn_writer(
                                &cluster,
                                &layout,
                                &log,
                                &seq,
                                config,
                                round * 8 + w + 1,
                                config.txns_per_writer,
                            )
                        })
                        .collect();
                    let proc = remus_core::start_replica(&cluster, dst).expect("replica bootstrap");
                    let certified = proc.wait_certified(std::time::Duration::from_secs(30));
                    for w in workers {
                        w.join().expect("writer thread");
                    }
                    cluster.uninstall_fault_injector();
                    match certified {
                        Ok(()) => {
                            replica_proc = Some((dst, proc));
                        }
                        Err(e) => {
                            proc.stop();
                            cluster.unregister_replica(dst);
                            failures.push(format!("{e:?}"));
                            planner.note_replica_failed();
                        }
                    }
                }
                Action::Decommission { replica } => {
                    // Final staleness record before teardown: the replica
                    // must still serve a watermark-consistent snapshot.
                    record_replica_sweep_at(
                        &cluster,
                        &layout,
                        &log,
                        &seq,
                        config.keys,
                        replica,
                        &mut replica_sweeps,
                    );
                    if let Some((node, proc)) = replica_proc.take() {
                        debug_assert_eq!(node, replica);
                        proc.stop();
                    }
                    cluster.unregister_replica(replica);
                }
            }
        }

        // Staleness oracle feed: while a replica is live, one recorded
        // replica sweep per round, all under the same client id so the
        // checker's per-client watermark-regression rule really bites.
        if let Some((node, _)) = &replica_proc {
            record_replica_sweep_at(
                &cluster,
                &layout,
                &log,
                &seq,
                config.keys,
                *node,
                &mut replica_sweeps,
            );
        }
    }

    // ---- check ----
    let history = log.snapshot();
    let committed = history
        .iter()
        .filter(|r| r.client > 0 && !r.replica && r.committed())
        .count();
    let aborted = history
        .iter()
        .filter(|r| r.client > 0 && !r.replica && !r.committed())
        .count();
    let mut violations =
        check_history_multi(&history, &migrations, config.oracle == OracleKind::Gts);
    for detail in failures {
        violations.push(Violation::MigrationFailed { detail });
    }
    let max_cts = history
        .iter()
        .filter_map(|r| r.commit_ts)
        .chain(migrations.iter().filter_map(|m| m.tm_cts))
        .max()
        .unwrap_or(Timestamp(1));
    // The scan coordinator must be a primary — in replica mode the last
    // node may still be a registered replica (e.g. if a bootstrap fault
    // left no live replica to decommission).
    let scan_session = Session::connect(&cluster, NodeId(spread - 1));
    let mut scan_txn = scan_session.begin_after(max_cts);
    let observed: BTreeMap<u64, Value> = scan_txn
        .scan_table(&layout)
        .expect("final scan")
        .into_iter()
        .collect();
    scan_txn.abort();
    violations.extend(check_final_state(&history, &observed));

    PlannerScenarioOutcome {
        engine: config.engine,
        decisions,
        migrations,
        history,
        violations,
        committed,
        aborted,
    }
}

/// One recorded read-only transaction sweeping every key of `shard`
/// (direct layout: keys congruent to the shard index). Runs on the main
/// thread so the load it tallies is a pure function of the caller's
/// sequence — commit failures are recorded but cannot perturb the tallies,
/// which are charged at statement execution.
fn record_shard_sweep(
    layout: &TableLayout,
    session: &Session,
    log: &HistoryLog,
    seq: &AtomicU64,
    keys: u64,
    shard: ShardId,
) {
    let begin_seq = seq.fetch_add(1, Ordering::SeqCst);
    let mut txn = session.begin();
    let begin_ts = txn.begin_ts();
    let mut reads = Vec::new();
    let mut failed = false;
    for key in (0..keys).filter(|&k| layout.shard_for(k) == shard) {
        match txn.read(layout, key) {
            Ok(observed) => reads.push(OpRead {
                key,
                snap_ts: txn.start_ts(),
                observed,
            }),
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    let routes = txn.routes();
    let xid = txn.xid();
    let commit_ts = if failed {
        txn.abort();
        None
    } else {
        txn.commit().ok()
    };
    let commit_seq = if commit_ts.is_some() {
        seq.fetch_add(1, Ordering::SeqCst)
    } else {
        0
    };
    log.record(TxnRecord {
        xid,
        client: 0,
        begin_ts,
        commit_ts,
        reads,
        writes: vec![],
        routes,
        begin_seq,
        commit_seq,
        replica: false,
    });
}

/// One recorded write-only transaction updating every key of `shard`.
/// The write-only round of the replica script: zeroes the windowed read
/// demand (the decommission trigger is a pure function of the batch)
/// while keeping write load uniform across shards so the balancer stays
/// quiet.
fn record_shard_write_sweep(
    layout: &TableLayout,
    session: &Session,
    log: &HistoryLog,
    seq: &AtomicU64,
    keys: u64,
    shard: ShardId,
    round: u32,
) {
    let begin_seq = seq.fetch_add(1, Ordering::SeqCst);
    let mut txn = session.begin();
    let begin_ts = txn.begin_ts();
    let mut writes = Vec::new();
    let mut failed = false;
    for key in (0..keys).filter(|&k| layout.shard_for(k) == shard) {
        let value = Value::copy_from_slice(format!("sweep-r{round}-k{key}").as_bytes());
        match txn.update(layout, key, value.clone()) {
            Ok(()) => writes.push(OpWrite {
                key,
                snap_ts: txn.start_ts(),
                kind: MutKind::Update,
                value: Some(value),
            }),
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    let routes = txn.routes();
    let xid = txn.xid();
    let commit_ts = if failed {
        txn.abort();
        None
    } else {
        txn.commit().ok()
    };
    let commit_seq = if commit_ts.is_some() {
        seq.fetch_add(1, Ordering::SeqCst)
    } else {
        0
    };
    log.record(TxnRecord {
        xid,
        client: 0,
        begin_ts,
        commit_ts,
        reads: vec![],
        writes,
        routes,
        begin_seq,
        commit_seq,
        replica: false,
    });
}

/// Records one full-table read at `replica`'s current watermark. Every
/// sweep shares client 900 so the checker's per-client replica-regression
/// rule (watermarks must never run backwards) covers the whole scenario;
/// `sweeps` numbers the synthetic xids.
fn record_replica_sweep_at(
    cluster: &Arc<Cluster>,
    layout: &TableLayout,
    log: &Arc<HistoryLog>,
    seq: &Arc<AtomicU64>,
    keys: u64,
    replica: NodeId,
    sweeps: &mut u64,
) {
    let session = ReplicaSession::connect(cluster, replica).expect("replica not registered");
    let begin_seq = seq.fetch_add(1, Ordering::SeqCst);
    let txn = session.begin().expect("certified replica begin");
    let snap = txn.snap_ts();
    let mut reads = Vec::new();
    for key in 0..keys {
        let observed = txn.read(layout, key).expect("replica read");
        reads.push(OpRead {
            key,
            snap_ts: snap,
            observed,
        });
    }
    drop(txn);
    let commit_seq = seq.fetch_add(1, Ordering::SeqCst);
    *sweeps += 1;
    log.record(TxnRecord {
        xid: TxnId::new(replica, 0x7000_0000 + *sweeps),
        client: 900,
        begin_ts: snap,
        commit_ts: Some(snap),
        reads,
        writes: vec![],
        routes: vec![],
        begin_seq,
        commit_seq,
        replica: true,
    });
}

/// Spawns one seeded writer thread racing a migration: `txns`
/// transactions, each updating 1–2 distinct keys in `(shard, key)` order,
/// every attempt recorded.
fn spawn_writer(
    cluster: &Arc<Cluster>,
    layout: &TableLayout,
    log: &Arc<HistoryLog>,
    seq: &Arc<AtomicU64>,
    config: &PlannerScenarioConfig,
    client: u32,
    txns: u32,
) -> std::thread::JoinHandle<()> {
    let cluster = Arc::clone(cluster);
    let layout = *layout;
    let log = Arc::clone(log);
    let seq = Arc::clone(seq);
    let keys = config.keys;
    let nodes = config.nodes;
    let seed = config.seed;
    std::thread::spawn(move || {
        let mut rng =
            SmallRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ u64::from(client));
        let coordinator = NodeId(rng.gen_range(0..nodes));
        let session = Session::connect(&cluster, coordinator);
        for t in 0..txns {
            let n_writes = rng.gen_range(1..=2usize);
            let mut chosen: Vec<u64> = Vec::new();
            while chosen.len() < n_writes {
                let k = rng.gen_range(0..keys);
                if !chosen.contains(&k) {
                    chosen.push(k);
                }
            }
            chosen.sort_by_key(|&k| (layout.shard_for(k).0, k));

            let begin_seq = seq.fetch_add(1, Ordering::SeqCst);
            let mut txn = session.begin();
            let begin_ts = txn.begin_ts();
            let mut writes = Vec::new();
            let mut failed = false;
            for key in chosen {
                let value = Value::copy_from_slice(format!("w{client}-t{t}-k{key}").as_bytes());
                match txn.update(&layout, key, value.clone()) {
                    Ok(()) => writes.push(OpWrite {
                        key,
                        snap_ts: txn.start_ts(),
                        kind: MutKind::Update,
                        value: Some(value),
                    }),
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            let routes = txn.routes();
            let xid = txn.xid();
            let commit_ts = if failed {
                txn.abort();
                None
            } else {
                txn.commit().ok()
            };
            let commit_seq = if commit_ts.is_some() {
                seq.fetch_add(1, Ordering::SeqCst)
            } else {
                0
            };
            log.record(TxnRecord {
                xid,
                client,
                begin_ts,
                commit_ts,
                reads: vec![],
                writes,
                routes,
                begin_seq,
                commit_seq,
                replica: false,
            });
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_scenario_moves_shards_and_passes() {
        let config = PlannerScenarioConfig::from_seed(0);
        assert_eq!(config.engine, EngineKind::Remus);
        let outcome = run_planner_scenario(&config);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
        assert!(
            !outcome.decisions.is_empty(),
            "the hot-node batch must trip the imbalance trigger"
        );
        assert_eq!(outcome.decisions.len(), outcome.migrations.len());
        assert!(outcome.migrations.iter().all(|m| m.committed));
    }

    #[test]
    fn decisions_replay_identically() {
        let config = PlannerScenarioConfig::from_seed(1);
        let a = run_planner_scenario(&config);
        let b = run_planner_scenario(&config);
        assert_eq!(a.decisions, b.decisions);
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert!(b.passed(), "violations: {:?}", b.violations);
    }

    #[test]
    fn replica_scenario_provisions_and_decommissions() {
        let config = PlannerScenarioConfig::replica_from_seed(0, OracleKind::Gts);
        let outcome = run_planner_scenario(&config);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
        assert!(
            outcome
                .decisions
                .iter()
                .any(|d| d.starts_with("replicate ")),
            "round 0's read-hot batch must provision: {:?}",
            outcome.decisions
        );
        assert!(
            outcome
                .decisions
                .iter()
                .any(|d| d.starts_with("decommission ")),
            "round 2's readless window must retire the replica: {:?}",
            outcome.decisions
        );
        assert!(outcome.replica_reads() > 0);
    }

    #[test]
    fn replica_decisions_replay_identically() {
        let config = PlannerScenarioConfig::replica_from_seed(5, OracleKind::Dts);
        let a = run_planner_scenario(&config);
        let b = run_planner_scenario(&config);
        assert_eq!(a.decisions, b.decisions);
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert!(b.passed(), "violations: {:?}", b.violations);
    }
}
