//! The chaos scenario runner.
//!
//! A scenario is a pure function of its seed: the seed picks the engine,
//! the oracle, the fault profile, the network perturbation, and every
//! client's key choices. [`run_scenario`] builds a 3-node cluster, preloads
//! a table, runs seeded client threads concurrently with a live migration
//! (or, for the `CrashTm` profile, crashes the handover transaction `T_m`
//! mid-2PC and recovers), records every attempted transaction into a
//! [`HistoryLog`](crate::history::HistoryLog), and hands the history to the
//! SI checker.
//!
//! Determinism contract: the fault *schedule* (plan + network partitions)
//! and the *verdict* are reproducible from the seed. Thread interleavings
//! are not replayed bit-for-bit — they don't need to be, because the
//! checker accepts every SI-legal interleaving and rejects every illegal
//! one.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use remus_clock::{
    Dts, Gts, OracleKind, PhysicalClock, SkewedPhysicalClock, TimestampOracle, WallClock,
};
use remus_cluster::{CcMode, Cluster, ClusterBuilder, ReplicaSession, Session};
use remus_common::{
    IsolationLevel, NodeId, ParallelismConfig, ShardId, SimConfig, TableId, Timestamp, TxnId,
    WalConfig,
};
use remus_core::diversion::{run_tm_chaos, TmOutcome};
use remus_core::recovery::{recover_migration, RecoveryDecision};
use remus_core::snapshot::copy_task_snapshots;
use remus_core::trace::expected_phases;
use remus_core::{
    LockAndAbort, MigrationEngine, MigrationReport, MigrationTask, RemusEngine, SquallEngine,
    WaitAndRemaster,
};
use remus_shard::TableLayout;
use remus_storage::Value;
use remus_txn::ReplaySummary;

use crate::checker::{
    check_final_state, check_history, check_serializability, CheckConfig, Verdict, Violation,
};
use crate::history::{HistoryLog, MutKind, OpRead, OpWrite, TxnRecord};
use crate::net::FaultyNetwork;
use crate::plan::{FaultPlan, FaultProfile, FaultSpec, PlanInjector, REPLICA_NODE};

/// Which migration engine a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's engine (asynchronous propagation + MOCC dual execution).
    Remus,
    /// The lock-and-abort push baseline.
    LockAndAbort,
    /// The wait-and-remaster (drain) baseline.
    WaitAndRemaster,
    /// The Squall-style pull baseline (H-store shard locks).
    Squall,
}

impl EngineKind {
    /// All four engines, in seed-residue order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Remus,
        EngineKind::LockAndAbort,
        EngineKind::WaitAndRemaster,
        EngineKind::Squall,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Remus => "remus",
            EngineKind::LockAndAbort => "lock-and-abort",
            EngineKind::WaitAndRemaster => "wait-and-remaster",
            EngineKind::Squall => "squall",
        }
    }

    /// Builds the engine.
    pub fn build(self) -> Box<dyn MigrationEngine> {
        match self {
            EngineKind::Remus => Box::new(RemusEngine::new()),
            EngineKind::LockAndAbort => Box::new(LockAndAbort::new()),
            EngineKind::WaitAndRemaster => Box::new(WaitAndRemaster::new()),
            EngineKind::Squall => Box::new(SquallEngine::new()),
        }
    }

    /// The concurrency-control mode the engine requires.
    pub fn cc_mode(self) -> CcMode {
        match self {
            EngineKind::Squall => CcMode::ShardLock,
            _ => CcMode::Mvcc,
        }
    }
}

/// Full description of one chaos scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed: everything derives from it.
    pub seed: u64,
    /// Engine under test.
    pub engine: EngineKind,
    /// Timestamp oracle. GTS enables the timestamp-strict read axiom.
    pub oracle: OracleKind,
    /// Fault profile.
    pub profile: FaultProfile,
    /// Cluster size.
    pub nodes: u32,
    /// Preloaded key range `0..keys`.
    pub keys: u64,
    /// Concurrent client threads.
    pub clients: u32,
    /// Transactions attempted per client.
    pub txns_per_client: u32,
    /// Data-plane parallelism (copy/replay workers, chunk size, drain
    /// batch) the migration runs with.
    pub parallelism: ParallelismConfig,
    /// When set, a background thread runs incremental version-chain GC
    /// (`Cluster::gc_tick`) at this cadence for the whole scenario, so
    /// pruning races the workload, the snapshot copy, and the final scan.
    /// `None` (the seed-derived default) keeps legacy runs byte-identical.
    pub gc_interval: Option<std::time::Duration>,
    /// When set, every node runs the file-backed WAL rooted here (one
    /// `node-<id>` subdirectory per node). Required by the `CrashRestart`
    /// profile — a restart from an in-memory WAL would lose the history.
    /// `None` keeps the in-memory default every legacy scenario uses.
    pub wal_dir: Option<PathBuf>,
    /// Isolation level the cluster runs at. `Serializable` arms the SSI
    /// subsystem on every node and adds the serializability oracle (DSG
    /// cycle check) to the verdict.
    pub isolation: IsolationLevel,
}

impl ScenarioConfig {
    /// Derives the canonical scenario for a seed: engine = `seed % 4`,
    /// oracle alternates GTS/DTS, and every second Remus seed crashes
    /// `T_m` instead of running the tolerated-fault profile.
    pub fn from_seed(seed: u64) -> ScenarioConfig {
        let engine = EngineKind::ALL[(seed % 4) as usize];
        let profile = if engine == EngineKind::Remus && seed % 8 == 4 {
            FaultProfile::CrashTm
        } else {
            FaultProfile::Tolerated
        };
        let oracle = if (seed / 4).is_multiple_of(2) {
            OracleKind::Gts
        } else {
            OracleKind::Dts
        };
        ScenarioConfig {
            seed,
            engine,
            oracle,
            profile,
            nodes: 3,
            keys: 48,
            clients: 3,
            txns_per_client: 10,
            parallelism: Self::parallelism_from_seed(seed),
            gc_interval: None,
            wal_dir: None,
            isolation: IsolationLevel::SnapshotIsolation,
        }
    }

    /// A fixed Remus tolerated-fault scenario for smoke tests.
    pub fn remus_smoke(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            engine: EngineKind::Remus,
            oracle: OracleKind::Dts,
            profile: FaultProfile::Tolerated,
            nodes: 3,
            keys: 48,
            clients: 3,
            txns_per_client: 10,
            parallelism: Self::parallelism_from_seed(seed),
            gc_interval: None,
            wal_dir: None,
            isolation: IsolationLevel::SnapshotIsolation,
        }
    }

    /// The canonical replica scenario: 4 nodes (primaries 0–2, replica 3),
    /// a WAL-shipped replica bootstrapped by virtual-cut backfill serving
    /// seeded read-only clients while a live Remus migration moves
    /// `ShardId(0)` between primaries, under seeded ship/apply faults —
    /// and, on some seeds, a mid-backfill crash-restart of the replica
    /// (see [`FaultProfile::Replica`]).
    pub fn replica(seed: u64, oracle: OracleKind) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            engine: EngineKind::Remus,
            oracle,
            profile: FaultProfile::Replica,
            nodes: 4,
            keys: 48,
            clients: 3,
            txns_per_client: 10,
            parallelism: Self::parallelism_from_seed(seed),
            gc_interval: None,
            wal_dir: None,
            isolation: IsolationLevel::SnapshotIsolation,
        }
    }

    /// A crash-restart drill: file-backed WAL rooted at `wal_dir`, the
    /// victim node and crash stage drawn from the seed (see
    /// [`FaultProfile::CrashRestart`]).
    pub fn crash_restart(
        seed: u64,
        engine: EngineKind,
        oracle: OracleKind,
        wal_dir: impl Into<PathBuf>,
    ) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            engine,
            oracle,
            profile: FaultProfile::CrashRestart,
            nodes: 3,
            keys: 48,
            clients: 3,
            txns_per_client: 10,
            parallelism: Self::parallelism_from_seed(seed),
            gc_interval: None,
            wal_dir: Some(wal_dir.into()),
            isolation: IsolationLevel::SnapshotIsolation,
        }
    }

    /// A serializable-mode scenario: the cluster runs
    /// [`IsolationLevel::Serializable`], the engine cycles through the
    /// *push* engines (`seed % 3` — Squall's shard-lock mode bypasses the
    /// MVCC commit path the SSI hooks live on), and a background GC thread
    /// runs throughout so SIREAD retention and retirement race the
    /// workload and the migration. The verdict adds the serializability
    /// oracle: the committed history's serialization graph must be
    /// acyclic even with the shard moving mid-workload.
    pub fn serializable(seed: u64, oracle: OracleKind) -> ScenarioConfig {
        let push = [
            EngineKind::Remus,
            EngineKind::LockAndAbort,
            EngineKind::WaitAndRemaster,
        ];
        ScenarioConfig {
            seed,
            engine: push[(seed % 3) as usize],
            oracle,
            profile: FaultProfile::Tolerated,
            nodes: 3,
            keys: 48,
            clients: 3,
            txns_per_client: 10,
            parallelism: Self::parallelism_from_seed(seed),
            gc_interval: Some(std::time::Duration::from_millis(2)),
            wal_dir: None,
            isolation: IsolationLevel::Serializable,
        }
    }

    /// Seed-derived data-plane parallelism: worker counts vary from
    /// sequential to 4-wide, and the small chunk size (8 keys over a
    /// 48-key table) forces multiple chunks per shard so the chunked-copy
    /// seams and copy-LSN gating are actually exercised.
    fn parallelism_from_seed(seed: u64) -> ParallelismConfig {
        ParallelismConfig {
            copy_workers: 1 + ((seed / 2) % 4) as usize,
            replay_workers: 1 + ((seed / 3) % 4) as usize,
            chunk_size: 8,
            drain_batch: 1 + ((seed / 5) % 8) as usize,
        }
    }
}

/// The result of one scenario run.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The fault plan that ran.
    pub plan: FaultPlan,
    /// Engine exercised.
    pub engine: EngineKind,
    /// Every recorded transaction.
    pub history: Vec<TxnRecord>,
    /// Checker verdict: the violation list plus which oracles failed.
    pub violations: Verdict,
    /// Committed client transactions.
    pub committed: usize,
    /// Aborted client transactions.
    pub aborted: usize,
    /// Whether the shard-map flip committed.
    pub migration_committed: bool,
    /// `T_m`'s commit timestamp when known.
    pub tm_cts: Option<Timestamp>,
    /// Versions pruned by the concurrent GC thread (`None` when the
    /// scenario ran without one).
    pub gc_pruned: Option<u64>,
    /// Crash-restart drill: the victim node and its WAL replay summary
    /// (`None` for profiles that never restart a node).
    pub restart: Option<(NodeId, ReplaySummary)>,
    /// Read-only transactions served by the replica at its watermark
    /// (zero for profiles without a replica).
    pub replica_reads: usize,
}

impl ScenarioOutcome {
    /// Whether the history checked out.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the scenario with the plan derived from its seed.
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioOutcome {
    let plan = FaultPlan::generate(config.seed, config.profile, NodeId(0), NodeId(1));
    run_scenario_with_specs(config, &plan, &plan.specs)
}

/// Runs the scenario with an explicit fault-spec subset (used by the plan
/// shrinker; `plan` still provides the clock spike and is echoed in the
/// outcome).
pub fn run_scenario_with_specs(
    config: &ScenarioConfig,
    plan: &FaultPlan,
    specs: &[FaultSpec],
) -> ScenarioOutcome {
    let source = NodeId(0);
    let dest = NodeId(1);
    let shard = ShardId(0);

    // ---- cluster ----
    let mut skewed: Vec<Arc<SkewedPhysicalClock>> = Vec::new();
    let oracle: Arc<dyn TimestampOracle> = match config.oracle {
        OracleKind::Gts => Arc::new(Gts::new()),
        OracleKind::Dts => {
            let base: Arc<dyn PhysicalClock> = Arc::new(WallClock::new());
            let physicals: Vec<Arc<dyn PhysicalClock>> = (0..config.nodes)
                .map(|_| {
                    let clock = Arc::new(SkewedPhysicalClock::new(Arc::clone(&base)));
                    skewed.push(Arc::clone(&clock));
                    clock as Arc<dyn PhysicalClock>
                })
                .collect();
            Arc::new(Dts::from_clocks(physicals))
        }
    };
    let mut sim = SimConfig::instant();
    sim.parallelism = config.parallelism;
    sim.isolation = config.isolation;
    if let Some(dir) = &config.wal_dir {
        sim.wal = WalConfig::file(dir.clone());
    }
    let cluster = ClusterBuilder::new(config.nodes as usize)
        .config(sim)
        .oracle_instance(oracle)
        .network(Arc::new(FaultyNetwork::from_seed(
            config.seed,
            config.nodes,
        )))
        .cc_mode(config.engine.cc_mode())
        .build();
    let injector = Arc::new(PlanInjector::from_specs(specs.to_vec()));
    cluster.install_fault_injector(Arc::clone(&injector) as Arc<dyn remus_common::FaultInjector>);
    // The replica profile reserves the last node as a shard-less replica;
    // every other profile spreads the table over the whole cluster.
    let primaries = match config.profile {
        FaultProfile::Replica => config.nodes - 1,
        _ => config.nodes,
    };
    let layout = cluster.create_table(TableId(1), 0, 4, |i| NodeId(i % primaries));
    let task = MigrationTask::single(shard, source, dest);

    // Optional concurrent version-chain GC: races the workload, the
    // snapshot copy, and the catch-up pipeline for the whole scenario.
    // The safe-ts watermark must make it invisible to the SI checker.
    let gc_stop = Arc::new(AtomicBool::new(false));
    let gc_thread = config.gc_interval.map(|interval| {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&gc_stop);
        std::thread::spawn(move || {
            let mut pruned = 0u64;
            while !stop.load(Ordering::SeqCst) {
                pruned += cluster.gc_tick(1024);
                std::thread::sleep(interval);
            }
            pruned
        })
    });

    // ---- shared recording state ----
    let log = Arc::new(HistoryLog::new());
    let seq = Arc::new(AtomicU64::new(0));

    // ---- preload ----
    {
        let session = Session::connect(&cluster, source);
        let begin_seq = seq.fetch_add(1, Ordering::SeqCst);
        let mut txn = session.begin();
        let begin_ts = txn.begin_ts();
        let mut writes = Vec::new();
        for key in 0..config.keys {
            let value = Value::copy_from_slice(format!("init-{key}").as_bytes());
            txn.insert(&layout, key, value.clone())
                .expect("preload insert");
            writes.push(OpWrite {
                key,
                snap_ts: txn.start_ts(),
                kind: MutKind::Insert,
                value: Some(value),
            });
        }
        let routes = txn.routes();
        let xid = txn.xid();
        let cts = txn.commit().expect("preload commit");
        let commit_seq = seq.fetch_add(1, Ordering::SeqCst);
        log.record(TxnRecord {
            xid,
            client: 0,
            begin_ts,
            commit_ts: Some(cts),
            reads: vec![],
            writes,
            routes,
            begin_seq,
            commit_seq,
            replica: false,
        });
    }

    // A clock-skew spike on the destination's physical clock (DTS only:
    // GTS has no per-node clocks to skew).
    if let Some(ms) = plan.clock_spike_ms {
        if let Some(clock) = skewed.get(dest.0 as usize) {
            clock.set_skew_ms(ms);
        }
    }

    // ---- clients + migration ----
    let mut migration_committed = false;
    let mut tm_cts: Option<Timestamp> = None;
    let mut migration_failure: Option<String> = None;
    let mut trace_violations: Vec<Violation> = Vec::new();
    let mut restart: Option<(NodeId, ReplaySummary)> = None;
    match config.profile {
        FaultProfile::Tolerated => {
            let workers: Vec<_> = (0..config.clients)
                .map(|client| {
                    spawn_client(
                        &cluster,
                        &layout,
                        &log,
                        &seq,
                        config,
                        client + 1,
                        config.txns_per_client,
                    )
                })
                .collect();
            // Let the workload get going before the migration starts.
            std::thread::sleep(std::time::Duration::from_millis(10));
            match config.engine.build().migrate(&cluster, &task) {
                Ok(report) => {
                    migration_committed = true;
                    trace_violations = check_migration_traces(&report);
                }
                Err(e) => migration_failure = Some(format!("{e:?}")),
            }
            for w in workers {
                w.join().expect("client thread");
            }
            if migration_committed {
                let row = cluster
                    .current_owner(cluster.node(source), shard)
                    .expect("owner row");
                if row.node == dest && row.cts.is_valid() {
                    tm_cts = Some(row.cts);
                }
            }
        }
        FaultProfile::Replica => {
            // WAL-shipped replica racing a live migration. Bootstrap the
            // replica (virtual-cut backfill), optionally crash-restart it
            // mid-backfill, then run writers on the primaries and seeded
            // read-only clients on the replica while the engine migrates a
            // shard between primaries under ship/apply faults.
            let mut proc =
                remus_core::start_replica(&cluster, REPLICA_NODE).expect("start replica");
            if plan.replica_restart() {
                // Kill the replica while the backfill is in flight: detach
                // the streams, wipe the node via `restart_node` (its apply
                // state is volatile), and re-bootstrap from scratch at a
                // fresh virtual cut.
                std::thread::sleep(std::time::Duration::from_millis(1));
                proc.stop();
                let summary = cluster.restart_node(REPLICA_NODE).expect("restart replica");
                restart = Some((REPLICA_NODE, summary));
                proc = remus_core::start_replica(&cluster, REPLICA_NODE)
                    .expect("re-bootstrap replica");
            }
            let workers: Vec<_> = (0..config.clients)
                .map(|client| {
                    spawn_client(
                        &cluster,
                        &layout,
                        &log,
                        &seq,
                        config,
                        client + 1,
                        config.txns_per_client,
                    )
                })
                .collect();
            let readers: Vec<_> = (0..config.clients)
                .map(|client| {
                    spawn_replica_reader(
                        &cluster,
                        &layout,
                        &log,
                        &seq,
                        config,
                        client + 200,
                        config.txns_per_client,
                    )
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(10));
            match config.engine.build().migrate(&cluster, &task) {
                Ok(report) => {
                    migration_committed = true;
                    trace_violations = check_migration_traces(&report);
                }
                Err(e) => migration_failure = Some(format!("{e:?}")),
            }
            for w in workers {
                w.join().expect("client thread");
            }
            for r in readers {
                r.join().expect("replica reader");
            }
            if migration_committed {
                let row = cluster
                    .current_owner(cluster.node(source), shard)
                    .expect("owner row");
                if row.node == dest && row.cts.is_valid() {
                    tm_cts = Some(row.cts);
                }
            }
            // Catch-up: with writers quiesced, the watermark must reach the
            // newest commit (idle primaries advance it via heartbeats), and
            // a full replica scan there must serve the newest versions.
            let target = log
                .snapshot()
                .iter()
                .filter_map(|r| r.commit_ts)
                .chain(tm_cts)
                .max()
                .unwrap_or(Timestamp(1));
            proc.handle()
                .wait_watermark(target, std::time::Duration::from_secs(30))
                .expect("replica catch-up");
            record_replica_scan(&cluster, &layout, &log, &seq, config.keys);
            assert!(!proc.is_failed(), "replica apply process failed");
            proc.stop();
        }
        FaultProfile::CrashTm => {
            // Quiescent crash drill: run traffic, copy, crash T_m mid-2PC,
            // recover, then run traffic against the recovered cluster.
            let phase1: Vec<_> = (0..config.clients)
                .map(|client| {
                    spawn_client(
                        &cluster,
                        &layout,
                        &log,
                        &seq,
                        config,
                        client + 1,
                        config.txns_per_client / 2,
                    )
                })
                .collect();
            for w in phase1 {
                w.join().expect("phase-1 client");
            }
            let snapshot_ts = cluster.oracle.start_ts(source);
            copy_task_snapshots(
                &cluster,
                &task.shards,
                cluster.node(source),
                cluster.node(dest),
                snapshot_ts,
            )
            .expect("snapshot copy");
            match run_tm_chaos(&cluster, &task, &*injector).expect("tm chaos") {
                TmOutcome::Committed(ts) => {
                    migration_committed = true;
                    tm_cts = Some(ts);
                }
                TmOutcome::Crashed(xid) => {
                    match recover_migration(&cluster, &task, xid).expect("recovery") {
                        RecoveryDecision::RolledForward(ts) => {
                            migration_committed = true;
                            tm_cts = Some(ts);
                        }
                        RecoveryDecision::RolledBack => {}
                    }
                }
            }
            let phase2: Vec<_> = (0..config.clients)
                .map(|client| {
                    spawn_client(
                        &cluster,
                        &layout,
                        &log,
                        &seq,
                        config,
                        client + 100,
                        config.txns_per_client / 2,
                    )
                })
                .collect();
            for w in phase2 {
                w.join().expect("phase-2 client");
            }
        }
        FaultProfile::CrashRestart => {
            // Quiescent node-crash drill: seeded traffic commits onto the
            // victim's durable WAL, the victim dies at a seeded stage of
            // the copy pipeline and is rebuilt from disk, and a fresh
            // engine must then drive the whole migration over the
            // recovered node. The SI checker sees the stitched
            // pre+post-restart history as one timeline.
            assert!(
                config.wal_dir.is_some(),
                "CrashRestart scenarios need a file-backed WAL (set wal_dir)"
            );
            let (victim, stage) = plan
                .crash_restart_spec()
                .expect("CrashRestart plan carries a restart spec");
            let phase1: Vec<_> = (0..config.clients)
                .map(|client| {
                    spawn_client(
                        &cluster,
                        &layout,
                        &log,
                        &seq,
                        config,
                        client + 1,
                        config.txns_per_client / 2,
                    )
                })
                .collect();
            for w in phase1 {
                w.join().expect("phase-1 client");
            }
            if stage >= 1 {
                // A snapshot copy the crash then wipes (destination
                // victim) or leaves stale on the destination (source
                // victim); the post-restart migration re-copies either
                // way because frozen installs are idempotent.
                let snapshot_ts = cluster.oracle.start_ts(source);
                copy_task_snapshots(
                    &cluster,
                    &task.shards,
                    cluster.node(source),
                    cluster.node(dest),
                    snapshot_ts,
                )
                .expect("snapshot copy");
            }
            if stage >= 2 {
                // Catch-up-era traffic: commits landing after the copy's
                // snapshot that must survive the restart and still be
                // present after the re-copy.
                let extra: Vec<_> = (0..config.clients)
                    .map(|client| {
                        spawn_client(
                            &cluster,
                            &layout,
                            &log,
                            &seq,
                            config,
                            client + 50,
                            config.txns_per_client / 2,
                        )
                    })
                    .collect();
                for w in extra {
                    w.join().expect("catch-up client");
                }
            }
            let summary = cluster.restart_node(victim).expect("restart_node");
            restart = Some((victim, summary));
            match config.engine.build().migrate(&cluster, &task) {
                Ok(report) => {
                    migration_committed = true;
                    trace_violations = check_migration_traces(&report);
                }
                Err(e) => migration_failure = Some(format!("{e:?}")),
            }
            if migration_committed {
                let row = cluster
                    .current_owner(cluster.node(source), shard)
                    .expect("owner row");
                if row.node == dest && row.cts.is_valid() {
                    tm_cts = Some(row.cts);
                }
            }
            let phase2: Vec<_> = (0..config.clients)
                .map(|client| {
                    spawn_client(
                        &cluster,
                        &layout,
                        &log,
                        &seq,
                        config,
                        client + 100,
                        config.txns_per_client / 2,
                    )
                })
                .collect();
            for w in phase2 {
                w.join().expect("phase-2 client");
            }
        }
    }
    cluster.uninstall_fault_injector();
    gc_stop.store(true, Ordering::SeqCst);
    let gc_pruned = gc_thread.map(|h| h.join().expect("gc thread"));

    // ---- check ----
    let history = log.snapshot();
    let committed = history
        .iter()
        .filter(|r| r.client > 0 && !r.replica && r.committed())
        .count();
    let aborted = history
        .iter()
        .filter(|r| r.client > 0 && !r.replica && !r.committed())
        .count();
    let replica_reads = history.iter().filter(|r| r.replica).count();
    let check = CheckConfig {
        source,
        dest,
        migrating: vec![shard],
        tm_cts,
        migration_committed,
        strict_timestamp_reads: config.oracle == OracleKind::Gts,
    };
    let mut violations = check_history(&history, &check);
    if config.isolation == IsolationLevel::Serializable {
        violations.extend(check_serializability(&history));
    }
    violations.extend(trace_violations);
    if let Some(detail) = migration_failure {
        violations.push(Violation::MigrationFailed { detail });
    }
    // Final scan from a node that is not the migration source, with a
    // causal token covering every commit in the history.
    let max_cts = history
        .iter()
        .filter_map(|r| r.commit_ts)
        .chain(tm_cts)
        .max()
        .unwrap_or(Timestamp(1));
    let scan_session = Session::connect(&cluster, NodeId(config.nodes - 1));
    let mut scan_txn = scan_session.begin_after(max_cts);
    let observed: BTreeMap<u64, Value> = scan_txn
        .scan_table(&layout)
        .expect("final scan")
        .into_iter()
        .collect();
    scan_txn.abort();
    violations.extend(check_final_state(&history, &observed));

    ScenarioOutcome {
        plan: plan.clone(),
        engine: config.engine,
        history,
        violations,
        committed,
        aborted,
        migration_committed,
        tm_cts,
        gc_pruned,
        restart,
        replica_reads,
    }
}

/// Post-hoc trace invariant for tolerated-fault runs: a migration that
/// reported success must carry well-formed span trees whose root phases
/// match the engine's canonical protocol order (copy before barrier before
/// `T_m`; no unclosed spans).
fn check_migration_traces(report: &MigrationReport) -> Vec<Violation> {
    let mut violations = Vec::new();
    if report.traces.is_empty() {
        violations.push(Violation::TraceMalformed {
            engine: report.engine.to_string(),
            detail: "successful migration recorded no trace".to_string(),
        });
    }
    for trace in &report.traces {
        if let Err(detail) = trace.check_well_formed() {
            violations.push(Violation::TraceMalformed {
                engine: trace.engine.to_string(),
                detail,
            });
            continue;
        }
        if let Some(expected) = expected_phases(trace.engine) {
            let got = trace.root_phases();
            if got != expected {
                violations.push(Violation::TraceMalformed {
                    engine: trace.engine.to_string(),
                    detail: format!("phase sequence {got:?}, expected {expected:?}"),
                });
            }
        }
    }
    violations
}

/// Spawns one seeded client thread: `txns` transactions, each reading 1–2
/// keys and updating 1–2 *other* keys, all distinct, issued in `(shard,
/// key)` order so shard-lock mode cannot deadlock. Every attempted
/// transaction — committed or aborted — is recorded.
fn spawn_client(
    cluster: &Arc<Cluster>,
    layout: &TableLayout,
    log: &Arc<HistoryLog>,
    seq: &Arc<AtomicU64>,
    config: &ScenarioConfig,
    client: u32,
    txns: u32,
) -> std::thread::JoinHandle<()> {
    let cluster = Arc::clone(cluster);
    let layout = *layout;
    let log = Arc::clone(log);
    let seq = Arc::clone(seq);
    let keys = config.keys;
    // Writers coordinate on primaries only; the replica (last node of the
    // replica profile) serves no client writes.
    let nodes = match config.profile {
        FaultProfile::Replica => config.nodes - 1,
        _ => config.nodes,
    };
    let seed = config.seed;
    std::thread::spawn(move || {
        let mut rng =
            SmallRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ u64::from(client));
        let coordinator = NodeId(rng.gen_range(0..nodes));
        let session = Session::connect(&cluster, coordinator);
        for t in 0..txns {
            // Distinct keys; the leading ones are read, the rest written.
            let n_reads = rng.gen_range(1..=2usize);
            let n_writes = rng.gen_range(1..=2usize);
            let mut chosen: Vec<u64> = Vec::new();
            while chosen.len() < n_reads + n_writes {
                let k = rng.gen_range(0..keys);
                if !chosen.contains(&k) {
                    chosen.push(k);
                }
            }
            let mut ops: Vec<(u64, bool)> = chosen
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i >= n_reads))
                .collect();
            // Global statement order by (shard, key): under shard locking
            // every statement takes the shard lock, so a consistent order
            // prevents deadlocks between clients.
            ops.sort_by_key(|(k, _)| (layout.shard_for(*k).0, *k));

            let begin_seq = seq.fetch_add(1, Ordering::SeqCst);
            let mut txn = session.begin();
            let begin_ts = txn.begin_ts();
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            let mut failed = false;
            for (key, is_write) in ops {
                if is_write {
                    let value = Value::copy_from_slice(format!("c{client}-t{t}-k{key}").as_bytes());
                    match txn.update(&layout, key, value.clone()) {
                        Ok(()) => writes.push(OpWrite {
                            key,
                            snap_ts: txn.start_ts(),
                            kind: MutKind::Update,
                            value: Some(value),
                        }),
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                } else {
                    match txn.read(&layout, key) {
                        Ok(observed) => reads.push(OpRead {
                            key,
                            snap_ts: txn.start_ts(),
                            observed,
                        }),
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
            }
            let routes = txn.routes();
            let xid = txn.xid();
            let commit_ts = if failed {
                txn.abort();
                None
            } else {
                txn.commit().ok()
            };
            let commit_seq = if commit_ts.is_some() {
                seq.fetch_add(1, Ordering::SeqCst)
            } else {
                0
            };
            log.record(TxnRecord {
                xid,
                client,
                begin_ts,
                commit_ts,
                reads,
                writes,
                routes,
                begin_seq,
                commit_seq,
                replica: false,
            });
        }
    })
}

/// Spawns one seeded read-only client on the replica: `txns` transactions,
/// each reading 1–3 keys at the replica's watermark. A begin that times out
/// (certification or watermark wait) or a read that errors transiently
/// skips the round — only completed read sets are recorded, each marked
/// with the replica flag so the checker applies the staleness oracle.
fn spawn_replica_reader(
    cluster: &Arc<Cluster>,
    layout: &TableLayout,
    log: &Arc<HistoryLog>,
    seq: &Arc<AtomicU64>,
    config: &ScenarioConfig,
    client: u32,
    txns: u32,
) -> std::thread::JoinHandle<()> {
    let cluster = Arc::clone(cluster);
    let layout = *layout;
    let log = Arc::clone(log);
    let seq = Arc::clone(seq);
    let keys = config.keys;
    let seed = config.seed;
    std::thread::spawn(move || {
        let session =
            ReplicaSession::connect(&cluster, REPLICA_NODE).expect("replica not registered");
        let mut rng =
            SmallRng::seed_from_u64(seed.wrapping_mul(0x9e6c_6356_8b57_d0ed) ^ u64::from(client));
        for t in 0..txns {
            let n_reads = rng.gen_range(1..=3usize);
            let chosen: Vec<u64> = (0..n_reads).map(|_| rng.gen_range(0..keys)).collect();
            let begin_seq = seq.fetch_add(1, Ordering::SeqCst);
            let Ok(txn) = session.begin() else {
                continue;
            };
            let snap = txn.snap_ts();
            let mut reads = Vec::new();
            let mut failed = false;
            for key in chosen {
                match txn.read(&layout, key) {
                    Ok(observed) => reads.push(OpRead {
                        key,
                        snap_ts: snap,
                        observed,
                    }),
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            drop(txn);
            if failed {
                continue;
            }
            let commit_seq = seq.fetch_add(1, Ordering::SeqCst);
            log.record(TxnRecord {
                // Synthetic xid in a range no real transaction reaches.
                xid: TxnId::new(
                    REPLICA_NODE,
                    0x5000_0000 + u64::from(client) * 0x1000 + u64::from(t),
                ),
                client,
                begin_ts: snap,
                commit_ts: Some(snap),
                reads,
                writes: vec![],
                routes: vec![],
                begin_seq,
                commit_seq,
                replica: true,
            });
        }
    })
}

/// Records one full-table replica read at the caught-up watermark — the
/// end-of-scenario staleness assertion: after writers quiesce and the
/// watermark covers every commit, the replica must serve the newest
/// version of every key.
fn record_replica_scan(
    cluster: &Arc<Cluster>,
    layout: &TableLayout,
    log: &Arc<HistoryLog>,
    seq: &Arc<AtomicU64>,
    keys: u64,
) {
    let session = ReplicaSession::connect(cluster, REPLICA_NODE).expect("replica not registered");
    let begin_seq = seq.fetch_add(1, Ordering::SeqCst);
    let txn = session.begin().expect("caught-up replica begin");
    let snap = txn.snap_ts();
    let mut reads = Vec::new();
    for key in 0..keys {
        let observed = txn.read(layout, key).expect("caught-up replica read");
        reads.push(OpRead {
            key,
            snap_ts: snap,
            observed,
        });
    }
    drop(txn);
    let commit_seq = seq.fetch_add(1, Ordering::SeqCst);
    log.record(TxnRecord {
        xid: TxnId::new(REPLICA_NODE, 0x6000_0000),
        client: 999,
        begin_ts: snap,
        commit_ts: Some(snap),
        reads,
        writes: vec![],
        routes: vec![],
        begin_seq,
        commit_seq,
        replica: true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kinds_cover_all_seed_residues() {
        for seed in 0..8u64 {
            let cfg = ScenarioConfig::from_seed(seed);
            assert_eq!(cfg.engine, EngineKind::ALL[(seed % 4) as usize]);
        }
        // Seed 4 is the canonical crash drill.
        assert_eq!(ScenarioConfig::from_seed(4).profile, FaultProfile::CrashTm);
        assert_eq!(
            ScenarioConfig::from_seed(0).profile,
            FaultProfile::Tolerated
        );
    }

    #[test]
    fn smoke_scenario_passes_and_is_deterministic() {
        let cfg = ScenarioConfig::remus_smoke(1);
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.passed(), b.passed());
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert!(a.committed > 0);
    }

    #[test]
    fn crash_scenario_recovers_and_checks_out() {
        let cfg = ScenarioConfig::from_seed(4);
        assert_eq!(cfg.profile, FaultProfile::CrashTm);
        let outcome = run_scenario(&cfg);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
        assert!(outcome.plan.crash_point().is_some());
    }

    #[test]
    fn replica_scenario_smoke() {
        let cfg = ScenarioConfig::replica(2, OracleKind::Dts);
        let outcome = run_scenario(&cfg);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
        assert!(outcome.migration_committed);
        assert!(outcome.committed > 0);
        assert!(outcome.replica_reads > 0, "no replica reads recorded");
    }

    #[test]
    fn restart_scenario_smoke() {
        let dir =
            std::env::temp_dir().join(format!("remus-chaos-restart-smoke-{}", std::process::id()));
        let cfg = ScenarioConfig::crash_restart(7, EngineKind::Remus, OracleKind::Dts, &dir);
        let outcome = run_scenario(&cfg);
        std::fs::remove_dir_all(&dir).expect("tmpdir hygiene");
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
        let (victim, summary) = outcome.restart.expect("restart ran");
        assert!(victim == NodeId(0) || victim == NodeId(1));
        assert!(summary.committed > 0, "replay rebuilt nothing: {summary:?}");
        assert!(outcome.migration_committed);
    }
}
