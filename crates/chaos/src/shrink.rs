//! Counterexample minimization.
//!
//! Three independent shrinkers, all greedy delta-debugging loops:
//!
//! * [`shrink_history`] — given a failing history and the (pure) checker,
//!   removes transaction records while the violation persists. The result
//!   is the smallest sub-history (under greedy removal) that still violates
//!   SI — usually just the writer(s) and reader of the offending key.
//! * [`shrink_plan`] — given a failing fault-spec list and a re-run oracle,
//!   removes scheduled faults while the scenario still fails. Re-running a
//!   scenario is deterministic per seed, so the oracle is stable.
//! * [`smallest_failing_seed`] — scans a candidate seed list in ascending
//!   order for the first failure.

use crate::checker::Verdict;
use crate::history::TxnRecord;
use crate::plan::FaultSpec;

/// Greedily removes records from a failing history while `check` still
/// reports at least one violation. Returns the minimized history and its
/// [`Verdict`] — which names the violated oracle(s), so the minimized
/// counterexample says *what* broke, not just that something did. If the
/// input does not fail, it is returned unchanged with a passing verdict.
pub fn shrink_history<F>(history: &[TxnRecord], check: F) -> (Vec<TxnRecord>, Verdict)
where
    F: Fn(&[TxnRecord]) -> Verdict,
{
    let mut current: Vec<TxnRecord> = history.to_vec();
    let mut violations = check(&current);
    if violations.is_empty() {
        return (current, violations);
    }
    // Repeatedly sweep, dropping any single record whose removal keeps the
    // failure, until a full sweep removes nothing (a fixpoint).
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            let v = check(&candidate);
            if v.is_empty() {
                i += 1;
            } else {
                current = candidate;
                violations = v;
                removed_any = true;
            }
        }
        if !removed_any {
            return (current, violations);
        }
    }
}

/// Greedily removes fault specs while `fails` still returns `true` for the
/// remaining subset. `fails` should re-run the scenario with the candidate
/// spec list (same seed) and report whether the checker still flags it.
pub fn shrink_plan<F>(specs: &[FaultSpec], fails: F) -> Vec<FaultSpec>
where
    F: Fn(&[FaultSpec]) -> bool,
{
    let mut current: Vec<FaultSpec> = specs.to_vec();
    if !fails(&current) {
        return current;
    }
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if fails(&candidate) {
                current = candidate;
                removed_any = true;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            return current;
        }
    }
}

/// Scans `candidates` in ascending order and returns the first seed for
/// which `fails` is `true`.
pub fn smallest_failing_seed<F>(candidates: &[u64], fails: F) -> Option<u64>
where
    F: Fn(u64) -> bool,
{
    let mut sorted: Vec<u64> = candidates.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.into_iter().find(|&seed| fails(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_history, CheckConfig};
    use crate::history::{MutKind, OpWrite};
    use remus_common::fault::{FaultAction, InjectionPoint};
    use remus_common::{NodeId, ShardId, Timestamp, TxnId};

    fn write_rec(n: u64, key: u64, snap: u64, cts: u64) -> TxnRecord {
        TxnRecord {
            xid: TxnId::new(NodeId(0), n),
            client: 0,
            begin_ts: Timestamp(snap),
            commit_ts: Some(Timestamp(cts)),
            reads: vec![],
            writes: vec![OpWrite {
                key,
                snap_ts: Timestamp(snap),
                kind: MutKind::Update,
                value: Some(remus_storage::Value::copy_from_slice(
                    format!("v{n}").as_bytes(),
                )),
            }],
            routes: vec![],
            begin_seq: n * 2,
            commit_seq: n * 2 + 1,
            replica: false,
        }
    }

    #[test]
    fn shrinks_to_the_conflicting_pair() {
        // Records 5 and 6 are a lost-update pair (same key, same snapshot);
        // the other eight are unrelated clean writers.
        let mut history: Vec<TxnRecord> = (0..8u64)
            .map(|n| write_rec(n, n, n * 10 + 1, n * 10 + 2))
            .collect();
        history.push(write_rec(100, 50, 5, 10));
        history.push(write_rec(101, 50, 5, 12));
        let config = CheckConfig {
            source: NodeId(0),
            dest: NodeId(1),
            migrating: vec![ShardId(0)],
            tm_cts: None,
            migration_committed: false,
            strict_timestamp_reads: true,
        };
        let (min, violations) = shrink_history(&history, |h| check_history(h, &config));
        assert_eq!(min.len(), 2, "{min:?}");
        assert!(!violations.is_empty());
        assert!(min.iter().all(|r| r.writes[0].key == 50));
    }

    #[test]
    fn passing_history_is_untouched() {
        let history: Vec<TxnRecord> = (0..4u64)
            .map(|n| write_rec(n, n, n * 10 + 1, n * 10 + 2))
            .collect();
        let config = CheckConfig {
            source: NodeId(0),
            dest: NodeId(1),
            migrating: vec![],
            tm_cts: None,
            migration_committed: false,
            strict_timestamp_reads: true,
        };
        let (min, violations) = shrink_history(&history, |h| check_history(h, &config));
        assert_eq!(min.len(), 4);
        assert!(violations.is_empty());
    }

    #[test]
    fn shrink_plan_keeps_only_the_culprit() {
        let specs: Vec<FaultSpec> = (0..6u32)
            .map(|i| FaultSpec {
                point: InjectionPoint::PropagationShip,
                node: NodeId(0),
                occurrence: i,
                action: if i == 3 {
                    FaultAction::Fail
                } else {
                    FaultAction::Delay(std::time::Duration::from_millis(1))
                },
            })
            .collect();
        // The scenario "fails" iff the Fail spec is present.
        let min = shrink_plan(&specs, |subset| {
            subset.iter().any(|s| s.action == FaultAction::Fail)
        });
        assert_eq!(min.len(), 1);
        assert_eq!(min[0].action, FaultAction::Fail);
    }

    #[test]
    fn smallest_failing_seed_scans_in_order() {
        assert_eq!(smallest_failing_seed(&[9, 3, 7, 5], |s| s >= 5), Some(5));
        assert_eq!(smallest_failing_seed(&[1, 2], |_| false), None);
    }
}
