//! CI chaos smoke: a handful of fixed Remus seeds, each run twice to
//! assert the seed → (fault schedule, verdict) mapping is deterministic.
//! Exits nonzero on any SI violation or determinism break.

use remus_chaos::{run_scenario, ScenarioConfig};

fn main() {
    let seeds = [1u64, 2, 3];
    let mut failed = false;
    for seed in seeds {
        let config = ScenarioConfig::remus_smoke(seed);
        let first = run_scenario(&config);
        let second = run_scenario(&config);
        if first.plan != second.plan {
            println!("seed {seed}: FAIL (fault plan not deterministic)");
            failed = true;
            continue;
        }
        if first.passed() != second.passed() {
            println!("seed {seed}: FAIL (verdict not deterministic)");
            failed = true;
            continue;
        }
        if first.passed() {
            // Stdout carries only seed-deterministic facts (CI diffs two
            // runs); commit/abort counts depend on thread interleaving and
            // go to stderr.
            println!("seed {seed}: ok ({} faults)", first.plan.specs.len());
            eprintln!(
                "seed {seed}: {} committed, {} aborted",
                first.committed, first.aborted
            );
        } else {
            println!("seed {seed}: FAIL ({})", first.violations.summary());
            for v in &first.violations {
                println!("  [{}] {v}", v.oracle());
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
