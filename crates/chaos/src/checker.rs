//! Post-hoc snapshot-isolation checker.
//!
//! Takes the recorded history (every attempted client transaction with its
//! timestamps, read observations, writes, and routing decisions) plus the
//! final table contents, and verifies:
//!
//! 1. **Snapshot reads** — every observed value is explainable by a
//!    committed write visible at the reader's statement snapshot, is not
//!    from the future, not from an aborted transaction, and not staler than
//!    the latest write the reader was *forced* to see. The forcing rule
//!    depends on the oracle:
//!    * always: a write that fully committed (in real time) before the
//!      reader began, with `cts <= snap`, must be visible — sound under
//!      both GTS and DTS, because such a version is committed on the owner
//!      node's chain before the reader's visibility resolution starts;
//!    * `strict_timestamp_reads` (GTS only): *every* committed write with
//!      `cts <= snap` must be visible. Under DTS this would false-positive:
//!      its documented relaxation lets a snapshot from one node's clock
//!      miss a causally unrelated commit stamped by another node's clock.
//! 2. **First-committer-wins** — no two committed transactions wrote the
//!    same key where one's commit timestamp falls inside the other's
//!    (write-statement snapshot, commit] window: that is a lost update.
//! 3. **Monotone routing** — across the migration, transactions routed by
//!    older snapshots go to the source and newer ones to the destination,
//!    with the exact boundary at `T_m.commit_ts` when known; non-migrating
//!    shards never change owner.
//! 4. **Final state** — the post-migration scan equals the
//!    last-committed-write-per-key model of the history (the multiset of
//!    committed data survived the migration).
//!
//! The checker is pure: it never touches the cluster, so the shrinker can
//! re-run it thousands of times on candidate sub-histories.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::{Deref, DerefMut};

use remus_common::{NodeId, ShardId, Timestamp, TxnId};
use remus_storage::Value;

use crate::history::TxnRecord;

/// What the checker needs to know about the scenario.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Migration source node.
    pub source: NodeId,
    /// Migration destination node.
    pub dest: NodeId,
    /// Shards the migration moved.
    pub migrating: Vec<ShardId>,
    /// `T_m.commit_ts` when the migration committed and it is known.
    pub tm_cts: Option<Timestamp>,
    /// Whether the migration (the shard-map flip) committed. When `false`
    /// (cancelled or rolled back), no transaction may route a migrating
    /// shard to the destination.
    pub migration_committed: bool,
    /// Enable the timestamp-strict read axiom (GTS clusters only).
    pub strict_timestamp_reads: bool,
}

/// One migration's routing contract, for histories spanning several
/// migrations (the planner-mode scenarios, where the autopilot moves
/// different shards between different node pairs in one run).
///
/// [`CheckConfig`] describes the classic single-migration scenario; it
/// expands into one `MigrationSpec` per migrating shard. A shard with no
/// spec must never change owner.
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    /// The shard this migration moved.
    pub shard: ShardId,
    /// Owner before the migration.
    pub source: NodeId,
    /// Owner after the migration.
    pub dest: NodeId,
    /// `T_m.commit_ts` when known.
    pub tm_cts: Option<Timestamp>,
    /// Whether the shard-map flip committed. When `false`, no transaction
    /// may route this shard to the destination.
    pub committed: bool,
}

/// The invariant family (oracle) a [`Violation`] belongs to. A failing
/// scenario names the oracles it broke, so shrink output and CI logs say
/// *which* guarantee fell over instead of a bare pass/fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OracleId {
    /// Snapshot-read axioms and first-committer-wins.
    SnapshotIsolation,
    /// Replica watermark soundness and per-session monotonicity.
    Staleness,
    /// Acyclicity of the committed history's serialization graph.
    Serializability,
    /// Monotone shard-map routing across migrations.
    Routing,
    /// Committed-data preservation in the final scan.
    FinalState,
    /// The migration engine itself (expected success, got an error).
    Migration,
    /// Well-formedness of the engine's phase span trace.
    Trace,
}

impl OracleId {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            OracleId::SnapshotIsolation => "snapshot-isolation",
            OracleId::Staleness => "staleness",
            OracleId::Serializability => "serializability",
            OracleId::Routing => "routing",
            OracleId::FinalState => "final-state",
            OracleId::Migration => "migration",
            OracleId::Trace => "trace",
        }
    }
}

impl fmt::Display for OracleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One verified SI violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A read missed a write it was required to see.
    StaleRead {
        /// Reading transaction.
        reader: TxnId,
        /// Key read.
        key: u64,
        /// The statement snapshot.
        snap_ts: Timestamp,
        /// Commit timestamp of the write actually observed (`None` = the
        /// reader saw no value).
        observed_cts: Option<Timestamp>,
        /// Commit timestamp of the newest write the reader had to see.
        required_cts: Timestamp,
    },
    /// A read returned a value committed after the reader's snapshot.
    FutureRead {
        /// Reading transaction.
        reader: TxnId,
        /// Key read.
        key: u64,
        /// The statement snapshot.
        snap_ts: Timestamp,
        /// Commit timestamp of the observed (future) write.
        observed_cts: Timestamp,
    },
    /// A read returned a value only ever written by an aborted transaction.
    AbortedWriteVisible {
        /// Reading transaction.
        reader: TxnId,
        /// Key read.
        key: u64,
        /// The aborted writer.
        writer: TxnId,
    },
    /// A read returned a value no recorded transaction wrote to that key.
    UnexplainedValue {
        /// Reading transaction.
        reader: TxnId,
        /// Key read.
        key: u64,
    },
    /// One transaction's reads saw another transaction's write on one key
    /// but missed its visible write on another (torn visibility).
    FragmentedRead {
        /// Reading transaction.
        reader: TxnId,
        /// The partially-visible writer.
        writer: TxnId,
        /// Key where the writer's effect was missed.
        key: u64,
    },
    /// Two committed transactions wrote the same key, one committing inside
    /// the other's snapshot-to-commit window (first-committer-wins broken).
    LostUpdate {
        /// Key written by both.
        key: u64,
        /// The transaction whose update was lost.
        loser: TxnId,
        /// The transaction that committed inside the loser's window.
        winner: TxnId,
        /// Winner's commit timestamp.
        winner_cts: Timestamp,
        /// Loser's write-statement snapshot.
        loser_snap: Timestamp,
        /// Loser's commit timestamp.
        loser_cts: Timestamp,
    },
    /// The committed history's direct serialization graph has a dependency
    /// cycle: no serial order of the committed transactions explains it.
    SerializabilityViolation {
        /// The transactions on the cycle, in edge order (the last one
        /// depends back on the first).
        cycle: Vec<TxnId>,
    },
    /// Routing across the migration was not monotone in snapshot order.
    NonMonotoneRouting {
        /// The shard whose routing broke.
        shard: ShardId,
        /// Human-readable specifics.
        detail: String,
    },
    /// The final table contents disagree with the history's model.
    FinalStateMismatch {
        /// Mismatching key.
        key: u64,
        /// Value the model expects (`None` = absent).
        expected: Option<Value>,
        /// Value actually present (`None` = absent).
        observed: Option<Value>,
    },
    /// A replica session's snapshot (its observed watermark) regressed
    /// between two of its transactions.
    ReplicaRegression {
        /// The replica-reading client.
        client: u32,
        /// Snapshot of the earlier transaction.
        earlier: Timestamp,
        /// Snapshot of the later transaction (smaller — the regression).
        later: Timestamp,
    },
    /// The migration itself failed when the scenario expected success.
    MigrationFailed {
        /// The engine error.
        detail: String,
    },
    /// A successful migration produced a malformed or out-of-order phase
    /// span tree.
    TraceMalformed {
        /// Engine whose trace failed the check.
        engine: String,
        /// What the well-formedness check rejected.
        detail: String,
    },
}

impl Violation {
    /// The oracle (invariant family) this violation falls under.
    pub fn oracle(&self) -> OracleId {
        match self {
            Violation::StaleRead { .. }
            | Violation::FutureRead { .. }
            | Violation::AbortedWriteVisible { .. }
            | Violation::UnexplainedValue { .. }
            | Violation::FragmentedRead { .. }
            | Violation::LostUpdate { .. } => OracleId::SnapshotIsolation,
            Violation::SerializabilityViolation { .. } => OracleId::Serializability,
            Violation::NonMonotoneRouting { .. } => OracleId::Routing,
            Violation::FinalStateMismatch { .. } => OracleId::FinalState,
            Violation::ReplicaRegression { .. } => OracleId::Staleness,
            Violation::MigrationFailed { .. } => OracleId::Migration,
            Violation::TraceMalformed { .. } => OracleId::Trace,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::StaleRead {
                reader,
                key,
                snap_ts,
                observed_cts,
                required_cts,
            } => write!(
                f,
                "stale read: {reader} read key {key} at snap {snap_ts} and observed \
                 {observed_cts:?}, but a write at {required_cts} was required to be visible"
            ),
            Violation::FutureRead {
                reader,
                key,
                snap_ts,
                observed_cts,
            } => write!(
                f,
                "future read: {reader} read key {key} at snap {snap_ts} but observed a value \
                 committed at {observed_cts}"
            ),
            Violation::AbortedWriteVisible {
                reader,
                key,
                writer,
            } => write!(
                f,
                "aborted write visible: {reader} read key {key} and observed a value written \
                 only by aborted {writer}"
            ),
            Violation::UnexplainedValue { reader, key } => write!(
                f,
                "unexplained value: {reader} read key {key} and observed a value no recorded \
                 transaction wrote"
            ),
            Violation::FragmentedRead {
                reader,
                writer,
                key,
            } => write!(
                f,
                "fragmented read: {reader} saw part of {writer}'s writes but missed its \
                 visible write to key {key}"
            ),
            Violation::LostUpdate {
                key,
                loser,
                winner,
                winner_cts,
                loser_snap,
                loser_cts,
            } => write!(
                f,
                "lost update on key {key}: {winner} committed at {winner_cts} inside \
                 {loser}'s window ({loser_snap}, {loser_cts}]"
            ),
            Violation::SerializabilityViolation { cycle } => {
                write!(f, "serializability violation: dependency cycle ")?;
                for xid in cycle {
                    write!(f, "{xid} -> ")?;
                }
                match cycle.first() {
                    Some(first) => write!(f, "{first}"),
                    None => write!(f, "(empty)"),
                }
            }
            Violation::NonMonotoneRouting { shard, detail } => {
                write!(f, "non-monotone routing on {shard}: {detail}")
            }
            Violation::FinalStateMismatch {
                key,
                expected,
                observed,
            } => write!(
                f,
                "final state mismatch on key {key}: expected {:?}, observed {:?}",
                expected
                    .as_ref()
                    .map(|v| String::from_utf8_lossy(v.as_ref()).into_owned()),
                observed
                    .as_ref()
                    .map(|v| String::from_utf8_lossy(v.as_ref()).into_owned()),
            ),
            Violation::ReplicaRegression {
                client,
                earlier,
                later,
            } => write!(
                f,
                "replica session of client {client} read at {later} after reading at {earlier}"
            ),
            Violation::MigrationFailed { detail } => write!(f, "migration failed: {detail}"),
            Violation::TraceMalformed { engine, detail } => {
                write!(f, "malformed {engine} trace: {detail}")
            }
        }
    }
}

/// The checker's verdict: the full violation list plus, derived from it,
/// *which oracles failed*. Derefs to `Vec<Violation>` so existing
/// `.is_empty()` / `.iter()` / `.extend(..)` call sites keep working;
/// [`Display`](fmt::Display) names the failed oracles first, so shrink
/// output and CI logs lead with the violated invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdict {
    violations: Vec<Violation>,
}

impl Verdict {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The distinct oracles that failed, sorted and deduplicated.
    pub fn failed_oracles(&self) -> Vec<OracleId> {
        let mut oracles: Vec<OracleId> = self.violations.iter().map(|v| v.oracle()).collect();
        oracles.sort();
        oracles.dedup();
        oracles
    }

    /// One-line summary: `"pass"`, or the violation count plus the failed
    /// oracle names (`"3 violations; failed oracles: snapshot-isolation,
    /// routing"`).
    pub fn summary(&self) -> String {
        if self.passed() {
            return "pass".to_string();
        }
        let names: Vec<&str> = self.failed_oracles().iter().map(|o| o.name()).collect();
        format!(
            "{} violation{}; failed oracles: {}",
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" },
            names.join(", ")
        )
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for v in &self.violations {
            writeln!(f, "  [{}] {v}", v.oracle())?;
        }
        Ok(())
    }
}

impl Deref for Verdict {
    type Target = Vec<Violation>;
    fn deref(&self) -> &Vec<Violation> {
        &self.violations
    }
}

impl DerefMut for Verdict {
    fn deref_mut(&mut self) -> &mut Vec<Violation> {
        &mut self.violations
    }
}

impl From<Vec<Violation>> for Verdict {
    fn from(violations: Vec<Violation>) -> Verdict {
        Verdict { violations }
    }
}

impl From<Verdict> for Vec<Violation> {
    fn from(verdict: Verdict) -> Vec<Violation> {
        verdict.violations
    }
}

impl IntoIterator for Verdict {
    type Item = Violation;
    type IntoIter = std::vec::IntoIter<Violation>;
    fn into_iter(self) -> Self::IntoIter {
        self.violations.into_iter()
    }
}

impl<'a> IntoIterator for &'a Verdict {
    type Item = &'a Violation;
    type IntoIter = std::slice::Iter<'a, Violation>;
    fn into_iter(self) -> Self::IntoIter {
        self.violations.iter()
    }
}

/// One committed write in a key's version chain, as reconstructed from the
/// history.
#[derive(Debug, Clone)]
struct ChainEntry {
    cts: Timestamp,
    /// Row value after the write (`None` = deleted).
    value_after: Option<Value>,
    xid: TxnId,
    commit_seq: u64,
}

fn chains_of(history: &[TxnRecord]) -> HashMap<u64, Vec<ChainEntry>> {
    let mut chains: HashMap<u64, Vec<ChainEntry>> = HashMap::new();
    for rec in history.iter().filter(|r| r.committed()) {
        let cts = rec.commit_ts.expect("committed");
        // Last write per key within the transaction wins.
        let mut per_key: BTreeMap<u64, Option<Value>> = BTreeMap::new();
        for w in &rec.writes {
            per_key.insert(w.key, w.value.clone());
        }
        for (key, value_after) in per_key {
            chains.entry(key).or_default().push(ChainEntry {
                cts,
                value_after,
                xid: rec.xid,
                commit_seq: rec.commit_seq,
            });
        }
    }
    for chain in chains.values_mut() {
        chain.sort_by_key(|e| e.cts);
    }
    chains
}

/// Runs the read, first-committer-wins, and routing checks over a history
/// with a single source→dest migration (the classic scenario shape).
pub fn check_history(history: &[TxnRecord], config: &CheckConfig) -> Verdict {
    let specs: Vec<MigrationSpec> = config
        .migrating
        .iter()
        .map(|&shard| MigrationSpec {
            shard,
            source: config.source,
            dest: config.dest,
            tm_cts: config.tm_cts,
            committed: config.migration_committed,
        })
        .collect();
    check_history_multi(history, &specs, config.strict_timestamp_reads)
}

/// Runs the read, first-committer-wins, and routing checks over a history
/// spanning any number of migrations, each described by its own
/// [`MigrationSpec`]. Shards without a spec must never change owner.
pub fn check_history_multi(
    history: &[TxnRecord],
    specs: &[MigrationSpec],
    strict_timestamp_reads: bool,
) -> Verdict {
    let mut violations = Vec::new();
    let chains = chains_of(history);
    let by_xid: HashMap<TxnId, &TxnRecord> = history.iter().map(|r| (r.xid, r)).collect();
    check_reads(
        history,
        &chains,
        &by_xid,
        strict_timestamp_reads,
        &mut violations,
    );
    check_first_committer_wins(history, &mut violations);
    check_routing(history, specs, &mut violations);
    check_replica_sessions(history, &mut violations);
    Verdict::from(violations)
}

/// The serializability oracle: rebuilds the direct serialization graph of
/// the committed history and reports any dependency cycle.
///
/// Nodes are committed non-replica transactions. Edges:
///
/// * **ww** — along each key's version chain, writer → next writer (the
///   chain is totally ordered by `cts`, so adjacency gives the full order
///   transitively);
/// * **wr** — observed-version writer → reader, resolved from the *value*
///   the reader actually returned (the same resolution the SI checker
///   uses);
/// * **rw** — reader → the writer of the *next* version after the one it
///   observed. Crucially this is recomputed from version order, not from
///   timestamps: a reader that (legally, under decentralized timestamps)
///   missed a commit below its snapshot still read the older version and
///   still owes the newer writer an anti-dependency edge.
///
/// A cycle means no serial order of the committed transactions explains
/// the history — under `IsolationLevel::Serializable` the SSI subsystem
/// must have prevented it, so any cycle is an engine bug.
pub fn check_serializability(history: &[TxnRecord]) -> Vec<Violation> {
    let chains = chains_of(history);
    // Adjacency over committed transactions, deterministic order.
    let mut edges: BTreeMap<TxnId, Vec<TxnId>> = history
        .iter()
        .filter(|r| r.committed() && !r.replica)
        .map(|r| (r.xid, Vec::new()))
        .collect();
    fn add_edge(edges: &mut BTreeMap<TxnId, Vec<TxnId>>, from: TxnId, to: TxnId) {
        // Both endpoints must be committed non-replica transactions (the
        // node set); self-edges and duplicates are dropped.
        if from == to || !edges.contains_key(&to) {
            return;
        }
        if let Some(out) = edges.get_mut(&from) {
            if !out.contains(&to) {
                out.push(to);
            }
        }
    }

    // ww: version-chain adjacency.
    for chain in chains.values() {
        for pair in chain.windows(2) {
            add_edge(&mut edges, pair[0].xid, pair[1].xid);
        }
    }

    // wr and rw, from each committed reader's observations.
    for rec in history.iter().filter(|r| r.committed() && !r.replica) {
        for read in &rec.reads {
            if rec.writes.iter().any(|w| w.key == read.key) {
                continue; // read-your-writes, not modeled (runner keeps sets disjoint)
            }
            let Some(chain) = chains.get(&read.key) else {
                continue;
            };
            // Index of the version the reader observed: -1 = the initial
            // (pre-history) state.
            let observed_idx: Option<usize> = match &read.observed {
                Some(v) => chain
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.cts <= read.snap_ts && e.value_after.as_ref() == Some(v))
                    .map(|(i, _)| i)
                    .max(),
                None => chain
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.cts <= read.snap_ts && e.value_after.is_none())
                    .map(|(i, _)| i)
                    .max(),
            };
            match observed_idx {
                Some(i) => {
                    // wr: the observed version's writer happens before the
                    // reader; rw: the reader happens before the next
                    // version's writer (ww adjacency covers the rest).
                    add_edge(&mut edges, chain[i].xid, rec.xid);
                    if let Some(next) = chain.get(i + 1) {
                        add_edge(&mut edges, rec.xid, next.xid);
                    }
                }
                None => {
                    if read.observed.is_none() {
                        // Initial state observed: the reader precedes the
                        // key's first writer.
                        if let Some(first) = chain.first() {
                            add_edge(&mut edges, rec.xid, first.xid);
                        }
                    }
                    // A value no committed entry at/below snap explains is
                    // a future/unexplained read — the SI oracle owns that;
                    // no edge here.
                }
            }
        }
    }

    find_cycle(&edges)
        .map(|cycle| Violation::SerializabilityViolation { cycle })
        .into_iter()
        .collect()
}

/// Iterative three-color DFS; returns the first back-edge cycle found, in
/// edge order. Deterministic because the adjacency map and edge lists are
/// built in deterministic order.
fn find_cycle(edges: &BTreeMap<TxnId, Vec<TxnId>>) -> Option<Vec<TxnId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<TxnId, Color> = edges.keys().map(|&x| (x, Color::White)).collect();
    for &root in edges.keys() {
        if color[&root] != Color::White {
            continue;
        }
        // Stack of (node, next-child-index); the gray path is the stack.
        let mut stack: Vec<(TxnId, usize)> = vec![(root, 0)];
        color.insert(root, Color::Gray);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let out = &edges[&node];
            if *next >= out.len() {
                color.insert(node, Color::Black);
                stack.pop();
                continue;
            }
            let child = out[*next];
            *next += 1;
            match color[&child] {
                Color::White => {
                    color.insert(child, Color::Gray);
                    stack.push((child, 0));
                }
                Color::Gray => {
                    // Back edge: the cycle is the stack suffix from `child`.
                    let start = stack
                        .iter()
                        .position(|&(x, _)| x == child)
                        .expect("gray node is on the stack");
                    return Some(stack[start..].iter().map(|&(x, _)| x).collect());
                }
                Color::Black => {}
            }
        }
    }
    None
}

/// Replica staleness oracle, part 2: per-session monotone watermark. The
/// replica's published watermark never regresses, so the snapshots one
/// session reads at (in its own real-time order) must not either.
fn check_replica_sessions(history: &[TxnRecord], violations: &mut Vec<Violation>) {
    let mut last: HashMap<u32, Timestamp> = HashMap::new();
    let mut sessions: Vec<&TxnRecord> = history.iter().filter(|r| r.replica).collect();
    sessions.sort_by_key(|r| r.begin_seq);
    for rec in sessions {
        if let Some(&prev) = last.get(&rec.client) {
            if rec.begin_ts < prev {
                violations.push(Violation::ReplicaRegression {
                    client: rec.client,
                    earlier: prev,
                    later: rec.begin_ts,
                });
            }
        }
        last.insert(rec.client, rec.begin_ts);
    }
}

fn check_reads(
    history: &[TxnRecord],
    chains: &HashMap<u64, Vec<ChainEntry>>,
    by_xid: &HashMap<TxnId, &TxnRecord>,
    strict_timestamp_reads: bool,
    violations: &mut Vec<Violation>,
) {
    let empty: Vec<ChainEntry> = Vec::new();
    for rec in history.iter().filter(|r| r.committed()) {
        // Replica reads are always checked strictly: the applier publishes
        // a watermark `W` only after every commit with `cts <= W` (on any
        // primary) has been applied, so a replica read at `W` must see all
        // of them — even under DTS, where primary reads get the relaxed
        // real-time rule.
        let strict = strict_timestamp_reads || rec.replica;
        // (writer, writer_cts) pairs this reader observed, for the
        // fragmented-read check.
        let mut observed_writers: Vec<(TxnId, Timestamp)> = Vec::new();
        for read in &rec.reads {
            if rec.writes.iter().any(|w| w.key == read.key) {
                // Read-your-writes is not modeled; the runner keeps read
                // and write sets disjoint, so this only guards hand-built
                // histories.
                continue;
            }
            let chain = chains.get(&read.key).unwrap_or(&empty);
            // The newest write the reader is required to see.
            let required = chain
                .iter()
                .filter(|e| {
                    e.cts <= read.snap_ts
                        && e.xid != rec.xid
                        && (strict || e.commit_seq < rec.begin_seq)
                })
                .max_by_key(|e| e.cts);
            let floor = required.map(|e| e.cts).unwrap_or(Timestamp(0));
            match &read.observed {
                None => {
                    let absence_ok = match required {
                        None => true,
                        Some(e) if e.value_after.is_none() => true,
                        // A delete at or above the floor (still <= snap)
                        // explains the absence.
                        Some(_) => chain.iter().any(|e| {
                            e.cts >= floor && e.cts <= read.snap_ts && e.value_after.is_none()
                        }),
                    };
                    if !absence_ok {
                        violations.push(Violation::StaleRead {
                            reader: rec.xid,
                            key: read.key,
                            snap_ts: read.snap_ts,
                            observed_cts: None,
                            required_cts: floor,
                        });
                    }
                }
                Some(v) => {
                    let matching: Vec<&ChainEntry> = chain
                        .iter()
                        .filter(|e| e.value_after.as_ref() == Some(v))
                        .collect();
                    if matching.is_empty() {
                        // Not a committed value for this key: aborted
                        // writer, or never written at all.
                        let aborted = history.iter().find(|r| {
                            !r.committed()
                                && r.writes
                                    .iter()
                                    .any(|w| w.key == read.key && w.value.as_ref() == Some(v))
                        });
                        violations.push(match aborted {
                            Some(a) => Violation::AbortedWriteVisible {
                                reader: rec.xid,
                                key: read.key,
                                writer: a.xid,
                            },
                            None => Violation::UnexplainedValue {
                                reader: rec.xid,
                                key: read.key,
                            },
                        });
                        continue;
                    }
                    match matching
                        .iter()
                        .filter(|e| e.cts <= read.snap_ts)
                        .max_by_key(|e| e.cts)
                    {
                        None => {
                            let first = matching.iter().min_by_key(|e| e.cts).unwrap();
                            violations.push(Violation::FutureRead {
                                reader: rec.xid,
                                key: read.key,
                                snap_ts: read.snap_ts,
                                observed_cts: first.cts,
                            });
                        }
                        Some(e) if e.cts < floor => {
                            violations.push(Violation::StaleRead {
                                reader: rec.xid,
                                key: read.key,
                                snap_ts: read.snap_ts,
                                observed_cts: Some(e.cts),
                                required_cts: floor,
                            });
                        }
                        Some(e) => observed_writers.push((e.xid, e.cts)),
                    }
                }
            }
        }

        if strict {
            check_fragmented(rec, &observed_writers, chains, by_xid, violations);
        }
    }
}

/// Torn-visibility check: if the reader saw writer `W` on one key, every
/// other key `W` wrote that the reader also read (with `W.cts <= snap`)
/// must show `W`'s effect or something newer.
fn check_fragmented(
    rec: &TxnRecord,
    observed_writers: &[(TxnId, Timestamp)],
    chains: &HashMap<u64, Vec<ChainEntry>>,
    by_xid: &HashMap<TxnId, &TxnRecord>,
    violations: &mut Vec<Violation>,
) {
    for &(writer, writer_cts) in observed_writers {
        let Some(wrec) = by_xid.get(&writer) else {
            continue;
        };
        for w in &wrec.writes {
            let Some(read) = rec.reads.iter().find(|r| r.key == w.key) else {
                continue;
            };
            if writer_cts > read.snap_ts || rec.writes.iter().any(|own| own.key == w.key) {
                continue;
            }
            // The observed value on this key must come from cts >= writer's.
            let chain = &chains[&w.key];
            let seen_ok = match &read.observed {
                Some(v) => chain
                    .iter()
                    .any(|e| e.value_after.as_ref() == Some(v) && e.cts >= writer_cts),
                None => chain.iter().any(|e| {
                    e.value_after.is_none() && e.cts >= writer_cts && e.cts <= read.snap_ts
                }),
            };
            if !seen_ok {
                violations.push(Violation::FragmentedRead {
                    reader: rec.xid,
                    writer,
                    key: w.key,
                });
            }
        }
    }
}

fn check_first_committer_wins(history: &[TxnRecord], violations: &mut Vec<Violation>) {
    // Per key: every committed writer with (write-statement snap, cts).
    let mut writers: HashMap<u64, Vec<(TxnId, Timestamp, Timestamp)>> = HashMap::new();
    for rec in history.iter().filter(|r| r.committed()) {
        let cts = rec.commit_ts.expect("committed");
        let mut seen = std::collections::HashSet::new();
        for w in &rec.writes {
            // First write statement to the key is the one FCW judges.
            if seen.insert(w.key) {
                writers
                    .entry(w.key)
                    .or_default()
                    .push((rec.xid, w.snap_ts, cts));
            }
        }
    }
    for (key, list) in &writers {
        for (a_xid, _a_snap, a_cts) in list {
            for (b_xid, b_snap, b_cts) in list {
                if a_xid == b_xid {
                    continue;
                }
                let inside_window = *a_cts > *b_snap && *a_cts < *b_cts;
                let tied = a_cts == b_cts && a_xid < b_xid;
                if inside_window || tied {
                    violations.push(Violation::LostUpdate {
                        key: *key,
                        loser: *b_xid,
                        winner: *a_xid,
                        winner_cts: *a_cts,
                        loser_snap: *b_snap,
                        loser_cts: *b_cts,
                    });
                }
            }
        }
    }
}

fn check_routing(history: &[TxnRecord], specs: &[MigrationSpec], violations: &mut Vec<Violation>) {
    let spec_of: HashMap<ShardId, &MigrationSpec> = specs.iter().map(|s| (s.shard, s)).collect();
    // shard -> [(begin_ts, node, xid)] over committed transactions.
    let mut per_shard: HashMap<ShardId, Vec<(Timestamp, NodeId, TxnId)>> = HashMap::new();
    for rec in history.iter().filter(|r| r.committed()) {
        for &(shard, node) in &rec.routes {
            per_shard
                .entry(shard)
                .or_default()
                .push((rec.begin_ts, node, rec.xid));
        }
    }
    for (shard, routes) in &per_shard {
        if let Some(spec) = spec_of.get(shard) {
            for &(begin_ts, node, xid) in routes {
                if node != spec.source && node != spec.dest {
                    violations.push(Violation::NonMonotoneRouting {
                        shard: *shard,
                        detail: format!("{xid} routed to bystander {node}"),
                    });
                } else if node == spec.dest && !spec.committed {
                    violations.push(Violation::NonMonotoneRouting {
                        shard: *shard,
                        detail: format!(
                            "{xid} routed to the destination of a rolled-back migration"
                        ),
                    });
                } else if let Some(tm) = spec.tm_cts {
                    if node == spec.source && begin_ts >= tm {
                        violations.push(Violation::NonMonotoneRouting {
                            shard: *shard,
                            detail: format!(
                                "{xid} began at {begin_ts} >= T_m {tm} but routed to the source"
                            ),
                        });
                    } else if node == spec.dest && begin_ts < tm {
                        violations.push(Violation::NonMonotoneRouting {
                            shard: *shard,
                            detail: format!(
                                "{xid} began at {begin_ts} < T_m {tm} but routed to the \
                                 destination"
                            ),
                        });
                    }
                }
            }
            if spec.tm_cts.is_none() && spec.committed {
                // Boundary unknown: routing must still be monotone.
                let max_source = routes
                    .iter()
                    .filter(|(_, n, _)| *n == spec.source)
                    .map(|(b, _, _)| *b)
                    .max();
                let min_dest = routes
                    .iter()
                    .filter(|(_, n, _)| *n == spec.dest)
                    .map(|(b, _, _)| *b)
                    .min();
                if let (Some(ms), Some(md)) = (max_source, min_dest) {
                    if ms >= md {
                        violations.push(Violation::NonMonotoneRouting {
                            shard: *shard,
                            detail: format!(
                                "source-routed snapshot {ms} >= destination-routed snapshot {md}"
                            ),
                        });
                    }
                }
            }
        } else {
            // Non-migrating shards never change owner.
            let mut nodes: Vec<NodeId> = routes.iter().map(|(_, n, _)| *n).collect();
            nodes.sort();
            nodes.dedup();
            if nodes.len() > 1 {
                violations.push(Violation::NonMonotoneRouting {
                    shard: *shard,
                    detail: format!("non-migrating shard routed to {nodes:?}"),
                });
            }
        }
    }
}

/// Checks the post-migration scan against the history's
/// last-committed-write-per-key model.
pub fn check_final_state(history: &[TxnRecord], observed: &BTreeMap<u64, Value>) -> Vec<Violation> {
    let chains = chains_of(history);
    let mut violations = Vec::new();
    let mut expected: BTreeMap<u64, Value> = BTreeMap::new();
    for (key, chain) in &chains {
        if let Some(last) = chain.iter().max_by_key(|e| e.cts) {
            if let Some(v) = &last.value_after {
                expected.insert(*key, v.clone());
            }
        }
    }
    let keys: Vec<u64> = expected
        .keys()
        .chain(observed.keys())
        .copied()
        .collect::<std::collections::BTreeSet<u64>>()
        .into_iter()
        .collect();
    for key in keys {
        let e = expected.get(&key);
        let o = observed.get(&key);
        if e != o {
            violations.push(Violation::FinalStateMismatch {
                key,
                expected: e.cloned(),
                observed: o.cloned(),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{MutKind, OpRead, OpWrite};

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    fn xid(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    fn cfg() -> CheckConfig {
        CheckConfig {
            source: NodeId(0),
            dest: NodeId(1),
            migrating: vec![ShardId(0)],
            tm_cts: None,
            migration_committed: false,
            strict_timestamp_reads: true,
        }
    }

    fn writer(n: u64, key: u64, snap: u64, cts: u64, v: &str, seq: u64) -> TxnRecord {
        TxnRecord {
            xid: xid(n),
            client: 0,
            begin_ts: Timestamp(snap),
            commit_ts: Some(Timestamp(cts)),
            reads: vec![],
            writes: vec![OpWrite {
                key,
                snap_ts: Timestamp(snap),
                kind: MutKind::Update,
                value: Some(val(v)),
            }],
            routes: vec![],
            begin_seq: seq,
            commit_seq: seq + 1,
            replica: false,
        }
    }

    fn reader(n: u64, key: u64, snap: u64, observed: Option<&str>, seq: u64) -> TxnRecord {
        TxnRecord {
            xid: xid(n),
            client: 0,
            begin_ts: Timestamp(snap),
            commit_ts: Some(Timestamp(snap + 1)),
            reads: vec![OpRead {
                key,
                snap_ts: Timestamp(snap),
                observed: observed.map(val),
            }],
            writes: vec![],
            routes: vec![],
            begin_seq: seq,
            commit_seq: seq + 1,
            replica: false,
        }
    }

    #[test]
    fn clean_history_passes() {
        let h = vec![
            writer(1, 7, 5, 10, "a", 0),
            reader(2, 7, 15, Some("a"), 2),
            writer(3, 7, 20, 25, "b", 4),
            reader(4, 7, 30, Some("b"), 6),
        ];
        assert!(check_history(&h, &cfg()).is_empty());
    }

    #[test]
    fn stale_read_is_flagged_strict() {
        let h = vec![
            writer(1, 7, 5, 10, "a", 0),
            writer(2, 7, 15, 20, "b", 2),
            // Snap 30 must see "b" (cts 20) but observed "a" (cts 10).
            reader(3, 7, 30, Some("a"), 4),
        ];
        let v = check_history(&h, &cfg());
        assert!(
            v.iter().any(|v| matches!(v, Violation::StaleRead { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn stale_read_requires_real_time_order_when_not_strict() {
        let mut config = cfg();
        config.strict_timestamp_reads = false;
        // Writer committed with cts 20 but only *after* (in real time) the
        // reader began: begin_seq 1 < commit_seq 5. Missing it is allowed
        // under DTS.
        let mut w = writer(1, 7, 15, 20, "b", 4);
        w.commit_seq = 5;
        let mut r = reader(3, 7, 30, None, 1);
        r.begin_seq = 1;
        let h = vec![w.clone(), r.clone()];
        assert!(check_history(&h, &config).is_empty());
        // Same history with the write committed before the reader began is
        // a violation even without strict mode.
        w.commit_seq = 0;
        let h = vec![w, r];
        let v = check_history(&h, &config);
        assert!(
            v.iter().any(|v| matches!(v, Violation::StaleRead { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn aborted_write_visible_is_flagged() {
        let mut aborted = writer(1, 7, 5, 10, "ghost", 0);
        aborted.commit_ts = None;
        let h = vec![aborted, reader(2, 7, 15, Some("ghost"), 2)];
        let v = check_history(&h, &cfg());
        assert!(
            v.iter()
                .any(|v| matches!(v, Violation::AbortedWriteVisible { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn future_read_is_flagged() {
        let h = vec![
            writer(1, 7, 50, 60, "late", 0),
            reader(2, 7, 30, Some("late"), 2),
        ];
        let v = check_history(&h, &cfg());
        assert!(
            v.iter().any(|v| matches!(v, Violation::FutureRead { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn lost_update_is_flagged() {
        // Both writers started from snap 5 and both committed: the later
        // commit lost the earlier one's update.
        let h = vec![writer(1, 7, 5, 10, "a", 0), writer(2, 7, 5, 12, "b", 2)];
        let v = check_history(&h, &cfg());
        assert!(
            v.iter().any(|v| matches!(v, Violation::LostUpdate { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn serialized_writers_are_not_lost_updates() {
        let h = vec![writer(1, 7, 5, 10, "a", 0), writer(2, 7, 11, 12, "b", 2)];
        assert!(check_history(&h, &cfg()).is_empty());
    }

    #[test]
    fn fragmented_read_is_flagged() {
        // Writer 1 wrote keys 7 and 8 at cts 10. The reader saw key 7's
        // new value but key 8's pre-state.
        let base = writer(90, 8, 1, 2, "old8", 0);
        let mut w = writer(1, 7, 5, 10, "new7", 2);
        w.writes.push(OpWrite {
            key: 8,
            snap_ts: Timestamp(5),
            kind: MutKind::Update,
            value: Some(val("new8")),
        });
        let mut r = reader(2, 7, 15, Some("new7"), 4);
        r.reads.push(OpRead {
            key: 8,
            snap_ts: Timestamp(15),
            observed: Some(val("old8")),
        });
        let h = vec![base, w, r];
        let v = check_history(&h, &cfg());
        assert!(
            v.iter()
                .any(|v| matches!(v, Violation::FragmentedRead { .. })
                    || matches!(v, Violation::StaleRead { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn routing_monotone_with_known_boundary() {
        let mut config = cfg();
        config.tm_cts = Some(Timestamp(100));
        config.migration_committed = true;
        let mut early = writer(1, 7, 50, 60, "a", 0);
        early.routes = vec![(ShardId(0), NodeId(0))];
        let mut late = writer(2, 7, 150, 160, "b", 2);
        late.routes = vec![(ShardId(0), NodeId(1))];
        assert!(check_history(&[early.clone(), late.clone()], &config).is_empty());
        // A post-T_m transaction routed to the source is a violation.
        late.routes = vec![(ShardId(0), NodeId(0))];
        let v = check_history(&[early, late], &config);
        assert!(
            v.iter()
                .any(|v| matches!(v, Violation::NonMonotoneRouting { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn dest_route_after_rollback_is_flagged() {
        let config = cfg(); // migration_committed: false
        let mut r = writer(1, 7, 50, 60, "a", 0);
        r.routes = vec![(ShardId(0), NodeId(1))];
        let v = check_history(&[r], &config);
        assert!(
            v.iter()
                .any(|v| matches!(v, Violation::NonMonotoneRouting { .. })),
            "{v:?}"
        );
    }

    /// A replica reader missing a commit at or below its watermark is a
    /// stale read even without the GTS strict axiom — that is exactly the
    /// watermark soundness claim.
    #[test]
    fn replica_reads_are_checked_strictly_under_dts() {
        let mut config = cfg();
        config.strict_timestamp_reads = false;
        // The write fully commits only after (in real time) the reader
        // began, so a *primary* reader may miss it under DTS...
        let mut w = writer(1, 7, 15, 20, "b", 4);
        w.commit_seq = 5;
        let mut primary_reader = reader(3, 7, 30, None, 1);
        primary_reader.begin_seq = 1;
        assert!(check_history(&[w.clone(), primary_reader], &config).is_empty());
        // ...but a replica reader at watermark 30 >= cts 20 may not.
        let mut replica_reader = reader(4, 7, 30, None, 1);
        replica_reader.begin_seq = 1;
        replica_reader.replica = true;
        let v = check_history(&[w, replica_reader], &config);
        assert!(
            v.iter().any(|v| matches!(v, Violation::StaleRead { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn replica_session_snapshot_regression_is_flagged() {
        let mut a = reader(1, 7, 30, None, 4);
        a.replica = true;
        a.client = 9;
        let mut b = reader(2, 7, 20, None, 6); // later in real time, older snap
        b.replica = true;
        b.client = 9;
        let v = check_history(&[a.clone(), b.clone()], &cfg());
        assert!(
            v.iter()
                .any(|v| matches!(v, Violation::ReplicaRegression { client: 9, .. })),
            "{v:?}"
        );
        // Different sessions may be at different watermarks.
        b.client = 10;
        assert!(check_history(&[a, b], &cfg()).is_empty());
    }

    /// A transaction that both reads and writes, for serialization-graph
    /// tests.
    #[allow(clippy::too_many_arguments)]
    fn read_write(
        n: u64,
        snap: u64,
        cts: u64,
        reads: &[(u64, Option<&str>)],
        writes: &[(u64, &str)],
        begin_seq: u64,
        commit_seq: u64,
    ) -> TxnRecord {
        TxnRecord {
            xid: xid(n),
            client: 0,
            begin_ts: Timestamp(snap),
            commit_ts: Some(Timestamp(cts)),
            reads: reads
                .iter()
                .map(|&(key, observed)| OpRead {
                    key,
                    snap_ts: Timestamp(snap),
                    observed: observed.map(val),
                })
                .collect(),
            writes: writes
                .iter()
                .map(|&(key, v)| OpWrite {
                    key,
                    snap_ts: Timestamp(snap),
                    kind: MutKind::Update,
                    value: Some(val(v)),
                })
                .collect(),
            routes: vec![],
            begin_seq,
            commit_seq,
            replica: false,
        }
    }

    #[test]
    fn write_skew_passes_si_but_fails_serializability() {
        // The classic write-skew shape: T1 reads key 2 and writes key 1,
        // T2 reads key 1 and writes key 2, both from snapshots below both
        // commits. SI admits it; the serialization graph has the 2-cycle.
        let h = vec![
            writer(1, 1, 1, 2, "a1", 0),
            writer(2, 2, 3, 4, "a2", 2),
            read_write(10, 10, 20, &[(2, Some("a2"))], &[(1, "b1")], 6, 8),
            read_write(11, 11, 21, &[(1, Some("a1"))], &[(2, "b2")], 7, 9),
        ];
        let si = check_history(&h, &cfg());
        assert!(si.passed(), "write skew must be SI-legal: {si:?}");
        let v = check_serializability(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        let Violation::SerializabilityViolation { cycle } = &v[0] else {
            panic!("wrong violation kind: {v:?}");
        };
        assert!(
            cycle.contains(&xid(10)) && cycle.contains(&xid(11)),
            "{cycle:?}"
        );
    }

    #[test]
    fn serial_history_has_no_cycle() {
        let h = vec![
            writer(1, 7, 5, 10, "a", 0),
            reader(2, 7, 15, Some("a"), 2),
            writer(3, 7, 20, 25, "b", 4),
            reader(4, 7, 30, Some("b"), 6),
        ];
        assert!(check_serializability(&h).is_empty());
        // Aborted transactions are not graph nodes.
        let mut aborted = read_write(9, 5, 0, &[(7, Some("a"))], &[(7, "ghost")], 8, 0);
        aborted.commit_ts = None;
        let mut h2 = h.clone();
        h2.push(aborted);
        assert!(check_serializability(&h2).is_empty());
    }

    #[test]
    fn rw_edges_come_from_version_order_not_timestamps() {
        // T1's snapshot (30) is *above* W2's commit (25), but T1 read key
        // 1's older version — legal under decentralized timestamps when W2
        // finished committing after T1 began (commit_seq 12 > begin_seq
        // 9). The anti-dependency T1 → W2 exists all the same, and with
        // W2 → T1 through key 2 the history is unserializable. A
        // timestamp-based rw rule (cts > snap) would miss the cycle.
        let h = vec![
            writer(1, 1, 1, 2, "a1", 0),
            writer(2, 2, 3, 4, "a2", 2),
            read_write(5, 20, 25, &[(2, Some("a2"))], &[(1, "b1")], 8, 12),
            read_write(6, 30, 35, &[(1, Some("a1"))], &[(2, "b2")], 9, 13),
        ];
        let mut config = cfg();
        config.strict_timestamp_reads = false;
        assert!(
            check_history(&h, &config).passed(),
            "the missed read is DTS-legal"
        );
        let v = check_serializability(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        let Violation::SerializabilityViolation { cycle } = &v[0] else {
            panic!("wrong violation kind: {v:?}");
        };
        assert!(
            cycle.contains(&xid(5)) && cycle.contains(&xid(6)),
            "{cycle:?}"
        );
    }

    #[test]
    fn reader_of_initial_state_precedes_the_first_writer() {
        // R observed key 9 absent while W created it; R also overwrote a
        // key W read. R → W (rw on key 9) and W → R (rw on key 8, W read
        // the base version R later replaced): a cycle through an absent
        // read.
        let h = vec![
            writer(1, 8, 1, 2, "base8", 0),
            read_write(5, 10, 22, &[(8, Some("base8"))], &[(9, "w9")], 6, 9),
            read_write(6, 11, 21, &[(9, None)], &[(8, "r8")], 7, 8),
        ];
        let v = check_serializability(&h);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn verdict_names_the_failed_oracles() {
        // A lost update: SI oracle.
        let h = vec![writer(1, 7, 5, 10, "a", 0), writer(2, 7, 5, 12, "b", 2)];
        let verdict = check_history(&h, &cfg());
        assert!(!verdict.passed());
        assert_eq!(verdict.failed_oracles(), vec![OracleId::SnapshotIsolation]);
        assert!(verdict.summary().contains("snapshot-isolation"));
        let rendered = format!("{verdict}");
        assert!(
            rendered.contains("[snapshot-isolation]") && rendered.contains("lost update"),
            "{rendered}"
        );
        // A mixed verdict lists each family once, in stable order.
        let mut mixed = verdict.clone();
        mixed.push(Violation::SerializabilityViolation {
            cycle: vec![xid(1), xid(2)],
        });
        mixed.push(Violation::MigrationFailed {
            detail: "boom".to_string(),
        });
        assert_eq!(
            mixed.failed_oracles(),
            vec![
                OracleId::SnapshotIsolation,
                OracleId::Serializability,
                OracleId::Migration
            ]
        );
        assert!(check_history(&[], &cfg()).passed());
        assert_eq!(check_history(&[], &cfg()).summary(), "pass");
    }

    #[test]
    fn final_state_mismatch_is_flagged() {
        let h = vec![writer(1, 7, 5, 10, "a", 0)];
        let mut observed = BTreeMap::new();
        observed.insert(7u64, val("a"));
        assert!(check_final_state(&h, &observed).is_empty());
        observed.insert(7u64, val("tampered"));
        let v = check_final_state(&h, &observed);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::FinalStateMismatch { key: 7, .. }));
        // A lost key is also flagged.
        let v = check_final_state(&h, &BTreeMap::new());
        assert_eq!(v.len(), 1);
    }
}
