//! Replica chaos matrix: a WAL-shipped replica (virtual-cut backfill,
//! per-primary ship streams, gate-sequenced appliers) serves seeded
//! read-only clients while a live Remus migration moves a shard between
//! primaries, under seeded ship/apply faults — delayed, reordered, and
//! duplicated batches, stalled appliers, and (on some seeds) a
//! crash-restart of the replica mid-backfill. Two oracles must stay green
//! on every seed:
//!
//! * the SI checker over the full history (writers + replica readers), and
//! * the replica-staleness oracle: every replica read at watermark `W`
//!   sees every commit with `cts <= W` (strict forcing, even under DTS),
//!   and no replica session's snapshot ever regresses.

use remus_chaos::{run_scenario, ScenarioConfig};
use remus_clock::OracleKind;

/// 12 seeds, each run under both GTS and DTS. The seeded fault plan
/// varies ship-batch faults (delay / reorder+retransmit / duplicate),
/// applier stalls, propagation lag on the concurrent migration, clock
/// spikes (DTS), and whether the replica is crash-restarted mid-backfill.
#[test]
fn replica_matrix_keeps_si_and_staleness_green_across_seeds() {
    let mut restarts = 0usize;
    for seed in 0..12u64 {
        for oracle in [OracleKind::Gts, OracleKind::Dts] {
            let config = ScenarioConfig::replica(seed, oracle);
            let outcome = run_scenario(&config);
            assert!(
                outcome.passed(),
                "seed {seed} ({oracle:?}): {:#?}",
                outcome.violations
            );
            assert!(
                outcome.migration_committed,
                "seed {seed} ({oracle:?}): migration did not commit"
            );
            assert!(
                outcome.committed > 0,
                "seed {seed} ({oracle:?}): no writer committed"
            );
            assert!(
                outcome.replica_reads > 0,
                "seed {seed} ({oracle:?}): no replica reads recorded"
            );
            if outcome.restart.is_some() {
                restarts += 1;
            }
        }
    }
    // The seed space must actually exercise the mid-backfill restart
    // drill — but not on every seed, or the fault-free path goes untested.
    assert!(
        restarts > 0 && restarts < 24,
        "mid-backfill replica restarts should fire on some seeds: {restarts}/24"
    );
}

/// The verdict and the fault plan are pure functions of the seed.
#[test]
fn replica_scenario_is_deterministic_in_verdict() {
    let a = run_scenario(&ScenarioConfig::replica(5, OracleKind::Dts));
    let b = run_scenario(&ScenarioConfig::replica(5, OracleKind::Dts));
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.passed(), b.passed());
    assert!(a.passed(), "violations: {:?}", a.violations);
}
