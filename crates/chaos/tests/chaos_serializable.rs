//! Serializable-mode chaos matrix: the seeded fault scenarios re-run with
//! the cluster at `IsolationLevel::Serializable`, so the SSI subsystem
//! (SIREAD tables, rw-antidependency flags, dangerous-structure aborts,
//! and the migration-time state handover) races seeded clients, network
//! faults, a live shard migration, and a concurrent GC thread retiring
//! SIREAD entries at the safe-ts watermark.
//!
//! The verdict adds the serializability oracle on top of the SI battery:
//! the committed history's direct serialization graph — ww edges from the
//! version chains, wr edges from observed values, rw edges recomputed from
//! version order — must be acyclic on every seed, with the shard moving
//! mid-workload through each push engine.

use remus_chaos::{run_scenario, EngineKind, OracleId, ScenarioConfig};
use remus_clock::OracleKind;

/// Seeds 0..12 cover every push engine (seed % 3) and a spread of
/// data-plane parallelism shapes and fault schedules.
const SEEDS: std::ops::Range<u64> = 0..12;

fn run_matrix(oracle: OracleKind) {
    let mut pruned = 0u64;
    for seed in SEEDS {
        let config = ScenarioConfig::serializable(seed, oracle);
        let outcome = run_scenario(&config);
        assert!(
            outcome.passed(),
            "seed {seed} ({} / {oracle:?} / serializable): {}\n{:#?}",
            config.engine.name(),
            outcome.violations.summary(),
            outcome.violations
        );
        assert!(
            !outcome
                .violations
                .failed_oracles()
                .contains(&OracleId::Serializability),
            "seed {seed}: serialization graph has a cycle"
        );
        assert!(outcome.committed > 0, "seed {seed} committed nothing");
        assert!(outcome.migration_committed, "seed {seed}: migration failed");
        pruned += outcome.gc_pruned.expect("the serializable matrix runs GC");
    }
    // The GC thread must have actually retired history across the matrix,
    // otherwise SIREAD retention was never raced.
    assert!(pruned > 0, "GC never pruned a version across the matrix");
}

#[test]
fn serializable_matrix_gts() {
    run_matrix(OracleKind::Gts);
}

#[test]
fn serializable_matrix_dts() {
    run_matrix(OracleKind::Dts);
}

#[test]
fn serializable_scenario_is_deterministic_in_verdict() {
    let config = ScenarioConfig::serializable(5, OracleKind::Dts);
    let a = run_scenario(&config);
    let b = run_scenario(&config);
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.passed(), b.passed());
    assert!(a.passed(), "{}", a.violations);
}

#[test]
fn serializable_seeds_cover_every_push_engine() {
    let engines: Vec<EngineKind> = SEEDS
        .map(|s| ScenarioConfig::serializable(s, OracleKind::Gts).engine)
        .collect();
    for kind in [
        EngineKind::Remus,
        EngineKind::LockAndAbort,
        EngineKind::WaitAndRemaster,
    ] {
        assert!(engines.contains(&kind), "{kind:?} never runs");
    }
    assert!(!engines.contains(&EngineKind::Squall));
}
