//! Crash-restart chaos matrix: a node is killed at a seeded stage of the
//! copy/catch-up pipeline and rebuilt from its on-disk WAL segments via
//! `Cluster::restart_node`; a fresh engine then drives the migration to
//! completion over the recovered node. The SI checker must stay green on
//! the stitched pre+post-restart history — snapshot reads,
//! first-committer-wins, monotone shard-map routing across `T_m`, and
//! committed-data preservation in the final scan.

use remus_chaos::{run_scenario, EngineKind, ScenarioConfig};
use remus_clock::OracleKind;
use remus_common::NodeId;

/// Restart drills only make sense for engines whose migration is a
/// restartable control-plane procedure; Squall's pull protocol holds
/// H-store partition locks client-side and is out of scope for the drill.
const ENGINES: [EngineKind; 3] = [
    EngineKind::Remus,
    EngineKind::LockAndAbort,
    EngineKind::WaitAndRemaster,
];

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("remus-chaos-restart-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Seeds 0..12 cycle engine = `seed % 3` and oracle = `(seed / 3) % 2`, so
/// the matrix covers the full engine x oracle cross product twice while
/// the fault plan varies victim (source/dest) and crash stage per seed.
#[test]
fn restart_matrix_keeps_si_green_across_seeds() {
    let mut combos = std::collections::HashSet::new();
    let mut victims = std::collections::HashSet::new();
    let mut stages = std::collections::HashSet::new();
    for seed in 0..12u64 {
        let engine = ENGINES[(seed % 3) as usize];
        let oracle = if (seed / 3) % 2 == 0 {
            OracleKind::Gts
        } else {
            OracleKind::Dts
        };
        let dir = tempdir(&format!("matrix-{seed}"));
        let config = ScenarioConfig::crash_restart(seed, engine, oracle, &dir);
        let outcome = run_scenario(&config);
        std::fs::remove_dir_all(&dir).expect("tmpdir hygiene");
        assert!(
            outcome.passed(),
            "seed {seed} ({engine:?}/{oracle:?}): {:#?}",
            outcome.violations
        );
        assert!(
            outcome.migration_committed,
            "seed {seed}: migration did not commit after restart"
        );
        assert!(outcome.committed > 0, "seed {seed} committed nothing");
        let (victim, summary) = outcome.restart.expect("restart ran");
        assert!(
            summary.committed > 0,
            "seed {seed}: replay rebuilt no committed transactions: {summary:?}"
        );
        let (_, stage) = outcome.plan.crash_restart_spec().expect("restart spec");
        combos.insert((engine.name(), oracle == OracleKind::Gts));
        victims.insert(victim);
        stages.insert(stage);
    }
    // The matrix must actually span the cross product and both victims.
    assert_eq!(combos.len(), 6, "engine x oracle cross product not covered");
    assert_eq!(
        victims,
        [NodeId(0), NodeId(1)].into_iter().collect(),
        "both migration endpoints must get killed across the matrix"
    );
    assert!(
        stages.len() >= 2,
        "crash stages not varied across the matrix: {stages:?}"
    );
}

/// The verdict (and the fault plan) of a restart scenario is a pure
/// function of the seed even though thread interleavings are not.
#[test]
fn restart_scenario_is_deterministic_in_verdict() {
    let dir_a = tempdir("det-a");
    let a = run_scenario(&ScenarioConfig::crash_restart(
        3,
        EngineKind::Remus,
        OracleKind::Gts,
        &dir_a,
    ));
    std::fs::remove_dir_all(&dir_a).expect("tmpdir hygiene");
    let dir_b = tempdir("det-b");
    let b = run_scenario(&ScenarioConfig::crash_restart(
        3,
        EngineKind::Remus,
        OracleKind::Gts,
        &dir_b,
    ));
    std::fs::remove_dir_all(&dir_b).expect("tmpdir hygiene");
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.passed(), b.passed());
    assert!(a.passed(), "violations: {:?}", a.violations);
}

/// A restarted node leaves no WAL segments behind once its tempdir is
/// removed — the hygiene contract the CI tmpdir check enforces.
#[test]
fn restart_scenario_cleans_up_wal_segments() {
    let dir = tempdir("hygiene");
    let config = ScenarioConfig::crash_restart(1, EngineKind::LockAndAbort, OracleKind::Dts, &dir);
    let outcome = run_scenario(&config);
    assert!(outcome.passed(), "violations: {:?}", outcome.violations);
    // The scenario wrote real segments for every node...
    let node_dirs = std::fs::read_dir(&dir).expect("wal dir exists").count();
    assert_eq!(node_dirs, 3, "one node-<id> subdirectory per node");
    // ...and removing the root reclaims everything.
    std::fs::remove_dir_all(&dir).expect("cleanup");
    assert!(!dir.exists());
}
