//! Chaos GC matrix: the seeded fault scenarios re-run with a concurrent
//! incremental version-chain GC thread racing the workload, the snapshot
//! copy, and the catch-up pipeline. The safe-ts watermark (oldest pinned
//! snapshot across sessions *and* in-flight migrations) must make GC
//! invisible to the SI checker: snapshot reads, first-committer-wins,
//! and committed-data preservation in the final scan all still hold.

use std::time::Duration;

use remus_chaos::{run_scenario, ScenarioConfig};

/// Seeds 0..12 cover every engine (seed % 4), both oracles, the crash
/// drill (seed 4), and a spread of data-plane parallelism shapes.
const SEEDS: std::ops::Range<u64> = 0..12;

#[test]
fn gc_matrix_keeps_si_green_across_seeds() {
    let mut total_pruned = 0u64;
    for seed in SEEDS {
        let mut config = ScenarioConfig::from_seed(seed);
        config.gc_interval = Some(Duration::from_millis(1));
        let outcome = run_scenario(&config);
        assert!(
            outcome.passed(),
            "seed {seed} ({:?}) under concurrent GC: {:#?}",
            outcome.engine,
            outcome.violations
        );
        assert!(outcome.committed > 0, "seed {seed} committed nothing");
        total_pruned += outcome.gc_pruned.expect("GC thread ran");
    }
    // Across the whole matrix the GC thread must actually have pruned
    // shadowed history — otherwise this matrix exercises nothing.
    assert!(
        total_pruned > 0,
        "concurrent GC never pruned a version across the seed matrix"
    );
}

#[test]
fn gc_scenario_is_deterministic_in_verdict() {
    // The GC thread's interleaving is nondeterministic, but the checker
    // verdict and fault plan must not be.
    let mut config = ScenarioConfig::remus_smoke(3);
    config.gc_interval = Some(Duration::from_millis(1));
    let a = run_scenario(&config);
    let b = run_scenario(&config);
    assert_eq!(a.plan, b.plan);
    assert!(a.passed() && b.passed());
}
