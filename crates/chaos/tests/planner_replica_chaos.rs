//! Planner-mode replica chaos matrix: the replicate-or-migrate autopilot
//! core drives replica provisioning and decommissioning from measured
//! load, under seeded ship/apply faults and racing writers.
//!
//! Each scenario runs the fixed replica round script (read-hot, read-hot,
//! write-only, read-hot) on the canonical 4-node topology: round 0's
//! read-dominant hotspot must price replication above the best balance
//! move and provision the spare, round 1 balances with the replica live,
//! round 2's readless window drops demand below the floor and retires it,
//! and round 3 balances after the retirement. Three properties must hold
//! on every seed × oracle cell:
//!
//! * the SI checker stays green over the full history (writers, measured
//!   sweeps, and replica readers) across every planner-chosen action;
//! * the replica-staleness oracle stays green: every replica read at
//!   watermark `W` sees every commit with `cts <= W` (strict forcing,
//!   even under DTS), and the shared replica client's snapshot never
//!   regresses across sweeps;
//! * the decision list replays verbatim — provisioning and retirement
//!   are pure functions of the seed.

use remus_chaos::{run_planner_scenario, PlannerScenarioConfig};
use remus_clock::OracleKind;

/// 12 seeds × {GTS, DTS}. Engines cycle with the seed for the migrations
/// that run alongside the replica actions; the seeded fault plans vary
/// ship-batch faults, applier stalls, and (for the migrations) the
/// tolerated-fault family.
#[test]
fn planner_replica_matrix_keeps_si_and_staleness_green() {
    for seed in 0..12u64 {
        for oracle in [OracleKind::Gts, OracleKind::Dts] {
            let config = PlannerScenarioConfig::replica_from_seed(seed, oracle);
            let outcome = run_planner_scenario(&config);
            assert!(
                outcome.passed(),
                "seed {seed} ({oracle:?}): {:#?}",
                outcome.violations
            );
            assert!(
                outcome
                    .decisions
                    .iter()
                    .any(|d| d.starts_with("replicate ")),
                "seed {seed} ({oracle:?}): no provision decided: {:?}",
                outcome.decisions
            );
            assert!(
                outcome
                    .decisions
                    .iter()
                    .any(|d| d.starts_with("decommission ")),
                "seed {seed} ({oracle:?}): no retirement decided: {:?}",
                outcome.decisions
            );
            assert!(
                outcome.replica_reads() > 0,
                "seed {seed} ({oracle:?}): no replica reads recorded"
            );
            assert!(
                outcome.committed > 0,
                "seed {seed} ({oracle:?}): no writer committed"
            );
        }
    }
}

/// Verbatim decision replay on a sample of the matrix: same seed, same
/// oracle, identical decision strings — including the replica actions.
#[test]
fn planner_replica_decisions_replay_verbatim() {
    for (seed, oracle) in [
        (2u64, OracleKind::Gts),
        (7, OracleKind::Dts),
        (11, OracleKind::Gts),
    ] {
        let config = PlannerScenarioConfig::replica_from_seed(seed, oracle);
        let a = run_planner_scenario(&config);
        let b = run_planner_scenario(&config);
        assert_eq!(
            a.decisions, b.decisions,
            "seed {seed} ({oracle:?}): decision replay diverged"
        );
        assert!(a.passed(), "seed {seed}: {:#?}", a.violations);
        assert!(b.passed(), "seed {seed}: {:#?}", b.violations);
    }
}
