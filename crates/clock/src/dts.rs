//! DTS — the decentralized timestamp scheme (paper §2.2).
//!
//! Each node runs a [`Hlc`] over a skewed physical clock. Start timestamps
//! are local HLC ticks (fresh snapshots, no central round trip); commit
//! timestamps are HLC ticks taken after the prepare phase, and message
//! receipt folds the sender's timestamp into the receiver's clock so that
//! causally related transactions are timestamp-ordered. Sessions on
//! different nodes may observe snapshots stale by up to the physical clock
//! skew, exactly as the paper concedes.

use std::sync::Arc;
use std::time::Duration;

use remus_common::{NodeId, Timestamp};

use crate::hlc::Hlc;
use crate::physical::{PhysicalClock, SkewedClock, WallClock};
use crate::{OracleKind, TimestampOracle};

/// The decentralized oracle: one HLC per node.
pub struct Dts {
    clocks: Vec<Hlc>,
}

impl std::fmt::Debug for Dts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dts")
            .field("nodes", &self.clocks.len())
            .finish()
    }
}

impl Dts {
    /// Builds a DTS for `nodes` nodes whose physical clocks are skewed by
    /// deterministic offsets in `[0, max_skew]` over a shared wall clock.
    pub fn new(nodes: usize, max_skew: Duration) -> Self {
        let base = Arc::new(WallClock::new());
        let clocks = (0..nodes)
            .map(|i| {
                let skew = if nodes <= 1 {
                    Duration::ZERO
                } else {
                    max_skew * i as u32 / (nodes - 1) as u32
                };
                let phys: Arc<dyn PhysicalClock> =
                    Arc::new(SkewedClock::new(Arc::clone(&base), skew));
                Hlc::new(phys)
            })
            .collect();
        Dts { clocks }
    }

    /// Builds a DTS from explicit per-node physical clocks (tests).
    pub fn from_clocks(physicals: Vec<Arc<dyn PhysicalClock>>) -> Self {
        Dts {
            clocks: physicals.into_iter().map(Hlc::new).collect(),
        }
    }

    fn clock(&self, node: NodeId) -> &Hlc {
        &self.clocks[node.raw() as usize]
    }

    /// Number of node clocks.
    pub fn nodes(&self) -> usize {
        self.clocks.len()
    }
}

impl TimestampOracle for Dts {
    fn start_ts(&self, node: NodeId) -> Timestamp {
        self.clock(node).tick()
    }

    fn commit_ts(&self, node: NodeId) -> Timestamp {
        self.clock(node).tick()
    }

    fn observe(&self, node: NodeId, ts: Timestamp) {
        self.clock(node).observe(ts);
    }

    fn kind(&self) -> OracleKind {
        OracleKind::Dts
    }

    /// The slowest node clock bounds every future snapshot: a session on a
    /// skew-lagged node can still start below any single node's "now", so
    /// the GC watermark must not pass the minimum per-clock floor.
    fn min_unissued(&self) -> Option<Timestamp> {
        self.clocks.iter().map(Hlc::floor).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::ManualClock;

    fn manual_dts(times: &[u64]) -> (Vec<Arc<ManualClock>>, Dts) {
        let manuals: Vec<Arc<ManualClock>> = times
            .iter()
            .map(|&t| Arc::new(ManualClock::starting_at(t)))
            .collect();
        let physicals = manuals
            .iter()
            .map(|m| Arc::clone(m) as Arc<dyn PhysicalClock>)
            .collect();
        (manuals, Dts::from_clocks(physicals))
    }

    #[test]
    fn per_node_timestamps_are_monotone() {
        let (_m, dts) = manual_dts(&[100, 100]);
        let a = dts.start_ts(NodeId(0));
        let b = dts.commit_ts(NodeId(0));
        assert!(b > a);
    }

    #[test]
    fn observe_orders_causally_related_transactions() {
        // Node 1's clock is far behind node 0's.
        let (_m, dts) = manual_dts(&[500, 100]);
        let commit_on_fast = dts.commit_ts(NodeId(0));
        // The commit message reaches node 1 (e.g. 2PC commit of a
        // distributed transaction); node 1 observes it.
        dts.observe(NodeId(1), commit_on_fast);
        // Any later transaction starting on node 1 must see a larger ts,
        // despite its slow physical clock.
        assert!(dts.start_ts(NodeId(1)) > commit_on_fast);
    }

    #[test]
    fn without_observe_skew_allows_stale_snapshots() {
        // This documents the paper's concession: under DTS, sessions on
        // different nodes may get start timestamps below another node's
        // commit timestamp when no message linked them.
        let (_m, dts) = manual_dts(&[500, 100]);
        let commit_on_fast = dts.commit_ts(NodeId(0));
        let start_on_slow = dts.start_ts(NodeId(1));
        assert!(start_on_slow < commit_on_fast);
    }

    #[test]
    fn new_assigns_bounded_skews() {
        let dts = Dts::new(6, Duration::from_millis(5));
        assert_eq!(dts.nodes(), 6);
        // All clocks respond.
        for n in 0..6 {
            assert!(dts.start_ts(NodeId(n)).is_valid());
        }
    }

    #[test]
    fn kind_reports_dts() {
        let dts = Dts::new(1, Duration::ZERO);
        assert_eq!(dts.kind(), OracleKind::Dts);
    }

    #[test]
    fn min_unissued_follows_the_slowest_clock() {
        use crate::TimestampOracle;
        let (_m, dts) = manual_dts(&[500, 100]);
        // The fast node issues freely; the floor stays at the lagging
        // node's physical time, because a session there can still start
        // that low.
        let high = dts.commit_ts(NodeId(0));
        let floor = dts.min_unissued().expect("DTS always has a floor");
        assert!(floor < high);
        assert_eq!(floor, Timestamp::from_hlc(100, 0));
        // And the lagging node's next snapshot indeed respects it.
        assert!(dts.start_ts(NodeId(1)) >= floor);
    }
}
