//! GTS — the centralized global timestamp sequencer (paper §2.2).
//!
//! Implemented in the control-plane node of PolarDB-PG; here a single
//! atomic counter shared by every node handle. All timestamps are globally
//! monotonically increasing, which yields linearizability across sessions.

use std::sync::atomic::{AtomicU64, Ordering};

use remus_common::{NodeId, Timestamp};

use crate::{OracleKind, TimestampOracle};

/// The centralized sequencer.
#[derive(Debug)]
pub struct Gts {
    next: AtomicU64,
}

impl Gts {
    /// A fresh sequencer. Timestamps start above
    /// [`Timestamp::SNAPSHOT_MIN`] so the reserved minimal commit timestamp
    /// used for installed snapshots stays below every real timestamp.
    pub fn new() -> Self {
        Gts {
            next: AtomicU64::new(Timestamp::SNAPSHOT_MIN.0 + 1),
        }
    }

    fn fetch(&self) -> Timestamp {
        Timestamp(self.next.fetch_add(1, Ordering::SeqCst))
    }
}

impl Default for Gts {
    fn default() -> Self {
        Self::new()
    }
}

impl TimestampOracle for Gts {
    fn start_ts(&self, _node: NodeId) -> Timestamp {
        self.fetch()
    }

    fn commit_ts(&self, _node: NodeId) -> Timestamp {
        self.fetch()
    }

    fn observe(&self, _node: NodeId, _ts: Timestamp) {
        // Centralized sequencing already totally orders all events.
    }

    fn kind(&self) -> OracleKind {
        OracleKind::Gts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn timestamps_are_strictly_increasing() {
        let gts = Gts::new();
        let a = gts.start_ts(NodeId(0));
        let b = gts.commit_ts(NodeId(1));
        let c = gts.start_ts(NodeId(2));
        assert!(a < b && b < c);
    }

    #[test]
    fn all_timestamps_exceed_snapshot_min() {
        let gts = Gts::new();
        assert!(gts.start_ts(NodeId(0)) > Timestamp::SNAPSHOT_MIN);
    }

    #[test]
    fn concurrent_requests_never_duplicate() {
        let gts = Arc::new(Gts::new());
        let handles: Vec<_> = (0..8)
            .map(|n| {
                let gts = Arc::clone(&gts);
                std::thread::spawn(move || {
                    (0..1000)
                        .map(|_| gts.commit_ts(NodeId(n)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<Timestamp> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "GTS issued a duplicate timestamp");
    }

    #[test]
    fn kind_reports_gts() {
        assert_eq!(Gts::new().kind(), OracleKind::Gts);
    }
}
