//! GTS — the centralized global timestamp sequencer (paper §2.2).
//!
//! Implemented in the control-plane node of PolarDB-PG; here a single
//! atomic counter shared by every node handle. With the default lease of 1
//! every request goes to the central counter, so all timestamps are globally
//! monotonically increasing, which yields linearizability across sessions.
//!
//! # Batched allocation (leases)
//!
//! With `lease > 1` each node takes a *block* of timestamps from the
//! sequencer per round trip and issues from it locally — the classic
//! sequencer-RPC amortization. The oracle contract still holds: blocks are
//! disjoint (uniqueness), a node's successive blocks come from a
//! nondecreasing central counter (per-node monotonicity), and [`observe`]
//! folds foreign timestamps into both the central counter and the node's
//! remaining block (causality: a commit timestamp issued after observing
//! `ts` exceeds `ts`). What a lease gives up is *cross-node real-time
//! recency*: a snapshot taken on one node may be older than a commit that
//! already finished on another node, because their blocks are disjoint.
//! That is exactly the DTS trust model, so leases are opt-in
//! (`HotPathConfig::gts_lease`, default 1) and the chaos checker's strict
//! GTS mode always runs with lease 1.
//!
//! Because a node's unissued lease remainder sits *below* the central
//! counter, anything that reasons about "timestamps no future snapshot can
//! have" — the version-chain GC watermark — must clamp to
//! [`TimestampOracle::min_unissued`], the minimum `next` over live leases.
//!
//! [`observe`]: crate::TimestampOracle::observe

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use remus_common::{NodeId, Timestamp};

use crate::{OracleKind, TimestampOracle};

/// A node's current lease: timestamps `[next, hi)` remain issuable locally.
#[derive(Debug, Default)]
struct LeaseRange {
    next: u64,
    hi: u64,
}

/// The centralized sequencer.
#[derive(Debug)]
pub struct Gts {
    /// The central counter (the sequencer service itself).
    next: AtomicU64,
    /// Timestamps handed out per sequencer round trip.
    lease: u64,
    /// Round trips to the sequencer (the RPC-equivalent cost).
    rpcs: AtomicU64,
    /// Per-node outstanding leases (`lease > 1` only).
    nodes: RwLock<HashMap<NodeId, Arc<Mutex<LeaseRange>>>>,
}

impl Gts {
    /// A fresh sequencer with no batching: every timestamp is one round
    /// trip, reproducing the unbatched oracle byte for byte. Timestamps
    /// start above [`Timestamp::SNAPSHOT_MIN`] so the reserved minimal
    /// commit timestamp used for installed snapshots stays below every real
    /// timestamp.
    pub fn new() -> Self {
        Self::with_lease(1)
    }

    /// A sequencer leasing `lease` timestamps per node round trip
    /// (clamped to >= 1).
    pub fn with_lease(lease: u64) -> Self {
        Gts {
            next: AtomicU64::new(Timestamp::SNAPSHOT_MIN.0 + 1),
            lease: lease.max(1),
            rpcs: AtomicU64::new(0),
            nodes: RwLock::new(HashMap::new()),
        }
    }

    /// Round trips made to the central sequencer so far. With lease 1 this
    /// equals the number of timestamps issued; with a lease of L it drops
    /// to roughly issued / L.
    pub fn sequencer_rpcs(&self) -> u64 {
        self.rpcs.load(Ordering::Relaxed)
    }

    fn node_lease(&self, node: NodeId) -> Arc<Mutex<LeaseRange>> {
        if let Some(l) = self.nodes.read().get(&node) {
            return Arc::clone(l);
        }
        let mut nodes = self.nodes.write();
        Arc::clone(nodes.entry(node).or_default())
    }

    fn fetch(&self, node: NodeId) -> Timestamp {
        if self.lease == 1 {
            self.rpcs.fetch_add(1, Ordering::Relaxed);
            return Timestamp(self.next.fetch_add(1, Ordering::SeqCst));
        }
        let lease = self.node_lease(node);
        let mut range = lease.lock();
        if range.next >= range.hi {
            // Lease exhausted: one round trip buys the next block. The
            // central counter never moves backwards, so this block lies
            // above every timestamp previously returned to this node.
            let lo = self.next.fetch_add(self.lease, Ordering::SeqCst);
            self.rpcs.fetch_add(1, Ordering::Relaxed);
            range.next = lo;
            range.hi = lo + self.lease;
        }
        let ts = Timestamp(range.next);
        range.next += 1;
        ts
    }

    /// The lowest timestamp any node can still issue from an outstanding
    /// lease block. Blocks are carved off a monotonically increasing central
    /// counter, so every *future* block lies above all current ones; the
    /// only timestamps that can still come out below the counter are the
    /// unissued remainders `[next, hi)` of live leases. `None` with no live
    /// lease (or lease 1, where every issue hits the central counter).
    fn lease_floor(&self) -> Option<Timestamp> {
        if self.lease == 1 {
            return None;
        }
        self.nodes
            .read()
            .values()
            .filter_map(|l| {
                let range = l.lock();
                (range.next < range.hi).then_some(Timestamp(range.next))
            })
            .min()
    }
}

impl Default for Gts {
    fn default() -> Self {
        Self::new()
    }
}

impl TimestampOracle for Gts {
    fn start_ts(&self, node: NodeId) -> Timestamp {
        self.fetch(node)
    }

    fn commit_ts(&self, node: NodeId) -> Timestamp {
        self.fetch(node)
    }

    fn observe(&self, node: NodeId, ts: Timestamp) {
        if self.lease == 1 {
            // Centralized sequencing already totally orders all events.
            return;
        }
        // Future blocks must exceed the observed timestamp...
        self.next.fetch_max(ts.0 + 1, Ordering::SeqCst);
        // ...and so must the rest of this node's current block. If the
        // block cannot (ts at/above its top), exhaust it so the next fetch
        // refills from the advanced central counter.
        let lease = self.node_lease(node);
        let mut range = lease.lock();
        if range.next <= ts.0 {
            range.next = (ts.0 + 1).min(range.hi);
        }
    }

    fn kind(&self) -> OracleKind {
        OracleKind::Gts
    }

    fn sequencer_rpcs(&self) -> Option<u64> {
        Some(self.rpcs.load(Ordering::Relaxed))
    }

    fn min_unissued(&self) -> Option<Timestamp> {
        self.lease_floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn timestamps_are_strictly_increasing() {
        let gts = Gts::new();
        let a = gts.start_ts(NodeId(0));
        let b = gts.commit_ts(NodeId(1));
        let c = gts.start_ts(NodeId(2));
        assert!(a < b && b < c);
    }

    #[test]
    fn all_timestamps_exceed_snapshot_min() {
        let gts = Gts::new();
        assert!(gts.start_ts(NodeId(0)) > Timestamp::SNAPSHOT_MIN);
    }

    #[test]
    fn concurrent_requests_never_duplicate() {
        let gts = Arc::new(Gts::new());
        let handles: Vec<_> = (0..8)
            .map(|n| {
                let gts = Arc::clone(&gts);
                std::thread::spawn(move || {
                    (0..1000)
                        .map(|_| gts.commit_ts(NodeId(n)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<Timestamp> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "GTS issued a duplicate timestamp");
    }

    #[test]
    fn kind_reports_gts() {
        assert_eq!(Gts::new().kind(), OracleKind::Gts);
    }

    #[test]
    fn unbatched_rpcs_equal_issued_timestamps() {
        let gts = Gts::new();
        for _ in 0..10 {
            gts.start_ts(NodeId(0));
        }
        assert_eq!(gts.sequencer_rpcs(), 10);
        // Observe is free under lease 1.
        gts.observe(NodeId(1), Timestamp(999));
        assert_eq!(gts.sequencer_rpcs(), 10);
    }

    #[test]
    fn leased_timestamps_are_per_node_monotone_and_amortize_rpcs() {
        let gts = Gts::with_lease(64);
        let mut last = Timestamp::SNAPSHOT_MIN;
        for _ in 0..1000 {
            let ts = gts.commit_ts(NodeId(0));
            assert!(ts > last, "per-node monotonicity");
            last = ts;
        }
        // 1000 timestamps from 64-blocks: 16 refills, not 1000 trips.
        assert_eq!(gts.sequencer_rpcs(), 1000_u64.div_ceil(64));
    }

    #[test]
    fn leased_blocks_are_disjoint_across_nodes() {
        let gts = Arc::new(Gts::with_lease(16));
        let handles: Vec<_> = (0..4)
            .map(|n| {
                let gts = Arc::clone(&gts);
                std::thread::spawn(move || {
                    (0..500)
                        .map(|_| gts.commit_ts(NodeId(n)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let per_node: Vec<Vec<Timestamp>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for issued in &per_node {
            assert!(issued.windows(2).all(|w| w[0] < w[1]));
        }
        let mut all: Vec<Timestamp> = per_node.into_iter().flatten().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "leased GTS issued a duplicate");
        assert!(gts.sequencer_rpcs() <= (n as u64 / 16) + 4);
    }

    #[test]
    fn unbatched_min_unissued_is_none() {
        let gts = Gts::new();
        gts.start_ts(NodeId(0));
        assert_eq!(gts.min_unissued(), None, "lease 1 is globally monotone");
    }

    #[test]
    fn min_unissued_tracks_lowest_outstanding_lease() {
        let gts = Gts::with_lease(8);
        assert_eq!(gts.min_unissued(), None, "no lease outstanding yet");
        let a = gts.start_ts(NodeId(0)); // node 0 leases [a, a+8)
        let b = gts.start_ts(NodeId(1)); // node 1 leases [a+8, a+16)
        assert_eq!(b.0, a.0 + 8);
        // Node 0's remainder is the floor: its next issue is a.0 + 1.
        assert_eq!(gts.min_unissued(), Some(Timestamp(a.0 + 1)));
        assert_eq!(gts.start_ts(NodeId(0)), Timestamp(a.0 + 1));
        // Exhaust node 0's block; the floor moves up to node 1's remainder.
        for _ in 0..6 {
            gts.start_ts(NodeId(0));
        }
        assert_eq!(gts.min_unissued(), Some(Timestamp(b.0 + 1)));
        // Every timestamp issued from here on respects the floor just read.
        let floor = gts.min_unissued().unwrap();
        for n in 0..3 {
            for _ in 0..20 {
                assert!(gts.commit_ts(NodeId(n)) >= floor);
            }
        }
    }

    #[test]
    fn observe_establishes_causality_within_and_across_blocks() {
        let gts = Gts::with_lease(32);
        let a = gts.commit_ts(NodeId(0)); // node 0 holds a low block
        let b = gts.commit_ts(NodeId(1)); // node 1 holds a higher block
        assert!(b > a);
        // Node 0 receives node 1's timestamp: its next issue must exceed it
        // even though its own block started lower.
        gts.observe(NodeId(0), b);
        assert!(gts.commit_ts(NodeId(0)) > b);
        // Far-future observation exhausts the block and refills above it.
        let far = Timestamp(1_000_000);
        gts.observe(NodeId(1), far);
        assert!(gts.commit_ts(NodeId(1)) > far);
    }
}
