#![warn(missing_docs)]

//! Timestamp ordering for distributed snapshot isolation.
//!
//! PolarDB-PG (paper §2.2) supports two interchangeable timestamp schemes,
//! both reproduced here behind the [`TimestampOracle`] trait:
//!
//! * **GTS** ([`gts::Gts`]) — a centralized sequencer in the control plane
//!   that hands out globally monotonically increasing timestamps, giving
//!   linearizability across sessions.
//! * **DTS** ([`dts::Dts`]) — a decentralized scheme where each node runs a
//!   Hybrid Logical Clock ([`hlc::Hlc`]): logical time tracks causal order
//!   (ensuring SI) while a loosely synchronized physical time keeps
//!   snapshots fresh. Physical clock skew between nodes is simulated by
//!   [`physical::SkewedClock`].
//!
//! Every consumer relies only on the total order of [`Timestamp`]s plus the
//! causality rules exposed by the trait, which is exactly the property that
//! lets MOCC "piggyback on existing timestamp ordering protocols".

pub mod dts;
pub mod gts;
pub mod hlc;
pub mod physical;

use remus_common::{NodeId, Timestamp};

/// Which oracle flavor a cluster is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Centralized sequencer (linearizable across sessions).
    Gts,
    /// Decentralized hybrid logical clocks (SI; snapshots may be stale
    /// within clock skew across sessions on different nodes).
    Dts,
}

/// The timestamp service interface used by the transaction manager.
///
/// All methods take the *node* on whose behalf the timestamp is requested:
/// GTS ignores it (one global sequence), DTS uses it to pick the node's HLC.
pub trait TimestampOracle: Send + Sync {
    /// Acquires a start timestamp (snapshot) for a transaction.
    fn start_ts(&self, node: NodeId) -> Timestamp;

    /// Acquires a commit timestamp. Guaranteed greater than every timestamp
    /// previously returned to or observed by `node`.
    fn commit_ts(&self, node: NodeId) -> Timestamp;

    /// Folds a timestamp received in a message from another node into
    /// `node`'s clock, establishing Lamport causality. A no-op under GTS.
    fn observe(&self, node: NodeId, ts: Timestamp);

    /// Which scheme this oracle implements.
    fn kind(&self) -> OracleKind;

    /// Round trips made to a central sequencer, if this oracle has one.
    /// `None` for decentralized schemes; [`gts::Gts`] reports its counter so
    /// the cluster can surface `clock.gts_rpcs` (the RPC-equivalent cost
    /// batched leases amortize).
    fn sequencer_rpcs(&self) -> Option<u64> {
        None
    }

    /// A lower bound on every timestamp this oracle can still return from
    /// [`TimestampOracle::start_ts`] or [`TimestampOracle::commit_ts`] on
    /// *any* node: no future call returns a timestamp below it.
    ///
    /// Version-chain GC must clamp its safe-ts watermark to this floor —
    /// otherwise a node holding a stale batch of timestamps (a GTS lease
    /// block, a skewed DTS clock) could start a snapshot *below* a watermark
    /// computed from another node's fresher timestamps, and read versions GC
    /// already pruned. `None` means issuance is globally monotone (every
    /// already-issued timestamp is itself a floor), so no clamp is needed.
    fn min_unissued(&self) -> Option<Timestamp> {
        None
    }
}

pub use dts::Dts;
pub use gts::Gts;
pub use hlc::Hlc;
pub use physical::{ManualClock, PhysicalClock, SkewedClock, SkewedPhysicalClock, WallClock};
