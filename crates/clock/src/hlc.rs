//! Hybrid Logical Clock (Kulkarni et al., OPODIS 2014 — the paper's reference 30).
//!
//! An HLC timestamp is `(physical_ms, logical)` packed into one
//! [`Timestamp`]. Two rules preserve Lamport causality while staying close
//! to physical time:
//!
//! * **tick** (local/send event): take `max(physical_now, last)`; bump the
//!   logical counter if physical time has not advanced past the last value.
//! * **observe** (receive event): take `max(physical_now, last, remote)` and
//!   bump the logical counter on ties, guaranteeing the returned timestamp
//!   exceeds both the local clock and the remote timestamp.

use parking_lot::Mutex;
use remus_common::Timestamp;

use crate::physical::PhysicalClock;
use std::sync::Arc;

/// One node's hybrid logical clock.
pub struct Hlc {
    physical: Arc<dyn PhysicalClock>,
    /// Last issued (physical_ms, logical) pair.
    last: Mutex<(u64, u16)>,
}

impl std::fmt::Debug for Hlc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let last = *self.last.lock();
        f.debug_struct("Hlc").field("last", &last).finish()
    }
}

impl Hlc {
    /// Creates an HLC over the given physical time source.
    pub fn new(physical: Arc<dyn PhysicalClock>) -> Self {
        Hlc {
            physical,
            last: Mutex::new((0, 0)),
        }
    }

    /// Produces a new local timestamp strictly greater than every timestamp
    /// this clock has issued or observed before.
    pub fn tick(&self) -> Timestamp {
        let pt = self.physical.now_ms();
        let mut last = self.last.lock();
        if pt > last.0 {
            *last = (pt, 0);
        } else {
            last.1 = last.1.checked_add(1).expect("HLC logical counter overflow");
        }
        Timestamp::from_hlc(last.0, last.1)
    }

    /// Merges a remote timestamp into the clock and returns a timestamp
    /// strictly greater than both the remote timestamp and anything issued
    /// locally before.
    pub fn observe(&self, remote: Timestamp) -> Timestamp {
        let pt = self.physical.now_ms();
        let (rpt, rl) = (remote.physical_ms(), remote.logical());
        let mut last = self.last.lock();
        let new = if pt > last.0 && pt > rpt {
            (pt, 0)
        } else if last.0 > rpt {
            (last.0, last.1 + 1)
        } else if rpt > last.0 {
            (rpt, rl + 1)
        } else {
            (last.0, last.1.max(rl) + 1)
        };
        *last = new;
        Timestamp::from_hlc(new.0, new.1)
    }

    /// The most recent timestamp issued, without advancing the clock.
    pub fn peek(&self) -> Timestamp {
        let last = *self.last.lock();
        Timestamp::from_hlc(last.0, last.1)
    }

    /// A lower bound on every timestamp a future [`Hlc::tick`] or
    /// [`Hlc::observe`] can return: `tick` takes `max(physical_now, last)`,
    /// so nothing below the current physical time or the last issued pair
    /// ever comes out of this clock again (the physical source is monotone).
    pub fn floor(&self) -> Timestamp {
        let pt = self.physical.now_ms();
        let last = *self.last.lock();
        Timestamp::from_hlc(pt, 0).max(Timestamp::from_hlc(last.0, last.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::ManualClock;
    use proptest::prelude::*;

    fn hlc_at(ms: u64) -> (Arc<ManualClock>, Hlc) {
        let clock = Arc::new(ManualClock::starting_at(ms));
        let hlc = Hlc::new(Arc::clone(&clock) as Arc<dyn PhysicalClock>);
        (clock, hlc)
    }

    #[test]
    fn tick_is_strictly_increasing_with_frozen_physical_time() {
        let (_c, hlc) = hlc_at(100);
        let a = hlc.tick();
        let b = hlc.tick();
        let c = hlc.tick();
        assert!(a < b && b < c);
        assert_eq!(a.physical_ms(), 100);
        assert_eq!(c.logical(), 2);
    }

    #[test]
    fn tick_resets_logical_when_physical_advances() {
        let (clock, hlc) = hlc_at(100);
        hlc.tick();
        hlc.tick();
        clock.advance(1);
        let ts = hlc.tick();
        assert_eq!(ts.physical_ms(), 101);
        assert_eq!(ts.logical(), 0);
    }

    #[test]
    fn observe_exceeds_remote_timestamp() {
        let (_c, hlc) = hlc_at(100);
        // A remote node far in the future (big skew).
        let remote = Timestamp::from_hlc(500, 7);
        let ts = hlc.observe(remote);
        assert!(ts > remote);
        // And the causal order persists: the next local tick still exceeds it.
        assert!(hlc.tick() > remote);
    }

    #[test]
    fn observe_of_stale_timestamp_still_advances() {
        let (_c, hlc) = hlc_at(100);
        let before = hlc.tick();
        let ts = hlc.observe(Timestamp::from_hlc(1, 0));
        assert!(ts > before);
    }

    #[test]
    fn observe_tie_on_physical_takes_max_logical() {
        let (_c, hlc) = hlc_at(100);
        hlc.tick(); // (100, 0)
        let ts = hlc.observe(Timestamp::from_hlc(100, 9));
        assert_eq!(ts.physical_ms(), 100);
        assert_eq!(ts.logical(), 10);
    }

    #[test]
    fn peek_does_not_advance() {
        let (_c, hlc) = hlc_at(100);
        let a = hlc.tick();
        assert_eq!(hlc.peek(), a);
        assert_eq!(hlc.peek(), a);
    }

    #[test]
    fn floor_bounds_every_future_tick() {
        let (clock, hlc) = hlc_at(100);
        // Untouched clock: the floor is physical time at logical zero, and
        // the first tick lands exactly on it.
        let f = hlc.floor();
        assert_eq!(f, Timestamp::from_hlc(100, 0));
        assert_eq!(hlc.tick(), f);
        // With issued history the floor follows the last pair.
        hlc.tick();
        hlc.tick();
        assert_eq!(hlc.floor(), Timestamp::from_hlc(100, 2));
        assert!(hlc.tick() > Timestamp::from_hlc(100, 2));
        // Physical advance raises the floor past the logical tail.
        clock.advance(10);
        assert_eq!(hlc.floor(), Timestamp::from_hlc(110, 0));
        assert_eq!(hlc.tick(), Timestamp::from_hlc(110, 0));
    }

    proptest! {
        /// Happens-before implies timestamp order: simulate message chains
        /// between two HLCs with arbitrary skews and check every send is
        /// ordered before its receive.
        #[test]
        fn causality_preserved_across_messages(
            skew_a in 0u64..100, skew_b in 0u64..100,
            steps in proptest::collection::vec(0u8..4, 1..40)
        ) {
            let a = hlc_at(1000 + skew_a).1;
            let b = hlc_at(1000 + skew_b).1;
            for step in steps {
                match step {
                    0 => { a.tick(); }
                    1 => { b.tick(); }
                    2 => {
                        let sent = a.tick();
                        let recv = b.observe(sent);
                        prop_assert!(recv > sent);
                    }
                    _ => {
                        let sent = b.tick();
                        let recv = a.observe(sent);
                        prop_assert!(recv > sent);
                    }
                }
            }
        }

        /// The clock never goes backwards regardless of the mix of ticks and
        /// observes.
        #[test]
        fn monotone_under_arbitrary_events(
            events in proptest::collection::vec((0u8..2, 0u64..2000, 0u16..64), 1..60)
        ) {
            let (_c, hlc) = hlc_at(500);
            let mut prev = Timestamp::INVALID;
            for (kind, p, l) in events {
                let ts = if kind == 0 { hlc.tick() } else { hlc.observe(Timestamp::from_hlc(p, l)) };
                prop_assert!(ts > prev, "clock regressed: {prev} -> {ts}");
                prev = ts;
            }
        }
    }
}
