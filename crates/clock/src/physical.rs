//! Physical time sources for the hybrid logical clocks.
//!
//! The paper's DTS mixes logical time with "a synchronized physical time"
//! (NTP/PTP, footnote 1). We model the imperfect synchronization with
//! [`SkewedClock`]: each node reads a shared monotonic epoch clock plus a
//! fixed per-node offset bounded by `SimConfig::max_clock_skew`. Tests use
//! the deterministic [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of physical milliseconds.
pub trait PhysicalClock: Send + Sync {
    /// Current physical time in milliseconds. Need not be monotone across
    /// different clocks (that is the point of simulating skew), but each
    /// individual clock should never go backwards.
    fn now_ms(&self) -> u64;
}

/// Real wall time measured from process start.
///
/// Using an [`Instant`] epoch instead of `SystemTime` keeps the clock
/// monotone even if the host NTP-steps during a benchmark run.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock anchored at the current instant.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl PhysicalClock for WallClock {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// A node's view of a shared base clock, offset by a fixed skew.
///
/// All nodes share one base [`WallClock`] (the "true" time); each node sees
/// it shifted by its own `skew`, which is how loosely NTP-synchronized
/// machines disagree.
#[derive(Debug, Clone)]
pub struct SkewedClock {
    base: Arc<WallClock>,
    skew_ms: u64,
}

impl SkewedClock {
    /// Creates a node clock with the given skew over the shared base.
    pub fn new(base: Arc<WallClock>, skew: Duration) -> Self {
        SkewedClock {
            base,
            skew_ms: skew.as_millis() as u64,
        }
    }

    /// The skew this node's clock carries.
    pub fn skew(&self) -> Duration {
        Duration::from_millis(self.skew_ms)
    }
}

impl PhysicalClock for SkewedClock {
    fn now_ms(&self) -> u64 {
        self.base.now_ms() + self.skew_ms
    }
}

/// A clock whose skew can be changed at runtime — chaos tests use it to
/// inject clock-skew spikes on a single node mid-migration.
///
/// Unlike [`SkewedClock`] the offset is mutable, so retracting a spike could
/// make the reading regress; a monotonicity floor guarantees the per-clock
/// contract of [`PhysicalClock`] regardless (the clock plateaus until the
/// base catches up).
pub struct SkewedPhysicalClock {
    base: Arc<dyn PhysicalClock>,
    extra_ms: AtomicU64,
    floor_ms: AtomicU64,
}

impl std::fmt::Debug for SkewedPhysicalClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkewedPhysicalClock")
            .field("extra_ms", &self.extra_ms)
            .field("floor_ms", &self.floor_ms)
            .finish()
    }
}

impl SkewedPhysicalClock {
    /// Wraps `base` with an initially-zero adjustable skew.
    pub fn new(base: Arc<dyn PhysicalClock>) -> Self {
        SkewedPhysicalClock {
            base,
            extra_ms: AtomicU64::new(0),
            floor_ms: AtomicU64::new(0),
        }
    }

    /// Sets the skew added on top of the base clock. Lowering it never makes
    /// the clock go backwards: readings plateau at the previous maximum.
    pub fn set_skew_ms(&self, ms: u64) {
        self.extra_ms.store(ms, Ordering::SeqCst);
    }

    /// The currently configured skew in milliseconds.
    pub fn skew_ms(&self) -> u64 {
        self.extra_ms.load(Ordering::SeqCst)
    }
}

impl PhysicalClock for SkewedPhysicalClock {
    fn now_ms(&self) -> u64 {
        let raw = self.base.now_ms() + self.extra_ms.load(Ordering::SeqCst);
        // Never regress, even if the skew was just lowered.
        let prev = self.floor_ms.fetch_max(raw, Ordering::SeqCst);
        raw.max(prev)
    }
}

/// A hand-driven clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manual clock starting at `ms`.
    pub fn starting_at(ms: u64) -> Self {
        ManualClock {
            ms: AtomicU64::new(ms),
        }
    }

    /// Sets the clock to `ms`. Panics if that would move it backwards.
    pub fn set(&self, ms: u64) {
        let prev = self.ms.swap(ms, Ordering::SeqCst);
        assert!(prev <= ms, "ManualClock moved backwards: {prev} -> {ms}");
    }

    /// Advances the clock by `delta_ms`.
    pub fn advance(&self, delta_ms: u64) {
        self.ms.fetch_add(delta_ms, Ordering::SeqCst);
    }
}

impl PhysicalClock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn skewed_clock_adds_offset() {
        let base = Arc::new(WallClock::new());
        let fast = SkewedClock::new(Arc::clone(&base), Duration::from_millis(50));
        let true_now = base.now_ms();
        let skewed_now = fast.now_ms();
        assert!(skewed_now >= true_now + 50);
        assert!(skewed_now <= true_now + 50 + 10); // generous slop for scheduling
        assert_eq!(fast.skew(), Duration::from_millis(50));
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::starting_at(10);
        assert_eq!(c.now_ms(), 10);
        c.advance(5);
        assert_eq!(c.now_ms(), 15);
        c.set(100);
        assert_eq!(c.now_ms(), 100);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_regression() {
        let c = ManualClock::starting_at(10);
        c.set(5);
    }

    #[test]
    fn skewed_physical_clock_spike_and_retract_is_monotone() {
        let base = Arc::new(ManualClock::starting_at(100));
        let c = SkewedPhysicalClock::new(Arc::clone(&base) as Arc<dyn PhysicalClock>);
        assert_eq!(c.now_ms(), 100);
        c.set_skew_ms(50);
        assert_eq!(c.skew_ms(), 50);
        assert_eq!(c.now_ms(), 150);
        // Retracting the spike must not make the clock regress.
        c.set_skew_ms(0);
        assert_eq!(c.now_ms(), 150);
        // It resumes once the base catches up past the floor.
        base.advance(60);
        assert_eq!(c.now_ms(), 160);
    }
}
