//! Concurrency properties of the leased GTS, exercised with enough thread
//! interleaving for the nightly ThreadSanitizer job to chew on: uniqueness
//! across concurrently refilling nodes, per-node monotonicity under mixed
//! fetch/observe traffic, and causality across blocks.

use std::sync::Arc;

use remus_clock::{Gts, TimestampOracle};
use remus_common::{NodeId, Timestamp};

#[test]
fn concurrent_leased_nodes_never_duplicate() {
    for lease in [2, 16, 64] {
        let gts = Arc::new(Gts::with_lease(lease));
        let handles: Vec<_> = (0..8)
            .map(|n| {
                let gts = Arc::clone(&gts);
                std::thread::spawn(move || {
                    (0..2000)
                        .map(|i| {
                            if i % 2 == 0 {
                                gts.start_ts(NodeId(n))
                            } else {
                                gts.commit_ts(NodeId(n))
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let per_node: Vec<Vec<Timestamp>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for issued in &per_node {
            assert!(
                issued.windows(2).all(|w| w[0] < w[1]),
                "lease {lease}: per-node issue order must be monotone"
            );
        }
        let mut all: Vec<Timestamp> = per_node.into_iter().flatten().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "lease {lease}: duplicate timestamp");
        assert!(
            gts.sequencer_rpcs() <= (n as u64 / lease) + 16,
            "lease {lease}: refills not amortized ({} rpcs for {} timestamps)",
            gts.sequencer_rpcs(),
            n
        );
    }
}

#[test]
fn concurrent_observe_preserves_causality() {
    // One "coordinator" node keeps observing commit timestamps produced by
    // worker nodes (as 2PC does); every timestamp it issues after an
    // observation must exceed the observed one.
    let gts = Arc::new(Gts::with_lease(32));
    let workers: Vec<_> = (1..=4)
        .map(|n| {
            let gts = Arc::clone(&gts);
            std::thread::spawn(move || {
                (0..1000)
                    .map(|_| gts.commit_ts(NodeId(n)))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let coord = {
        let gts = Arc::clone(&gts);
        std::thread::spawn(move || {
            for i in 0..1000u64 {
                let seen = gts.commit_ts(NodeId(10 + (i % 3) as u32));
                gts.observe(NodeId(0), seen);
                let issued = gts.commit_ts(NodeId(0));
                assert!(
                    issued > seen,
                    "commit_ts after observe must exceed the observed ts"
                );
            }
        })
    };
    for w in workers {
        w.join().unwrap();
    }
    coord.join().unwrap();
}

#[test]
fn unit_lease_is_globally_monotone_across_nodes() {
    // The default lease of 1 must keep the linearizable single-counter
    // behavior: interleaved requests from different nodes observe one
    // global order with no gaps reused.
    let gts = Arc::new(Gts::new());
    let handles: Vec<_> = (0..4)
        .map(|n| {
            let gts = Arc::clone(&gts);
            std::thread::spawn(move || {
                (0..2000)
                    .map(|_| gts.commit_ts(NodeId(n)))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut all: Vec<Timestamp> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    assert_eq!(gts.sequencer_rpcs(), all.len() as u64);
    all.sort_unstable();
    // Dense: the central counter never skips with lease 1.
    assert!(all.windows(2).all(|w| w[1].0 == w[0].0 + 1));
}
