//! Concurrency stress tests for the transaction engine: counter safety
//! under WW conflicts, 2PC atomicity, and force-abort races.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use remus_clock::{Gts, TimestampOracle};
use remus_common::{NodeId, ShardId, SimConfig};
use remus_storage::Value;
use remus_txn::{abort_txn, commit_txn, force_abort, NoNetwork, NodeStorage, Txn};

fn node(id: u32) -> Arc<NodeStorage> {
    let n = Arc::new(NodeStorage::new(NodeId(id), SimConfig::instant()));
    n.create_shard(ShardId(id as u64));
    n
}

/// Many threads increment one counter with read-modify-write transactions;
/// first-committer-wins makes some abort, but the final value must equal
/// the number of successful commits exactly.
#[test]
fn contended_counter_is_exact() {
    let n = node(1);
    let gts = Arc::new(Gts::new());
    // Seed the counter.
    let mut seed = Txn::begin(&n, gts.start_ts(n.id));
    seed.insert(&n, ShardId(1), 1, Value::from(0u64.to_le_bytes().to_vec()))
        .unwrap();
    commit_txn(&mut seed, &*gts, &NoNetwork).unwrap();

    let successes = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let n = Arc::clone(&n);
            let gts = Arc::clone(&gts);
            let successes = Arc::clone(&successes);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let mut txn = Txn::begin(&n, gts.start_ts(n.id));
                    let r = (|| {
                        let cur = txn
                            .read(&n, ShardId(1), 1)?
                            .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                            .unwrap_or(0);
                        txn.update(
                            &n,
                            ShardId(1),
                            1,
                            Value::from((cur + 1).to_le_bytes().to_vec()),
                        )?;
                        commit_txn(&mut txn, &*gts, &NoNetwork)
                    })();
                    match r {
                        Ok(_) => {
                            successes.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(_) => abort_txn(&mut txn),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let expected = successes.load(Ordering::SeqCst);
    assert!(expected > 0, "some increments must succeed");
    let check = Txn::begin(&n, gts.start_ts(n.id));
    let v = check.read(&n, ShardId(1), 1).unwrap().unwrap();
    let value = u64::from_le_bytes(v[..8].try_into().unwrap());
    assert_eq!(value, expected, "counter must equal successful commits");
}

/// Readers racing a distributed commit observe either none or all of its
/// writes across nodes (2PC atomicity under prepare-wait).
#[test]
fn distributed_commit_is_atomic_to_concurrent_readers() {
    let (a, b) = (node(1), node(2));
    let gts = Arc::new(Gts::new());
    // Seed both sides.
    let mut seed = Txn::begin(&a, gts.start_ts(a.id));
    seed.insert(&a, ShardId(1), 1, Value::from(vec![0]))
        .unwrap();
    seed.insert(&b, ShardId(2), 2, Value::from(vec![0]))
        .unwrap();
    commit_txn(&mut seed, &*gts, &NoNetwork).unwrap();

    let stop = Arc::new(AtomicU64::new(0));
    let reader = {
        let (a, b, gts, stop) = (
            Arc::clone(&a),
            Arc::clone(&b),
            Arc::clone(&gts),
            Arc::clone(&stop),
        );
        std::thread::spawn(move || {
            let mut torn = 0u64;
            while stop.load(Ordering::SeqCst) == 0 {
                let txn = Txn::begin(&a, gts.start_ts(a.id));
                let va = txn.read(&a, ShardId(1), 1).unwrap().unwrap()[0];
                let vb = txn.read(&b, ShardId(2), 2).unwrap().unwrap()[0];
                if va != vb {
                    torn += 1;
                }
            }
            torn
        })
    };
    for round in 1..=50u8 {
        let mut w = Txn::begin(&a, gts.start_ts(a.id));
        w.update(&a, ShardId(1), 1, Value::from(vec![round]))
            .unwrap();
        w.update(&b, ShardId(2), 2, Value::from(vec![round]))
            .unwrap();
        commit_txn(&mut w, &*gts, &NoNetwork).unwrap();
    }
    stop.store(1, Ordering::SeqCst);
    let torn = reader.join().unwrap();
    assert_eq!(torn, 0, "a reader saw a torn distributed commit");
}

/// Force-abort racing live writers: every transaction either commits fully
/// or disappears fully; the node ends with no stray in-progress state.
#[test]
fn force_abort_races_leave_no_residue() {
    let n = node(1);
    let gts = Arc::new(Gts::new());
    let writers: Vec<_> = (0..3)
        .map(|w| {
            let n = Arc::clone(&n);
            let gts = Arc::clone(&gts);
            std::thread::spawn(move || {
                let mut committed = 0u64;
                for i in 0..150u64 {
                    let key = 1000 + w as u64 * 1000 + i;
                    let mut txn = Txn::begin(&n, gts.start_ts(n.id));
                    let r = txn
                        .insert(&n, ShardId(1), key, Value::from(vec![1]))
                        .and_then(|()| commit_txn(&mut txn, &*gts, &NoNetwork).map(|_| ()));
                    match r {
                        Ok(()) => committed += 1,
                        Err(_) => abort_txn(&mut txn),
                    }
                }
                committed
            })
        })
        .collect();
    // The reaper force-aborts whatever it sees.
    let reaper = {
        let n = Arc::clone(&n);
        std::thread::spawn(move || {
            let mut killed = 0u64;
            for _ in 0..200 {
                for (xid, _) in n.active_txns() {
                    if force_abort(&n, xid, "reaper") {
                        killed += 1;
                    }
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            killed
        })
    };
    let committed: u64 = writers.into_iter().map(|t| t.join().unwrap()).sum();
    let killed = reaper.join().unwrap();
    assert_eq!(n.active_count(), 0, "no transaction may stay registered");
    // Committed + killed + self-aborted = 450 attempts; visible tuples must
    // equal commits exactly.
    let check = Txn::begin(&n, gts.start_ts(n.id));
    let mut visible = 0u64;
    for w in 0..3u64 {
        for i in 0..150u64 {
            if check
                .read(&n, ShardId(1), 1000 + w * 1000 + i)
                .unwrap()
                .is_some()
            {
                visible += 1;
            }
        }
    }
    assert_eq!(visible, committed, "killed={killed}");
}

/// Timestamps from concurrent commits are unique and the commit order is
/// consistent with the CLOG contents.
#[test]
fn concurrent_commit_timestamps_are_unique() {
    let n = node(1);
    let gts = Arc::new(Gts::new());
    let handles: Vec<_> = (0..4)
        .map(|w| {
            let n = Arc::clone(&n);
            let gts = Arc::clone(&gts);
            std::thread::spawn(move || {
                let mut stamps = Vec::new();
                for i in 0..100u64 {
                    let key = 5000 + w as u64 * 100 + i;
                    let mut txn = Txn::begin(&n, gts.start_ts(n.id));
                    txn.insert(&n, ShardId(1), key, Value::from(vec![1]))
                        .unwrap();
                    stamps.push(commit_txn(&mut txn, &*gts, &NoNetwork).unwrap());
                }
                stamps
            })
        })
        .collect();
    let mut all: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let total = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), total);
}

/// Regression: a writer that waited behind a committing transaction must
/// append its WAL records *after* the committer's commit record — the
/// migration propagation stream replays per-key conflicts in WAL order.
#[test]
fn waiter_wal_records_follow_committer_commit_record() {
    use remus_txn::{commit_prepared, prepare_participant};
    use remus_wal::{LogOp, Lsn};

    for _ in 0..20 {
        let n = node(1);
        let gts = Arc::new(Gts::new());
        let mut seed = Txn::begin(&n, gts.start_ts(n.id));
        seed.insert(&n, ShardId(1), 1, Value::from(vec![0]))
            .unwrap();
        commit_txn(&mut seed, &*gts, &NoNetwork).unwrap();

        // T1 writes the key and prepares.
        let mut t1 = Txn::begin(&n, gts.start_ts(n.id));
        t1.update(&n, ShardId(1), 1, Value::from(vec![1])).unwrap();
        prepare_participant(&n, t1.xid).unwrap();
        let t1_xid = t1.xid;

        // W blocks behind T1.
        let (n2, gts2) = (Arc::clone(&n), Arc::clone(&gts));
        let waiter = std::thread::spawn(move || {
            let mut w = Txn::begin(&n2, gts2.start_ts(n2.id));
            // Snapshot after T1's (future) commit so W proceeds cleanly.
            w.start_ts = remus_common::Timestamp(gts2.commit_ts(n2.id).0 + 1_000);
            w.update(&n2, ShardId(1), 1, Value::from(vec![2])).unwrap();
            let wal_pos_of_write = n2.wal.flush_lsn();
            commit_txn(&mut w, &*gts2, &NoNetwork).unwrap();
            (w.xid, wal_pos_of_write)
        });
        std::thread::sleep(Duration::from_millis(5));
        let cts = gts.commit_ts(n.id);
        commit_prepared(&n, t1_xid, cts).unwrap();
        let (_w_xid, w_write_lsn) = waiter.join().unwrap();

        // Find T1's CommitPrepared record position; W's write must follow.
        let mut t1_commit_lsn = None;
        for i in 1..=n.wal.flush_lsn().0 {
            if let Some(r) = n.wal.get(Lsn(i)) {
                if r.xid == t1_xid && matches!(r.op, LogOp::CommitPrepared(_)) {
                    t1_commit_lsn = Some(i);
                }
            }
        }
        let t1_commit_lsn = t1_commit_lsn.expect("T1 commit record exists");
        assert!(
            w_write_lsn.0 >= t1_commit_lsn,
            "waiter's write (lsn {w_write_lsn}) preceded T1's commit record (lsn {t1_commit_lsn})"
        );
    }
}
