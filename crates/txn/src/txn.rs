//! The transaction handle and its data operations.
//!
//! A [`Txn`] carries the snapshot (`start_ts`), the globally unique xid,
//! and the set of nodes it wrote on. Operations are invoked against an
//! explicit [`NodeStorage`] — routing (which node hosts which shard) is the
//! coordinator's job and lives in `remus-cluster`.
//!
//! Every write: checks the doom list, passes the shard write gate, appends
//! a WAL record, applies to the MVCC table, and records itself in the
//! node's active registry (the write set used by abort purges and by
//! migration engines hunting victims).

use std::collections::HashSet;
use std::sync::Arc;

use remus_common::{DbError, DbResult, NodeId, ShardId, Timestamp, TxnId};
use remus_storage::{Key, Value};
use remus_wal::{LogOp, LogRecord, WriteKind, WriteOp};

use crate::node::NodeStorage;
use crate::ssi::SsiTxn;

/// Commit-protocol state of a transaction handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Open and usable.
    Active,
    /// Committed at the contained timestamp.
    Committed(Timestamp),
    /// Aborted.
    Aborted,
}

/// A client transaction (or a shadow transaction during replay).
pub struct Txn {
    /// Globally unique transaction id.
    pub xid: TxnId,
    /// Snapshot timestamp.
    pub start_ts: Timestamp,
    /// The coordinating node.
    pub coordinator: NodeId,
    /// Protocol state.
    pub state: TxnState,
    /// Nodes on which this transaction performed writes, in first-touch
    /// order.
    pub(crate) write_nodes: Vec<Arc<NodeStorage>>,
    /// Nodes on which the CLOG entry has been begun.
    begun: HashSet<NodeId>,
    /// Nodes on which a prepare record has been written.
    pub(crate) prepared_nodes: HashSet<NodeId>,
    /// SSI handle, present only when the coordinator runs serializable
    /// mode. Shared by `Arc` into every SIREAD/write-registry entry the
    /// transaction creates, on any node.
    pub(crate) ssi: Option<Arc<SsiTxn>>,
}

impl std::fmt::Debug for Txn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("xid", &self.xid)
            .field("start_ts", &self.start_ts)
            .field("state", &self.state)
            .finish()
    }
}

impl Txn {
    /// Begins a transaction coordinated by `coordinator` with a fresh xid
    /// and the given snapshot.
    pub fn begin(coordinator: &Arc<NodeStorage>, start_ts: Timestamp) -> Txn {
        let mut txn = Txn::begin_with(coordinator.alloc_xid(), start_ts, coordinator.id);
        if coordinator.ssi.is_some() {
            txn.ssi = Some(SsiTxn::new(txn.xid, start_ts));
        }
        txn
    }

    /// Begins a transaction with an explicit xid and snapshot — shadow
    /// transactions re-execute source transactions under the *same* xid and
    /// start timestamp (paper §3.5.2).
    pub fn begin_with(xid: TxnId, start_ts: Timestamp, coordinator: NodeId) -> Txn {
        Txn {
            xid,
            start_ts,
            coordinator,
            state: TxnState::Active,
            write_nodes: Vec::new(),
            begun: HashSet::new(),
            prepared_nodes: HashSet::new(),
            ssi: None,
        }
    }

    /// The SSI handle, when the transaction runs serializable.
    pub fn ssi_handle(&self) -> Option<&Arc<SsiTxn>> {
        self.ssi.as_ref()
    }

    /// True until commit or abort.
    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Nodes this transaction wrote on.
    pub fn write_node_ids(&self) -> Vec<NodeId> {
        self.write_nodes.iter().map(|n| n.id).collect()
    }

    /// The distinct shards written on `node`.
    pub fn written_shards_on(&self, node: &NodeStorage) -> Vec<ShardId> {
        node.active_txns()
            .into_iter()
            .find(|(x, _)| *x == self.xid)
            .map(|(_, a)| a.shards())
            .unwrap_or_default()
    }

    fn assert_active(&self) -> DbResult<()> {
        if self.is_active() {
            Ok(())
        } else {
            Err(DbError::Internal(format!(
                "operation on finished {:?}",
                self.state
            )))
        }
    }

    fn ensure_begun(&mut self, node: &Arc<NodeStorage>) -> DbResult<()> {
        if self.begun.insert(node.id) {
            node.register_active(self.xid);
            if let Err(e) = node.clog.try_begin(self.xid) {
                // Lost a race with a server-side force-abort.
                node.deregister(self.xid);
                self.begun.remove(&node.id);
                return Err(e);
            }
            node.wal
                .append(LogRecord::new(self.xid, LogOp::Begin(self.start_ts)));
            self.write_nodes.push(Arc::clone(node));
        }
        Ok(())
    }

    /// SI point read.
    pub fn read(
        &self,
        node: &Arc<NodeStorage>,
        shard: ShardId,
        key: Key,
    ) -> DbResult<Option<Value>> {
        self.assert_active()?;
        node.check_doom(self.xid)?;
        let table = node.table_or_err(shard)?;
        let value = table.read(
            key,
            self.start_ts,
            self.xid,
            &node.clog,
            node.config.lock_wait_timeout,
        )?;
        if let (Some(ssi), Some(handle)) = (&node.ssi, &self.ssi) {
            ssi.on_read(handle, shard, key)?;
        }
        Ok(value)
    }

    fn write_common(
        &mut self,
        node: &Arc<NodeStorage>,
        shard: ShardId,
        key: Key,
        kind: WriteKind,
        value: Value,
    ) -> DbResult<()> {
        self.assert_active()?;
        node.check_doom(self.xid)?;
        let waited = node.gate.wait_open(shard, node.config.lock_wait_timeout)?;
        let table = match node.table_or_err(shard) {
            Ok(t) => t,
            Err(e) if waited => {
                // The gate closed for an ownership transfer and the shard
                // moved away while we were blocked.
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        self.ensure_begun(node)?;
        // SSI: register the write and raise edges against concurrent
        // readers *before* the WAL/table apply — a dangerous structure
        // detected here fails the statement with no version to purge.
        if let (Some(ssi), Some(handle)) = (&node.ssi, &self.ssi) {
            ssi.on_write(handle, shard, key)?;
        }
        node.wal.append(LogRecord::new(
            self.xid,
            LogOp::Write(WriteOp {
                shard,
                key,
                kind,
                value: value.clone(),
            }),
        ));
        let timeout = node.config.lock_wait_timeout;
        let result = match kind {
            WriteKind::Insert => {
                table.insert(key, value, self.xid, self.start_ts, &node.clog, timeout)
            }
            WriteKind::Update => {
                table.update(key, value, self.xid, self.start_ts, &node.clog, timeout)
            }
            WriteKind::Delete => table.delete(key, self.xid, self.start_ts, &node.clog, timeout),
            WriteKind::Lock => table.lock_row(key, self.xid, self.start_ts, &node.clog, timeout),
        };
        if let Err(e) = result {
            if matches!(e, DbError::WwConflict { .. }) {
                node.counters.ww_aborts.inc();
            }
            return Err(e);
        }
        node.record_write(self.xid, shard, key);
        Ok(())
    }

    /// Inserts a tuple.
    pub fn insert(
        &mut self,
        node: &Arc<NodeStorage>,
        shard: ShardId,
        key: Key,
        value: Value,
    ) -> DbResult<()> {
        self.write_common(node, shard, key, WriteKind::Insert, value)
    }

    /// Updates a tuple.
    pub fn update(
        &mut self,
        node: &Arc<NodeStorage>,
        shard: ShardId,
        key: Key,
        value: Value,
    ) -> DbResult<()> {
        self.write_common(node, shard, key, WriteKind::Update, value)
    }

    /// Deletes a tuple.
    pub fn delete(&mut self, node: &Arc<NodeStorage>, shard: ShardId, key: Key) -> DbResult<()> {
        self.write_common(node, shard, key, WriteKind::Delete, Value::new())
    }

    /// Takes an explicit row lock (`SELECT ... FOR UPDATE`).
    pub fn lock_row(&mut self, node: &Arc<NodeStorage>, shard: ShardId, key: Key) -> DbResult<()> {
        self.write_common(node, shard, key, WriteKind::Lock, Value::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_common::SimConfig;
    use remus_storage::Value;

    fn setup() -> Arc<NodeStorage> {
        let node = Arc::new(NodeStorage::new(NodeId(1), SimConfig::instant()));
        node.create_shard(ShardId(1));
        node
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn writes_log_to_wal_and_register() {
        let node = setup();
        let mut txn = Txn::begin(&node, Timestamp(10));
        txn.insert(&node, ShardId(1), 1, val("a")).unwrap();
        // Begin record + write record.
        assert_eq!(node.wal.flush_lsn().0, 2);
        assert!(matches!(
            node.wal.get(remus_wal::Lsn(1)).unwrap().op,
            LogOp::Begin(ts) if ts == Timestamp(10)
        ));
        assert_eq!(node.active_count(), 1);
        assert_eq!(txn.write_node_ids(), vec![NodeId(1)]);
        assert_eq!(txn.written_shards_on(&node), vec![ShardId(1)]);
    }

    #[test]
    fn read_own_uncommitted_write() {
        let node = setup();
        let mut txn = Txn::begin(&node, Timestamp(10));
        txn.insert(&node, ShardId(1), 1, val("a")).unwrap();
        assert_eq!(txn.read(&node, ShardId(1), 1).unwrap(), Some(val("a")));
        // Another transaction does not see it.
        let other = Txn::begin(&node, Timestamp(10));
        assert_eq!(other.read(&node, ShardId(1), 1).unwrap(), None);
    }

    #[test]
    fn write_to_unhosted_shard_is_not_owner() {
        let node = setup();
        let mut txn = Txn::begin(&node, Timestamp(10));
        let err = txn.insert(&node, ShardId(99), 1, val("a")).unwrap_err();
        assert!(matches!(err, DbError::NotOwner { .. }));
        // A failed first write must not leave the txn registered.
        assert_eq!(node.active_count(), 0);
    }

    #[test]
    fn doomed_txn_cannot_operate() {
        let node = setup();
        let mut txn = Txn::begin(&node, Timestamp(10));
        node.doom(txn.xid, "test");
        let err = txn.insert(&node, ShardId(1), 1, val("a")).unwrap_err();
        assert!(err.is_migration_induced());
        assert!(txn.read(&node, ShardId(1), 1).is_err());
    }

    #[test]
    fn shadow_txn_uses_given_identity() {
        let node = setup();
        let xid = TxnId::new(NodeId(5), 77);
        let mut shadow = Txn::begin_with(xid, Timestamp(42), node.id);
        shadow.insert(&node, ShardId(1), 1, val("a")).unwrap();
        assert_eq!(shadow.xid, xid);
        assert_eq!(shadow.start_ts, Timestamp(42));
    }

    #[test]
    fn ops_on_finished_txn_rejected() {
        let node = setup();
        let mut txn = Txn::begin(&node, Timestamp(10));
        txn.state = TxnState::Aborted;
        assert!(txn.insert(&node, ShardId(1), 1, val("a")).is_err());
        assert!(txn.read(&node, ShardId(1), 1).is_err());
    }
}
