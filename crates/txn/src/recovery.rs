//! Crash-restart WAL replay.
//!
//! After [`crate::node::NodeStorage::crash_reset`] reopened the WAL from its
//! durability backend, the node holds a recovered record sequence and empty
//! MVCC tables. [`replay_node_wal`] rebuilds storage state from that
//! sequence using the classic redo contract:
//!
//! * **Committed** transactions (a `Commit`/`CommitPrepared` record
//!   survived) are re-applied in resolution-LSN order — the order their
//!   effects became visible pre-crash — and re-registered in the CLOG with
//!   their original commit timestamps.
//! * **Prepared in-doubt** transactions (a `Prepare` record but no
//!   decision) are re-applied as *uncommitted* versions and re-registered
//!   as `Prepared`: the coordinator's eventual `commit_prepared` /
//!   `rollback_prepared` resolves them exactly as it would have pre-crash.
//! * Everything else — aborted, rolled back, or in-progress with no
//!   prepare — is skipped. The reset CLOG reports unknown xids as
//!   `Aborted`, which is precisely the crash semantics: an unprepared
//!   transaction whose commit record did not reach disk never happened.
//!
//! Writes are re-applied with `start_ts = Timestamp::MAX` so the
//! first-committer-wins check never fires against versions the replay
//! itself created: conflict resolution already happened before the crash;
//! replay is a faithful re-execution of its outcome, not a re-validation.
//!
//! Replay only sees what WAL truncation left behind. The cluster couples
//! truncation to consumed propagation slots, not to checkpoints, so a node
//! that truncated its log cannot rebuild the truncated prefix — replay
//! therefore treats "redo hits a key whose base image is gone" leniently
//! (insert-over-live falls back to update, update-of-missing falls back to
//! insert) and reports what it did in the [`ReplaySummary`].

use std::time::Duration;

use remus_common::{DbError, DbResult, Timestamp, TxnId};
use remus_wal::{LogOp, Lsn, WriteKind, WriteOp};

use crate::node::NodeStorage;

/// Per-operation timeout during replay. Replay is single-threaded over a
/// freshly reset node, so nothing should ever block; the timeout only
/// bounds the damage if that invariant breaks.
const REPLAY_TIMEOUT: Duration = Duration::from_secs(5);

/// What a WAL replay did, for logging and assertions in restart tests.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    /// WAL records scanned.
    pub records: usize,
    /// Transactions re-applied as committed.
    pub committed: usize,
    /// Transactions re-instated as prepared in-doubt.
    pub prepared_in_doubt: usize,
    /// Transactions with a surviving abort/rollback record.
    pub aborted: usize,
    /// Unresolved, never-prepared transactions dropped by the crash.
    pub dropped_in_progress: usize,
    /// Row writes re-applied to MVCC tables.
    pub writes_applied: usize,
}

/// Everything replay learned about one transaction in the scan pass.
#[derive(Debug, Default)]
struct TxnRecovery {
    writes: Vec<WriteOp>,
    saw_prepare: bool,
    /// `(lsn, commit_ts)` — `None` commit_ts means abort/rollback.
    resolution: Option<(Lsn, Option<Timestamp>)>,
}

/// Rebuilds a node's storage state from its (already reopened) WAL.
///
/// Call after [`NodeStorage::crash_reset`]; the tables must be empty apart
/// from frozen bootstrap rows the caller re-seeded (frozen installs are
/// not WAL-logged, so replay never collides with them — frozen chains are
/// replaced wholesale by row-level redo anyway).
pub fn replay_node_wal(node: &NodeStorage) -> DbResult<ReplaySummary> {
    let mut summary = ReplaySummary::default();
    let flush = node.wal.flush_lsn();
    let start = Lsn(flush.0 - node.wal.retained() as u64 + 1);

    // Pass 1: group records by transaction, find each one's fate.
    let mut txns: Vec<(TxnId, TxnRecovery)> = Vec::new();
    let mut index: std::collections::HashMap<TxnId, usize> = std::collections::HashMap::new();
    let mut max_local_seq: Option<u64> = None;
    for lsn in start.0..=flush.0 {
        let record = match node.wal.get(Lsn(lsn)) {
            Some(r) => r,
            None => continue, // concurrently truncated; nothing to redo there
        };
        summary.records += 1;
        if record.xid.origin() == node.id {
            let seq = record.xid.seq();
            max_local_seq = Some(max_local_seq.map_or(seq, |m: u64| m.max(seq)));
        }
        let slot = *index.entry(record.xid).or_insert_with(|| {
            txns.push((record.xid, TxnRecovery::default()));
            txns.len() - 1
        });
        let entry = &mut txns[slot].1;
        match &record.op {
            LogOp::Begin(_) => {}
            LogOp::Write(w) => entry.writes.push(w.clone()),
            LogOp::Prepare => entry.saw_prepare = true,
            LogOp::Commit(ts) | LogOp::CommitPrepared(ts) => {
                entry.resolution = Some((Lsn(lsn), Some(*ts)));
            }
            LogOp::Abort | LogOp::RollbackPrepared => {
                entry.resolution = Some((Lsn(lsn), None));
            }
        }
    }
    if let Some(seq) = max_local_seq {
        node.reserve_seq(seq);
    }

    // Pass 2a: redo committed transactions in resolution order.
    let mut committed: Vec<(Lsn, usize)> = txns
        .iter()
        .enumerate()
        .filter_map(|(i, (_, t))| match t.resolution {
            Some((lsn, Some(_))) => Some((lsn, i)),
            _ => None,
        })
        .collect();
    committed.sort_unstable_by_key(|(lsn, _)| *lsn);
    for (_, i) in committed {
        let (xid, recovery) = &txns[i];
        let cts = recovery.resolution.expect("filtered on Some").1.unwrap();
        node.clog.begin(*xid);
        for w in &recovery.writes {
            apply_write(node, *xid, w, &mut summary)?;
        }
        node.clog.set_committed(*xid, cts)?;
        summary.committed += 1;
    }

    // Pass 2b: re-instate prepared in-doubt transactions (uncommitted
    // versions + Prepared CLOG status) so the coordinator's decision can
    // land on the restarted node.
    for (xid, recovery) in &txns {
        match recovery.resolution {
            Some((_, Some(_))) => {}
            Some((_, None)) => summary.aborted += 1,
            None if recovery.saw_prepare => {
                node.clog.begin(*xid);
                for w in &recovery.writes {
                    apply_write(node, *xid, w, &mut summary)?;
                }
                node.clog.set_prepared(*xid)?;
                summary.prepared_in_doubt += 1;
            }
            None => summary.dropped_in_progress += 1,
        }
    }
    Ok(summary)
}

/// Redoes one logged row write leniently, creating the shard table if
/// needed. `start_ts = MAX` defeats first-committer-wins (validation
/// already happened wherever the record was produced); `Lock` records
/// carry no image and redo nothing. Insert-over-live falls back to update,
/// update-of-missing to insert, and delete-of-missing is a no-op — the
/// tolerance crash replay needs for truncated base images, and exactly the
/// value-converging semantics a replica applier needs when a migration
/// replays the same transaction over two shipped streams.
///
/// Returns whether a row version was installed.
pub fn redo_write(
    node: &NodeStorage,
    xid: TxnId,
    w: &WriteOp,
    timeout: Duration,
) -> DbResult<bool> {
    if w.kind == WriteKind::Lock {
        return Ok(false);
    }
    let table = node.create_shard(w.shard);
    let ts = Timestamp::MAX;
    let clog = &node.clog;
    let outcome = match w.kind {
        WriteKind::Insert => match table.insert(w.key, w.value.clone(), xid, ts, clog, timeout) {
            // Base image predates the retained WAL (insert was
            // truncated away but the row re-appeared): redo as update.
            Err(DbError::DuplicateKey) => {
                table.update(w.key, w.value.clone(), xid, ts, clog, timeout)
            }
            other => other,
        },
        WriteKind::Update => match table.update(w.key, w.value.clone(), xid, ts, clog, timeout) {
            // Base image lost to WAL truncation: redo as insert.
            Err(DbError::KeyNotFound) => {
                table.insert(w.key, w.value.clone(), xid, ts, clog, timeout)
            }
            other => other,
        },
        WriteKind::Delete => match table.delete(w.key, xid, ts, clog, timeout) {
            // Deleting a row that never made it to disk: already gone.
            Err(DbError::KeyNotFound) => return Ok(false),
            other => other,
        },
        WriteKind::Lock => unreachable!("filtered above"),
    };
    outcome?;
    Ok(true)
}

/// [`redo_write`] plus replay summary accounting.
fn apply_write(
    node: &NodeStorage,
    xid: TxnId,
    w: &WriteOp,
    summary: &mut ReplaySummary,
) -> DbResult<()> {
    if redo_write(node, xid, w, REPLAY_TIMEOUT)? {
        summary.writes_applied += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_common::{NodeId, ShardId, SimConfig, WalConfig};
    use remus_storage::TxnStatus;
    use remus_wal::LogRecord;

    fn bytes(s: &str) -> remus_storage::Value {
        remus_storage::Value::from(s.as_bytes().to_vec())
    }

    /// SI read as a detached observer transaction.
    fn read_at(
        node: &NodeStorage,
        shard: ShardId,
        key: u64,
        ts: Timestamp,
    ) -> Option<remus_storage::Value> {
        let observer = TxnId::new(NodeId(63), 1);
        node.table(shard)
            .unwrap()
            .read(key, ts, observer, &node.clog, REPLAY_TIMEOUT)
            .unwrap()
    }

    fn write(shard: u64, key: u64, kind: WriteKind, val: &str) -> LogOp {
        LogOp::Write(WriteOp {
            shard: ShardId(shard),
            key,
            kind,
            value: bytes(val),
        })
    }

    /// Drives a scripted history through a node's WAL and replays it into
    /// the (still empty) tables. Replay only consumes the WAL, so on the
    /// in-memory backend — where a real crash would erase the log — the
    /// tests call it directly; the file-backed test at the bottom runs the
    /// full `crash_reset` → replay pipeline.
    #[test]
    fn replay_rebuilds_committed_skips_unresolved_reinstates_prepared() {
        let node = NodeStorage::new(NodeId(1), SimConfig::instant());
        node.create_shard(ShardId(1));
        let committed = node.alloc_xid();
        let in_progress = node.alloc_xid();
        let prepared = node.alloc_xid();
        let aborted = node.alloc_xid();
        let wal = &node.wal;
        wal.append(LogRecord::new(committed, LogOp::Begin(Timestamp(10))));
        wal.append(LogRecord::new(
            committed,
            write(1, 100, WriteKind::Insert, "a"),
        ));
        wal.append(LogRecord::new(in_progress, LogOp::Begin(Timestamp(11))));
        wal.append(LogRecord::new(
            in_progress,
            write(1, 200, WriteKind::Insert, "lost"),
        ));
        wal.append(LogRecord::new(committed, LogOp::Commit(Timestamp(20))));
        wal.append(LogRecord::new(prepared, LogOp::Begin(Timestamp(12))));
        wal.append(LogRecord::new(
            prepared,
            write(1, 300, WriteKind::Insert, "maybe"),
        ));
        wal.append(LogRecord::new(prepared, LogOp::Prepare));
        wal.append(LogRecord::new(aborted, LogOp::Begin(Timestamp(13))));
        wal.append(LogRecord::new(aborted, LogOp::Abort));

        let summary = replay_node_wal(&node).unwrap();
        assert_eq!(summary.committed, 1);
        assert_eq!(summary.prepared_in_doubt, 1);
        assert_eq!(summary.aborted, 1);
        assert_eq!(summary.dropped_in_progress, 1);
        assert_eq!(summary.writes_applied, 2);

        // Committed row readable at its commit timestamp.
        assert_eq!(
            read_at(&node, ShardId(1), 100, Timestamp(20)),
            Some(bytes("a"))
        );
        // In-progress write vanished with the crash.
        assert_eq!(read_at(&node, ShardId(1), 200, Timestamp::MAX), None);
        // Prepared row exists but is not visible (uncommitted); CLOG says
        // Prepared so the coordinator decision can still land.
        assert_eq!(node.clog.status(prepared), TxnStatus::Prepared);
        assert_eq!(
            node.clog.status(committed),
            TxnStatus::Committed(Timestamp(20))
        );
        assert_eq!(node.clog.status(in_progress), TxnStatus::Aborted);

        // Recovered xids are never re-issued.
        let fresh = node.alloc_xid();
        assert!(fresh.seq() > aborted.seq());
    }

    #[test]
    fn replay_respects_resolution_order_not_begin_order() {
        let node = NodeStorage::new(NodeId(1), SimConfig::instant());
        node.create_shard(ShardId(2));
        let first = node.alloc_xid();
        let second = node.alloc_xid();
        let wal = &node.wal;
        // `second` begins first but commits last; its image must win.
        wal.append(LogRecord::new(second, LogOp::Begin(Timestamp(5))));
        wal.append(LogRecord::new(first, LogOp::Begin(Timestamp(6))));
        wal.append(LogRecord::new(first, write(2, 7, WriteKind::Insert, "old")));
        wal.append(LogRecord::new(first, LogOp::Commit(Timestamp(10))));
        wal.append(LogRecord::new(
            second,
            write(2, 7, WriteKind::Update, "new"),
        ));
        wal.append(LogRecord::new(second, LogOp::Commit(Timestamp(11))));

        replay_node_wal(&node).unwrap();
        assert_eq!(
            read_at(&node, ShardId(2), 7, Timestamp(10)),
            Some(bytes("old"))
        );
        assert_eq!(
            read_at(&node, ShardId(2), 7, Timestamp(11)),
            Some(bytes("new"))
        );
    }

    #[test]
    fn replay_survives_truncated_base_images() {
        let node = NodeStorage::new(NodeId(1), SimConfig::instant());
        node.create_shard(ShardId(3));
        let early = node.alloc_xid();
        let late = node.alloc_xid();
        let wal = &node.wal;
        wal.append(LogRecord::new(early, write(3, 1, WriteKind::Insert, "v0")));
        wal.append(LogRecord::new(early, LogOp::Commit(Timestamp(5))));
        // Truncate the insert away; only the update survives.
        wal.truncate_until(remus_wal::Lsn(2));
        wal.append(LogRecord::new(late, write(3, 1, WriteKind::Update, "v1")));
        wal.append(LogRecord::new(late, LogOp::Commit(Timestamp(9))));

        let summary = replay_node_wal(&node).unwrap();
        assert_eq!(summary.committed, 1);
        assert_eq!(
            read_at(&node, ShardId(3), 1, Timestamp::MAX),
            Some(bytes("v1"))
        );
    }

    #[test]
    fn crash_reset_keeps_kept_tables_by_identity_and_file_wal_replays() {
        let dir = std::env::temp_dir().join(format!(
            "remus-recovery-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut config = SimConfig::instant();
        config.wal = WalConfig::file(&dir);
        let node = NodeStorage::with_metrics(
            NodeId(4),
            config,
            &remus_common::metrics::MetricsRegistry::new(),
        );
        let kept = ShardId(u64::MAX);
        let kept_table = node.create_shard(kept);
        node.create_shard(ShardId(9));
        let xid = node.alloc_xid();
        node.wal
            .append(LogRecord::new(xid, write(9, 42, WriteKind::Insert, "d")));
        node.wal
            .append_durable(LogRecord::new(xid, LogOp::Commit(Timestamp(3))))
            .unwrap();

        node.crash_reset(&[kept]).unwrap();
        // Kept table survives as the same allocation; the other is gone.
        assert!(Arc::ptr_eq(&kept_table, &node.table(kept).unwrap()));
        assert!(node.table(ShardId(9)).is_none());

        let summary = replay_node_wal(&node).unwrap();
        assert_eq!(summary.committed, 1);
        assert_eq!(
            read_at(&node, ShardId(9), 42, Timestamp(3)),
            Some(bytes("d"))
        );
        drop(node);
        std::fs::remove_dir_all(&dir).expect("tmpdir hygiene");
    }

    use std::sync::Arc;
}
