#![warn(missing_docs)]

//! The snapshot-isolation transaction engine.
//!
//! This crate owns the mechanics every migration engine builds on:
//!
//! * [`node::NodeStorage`] — one elastic node's storage context: CLOG, WAL,
//!   shard tables, xid allocation, the active-transaction registry, and the
//!   doom list used to terminate victims server-side.
//! * [`txn::Txn`] — a transaction handle tracking snapshot, write set, and
//!   participants; read/insert/update/delete/lock operations that log to
//!   the WAL and apply to the MVCC tables.
//! * [`commit`] — commit/abort protocols: the single-node fast path and
//!   two-phase commit with the prepare-wait timestamp-ordering rule, plus
//!   the [`hooks::SyncCommitHook`] seam through which Remus's MOCC
//!   interposes on the source node's commit path.
//! * [`gate`] — shard write gates (lock-and-abort's ownership transfer) and
//!   the H-store-style shard lock table used to reproduce Squall's
//!   partition-lock concurrency control.
//! * [`net`] — the network-delay seam used to charge cross-node hops.
//! * [`ssi`] — serializable snapshot isolation (opt-in via
//!   [`remus_common::IsolationLevel::Serializable`]): per-node SIREAD lock
//!   tables, rw-antidependency tracking, and dangerous-structure aborts,
//!   with SIREAD retention past commit until the safe-ts watermark.
//! * [`recovery`] — crash-restart WAL replay: after
//!   [`node::NodeStorage::crash_reset`] drops volatile state and reopens
//!   the WAL from its durability backend, [`recovery::replay_node_wal`]
//!   redoes committed transactions and re-instates prepared in-doubt ones.

pub mod commit;
pub mod gate;
pub mod hooks;
pub mod net;
pub mod node;
pub mod recovery;
pub mod ssi;
pub mod txn;

pub use commit::{
    abort_txn, commit_prepared, commit_txn, force_abort, prepare_participant, rollback_prepared,
};
pub use gate::{LockMode, ShardGate, ShardLockTable};
pub use hooks::{CommitMode, NoopHook, SyncCommitHook};
pub use net::{DelayNetwork, Network, NoNetwork};
pub use node::{NodeCounters, NodeStorage};
pub use recovery::{redo_write, replay_node_wal, ReplaySummary};
pub use ssi::{SealOutcome, SsiNode, SsiPhase, SsiShardExport, SsiTxn};
pub use txn::Txn;
