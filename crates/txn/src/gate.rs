//! Shard write gates and the H-store-style shard lock table.
//!
//! [`ShardGate`] implements the blocking primitive the *lock-and-abort*
//! baseline uses for ownership transfer (§2.3.3): closing a shard's gate
//! blocks new writers; the engine then terminates current writers, replays
//! final updates, flips the shard map, drops the shard, and reopens the
//! gate — at which point the blocked writers discover the shard is gone and
//! abort.
//!
//! [`ShardLockTable`] reproduces the partition locks of H-store that Squall
//! relies on (§2.3.2, §4.2): per-shard shared/exclusive locks held for the
//! duration of a transaction (or a migration pull). This coarse concurrency
//! control is what collapses YCSB throughput when a batch transaction locks
//! every shard.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use remus_common::{DbError, DbResult, ShardId, TxnId};

/// Per-shard write gates.
#[derive(Debug, Default)]
pub struct ShardGate {
    closed: Mutex<HashMap<ShardId, bool>>,
    opened: Condvar,
}

impl ShardGate {
    /// All gates open.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closes the gate: subsequent writers block in [`ShardGate::wait_open`].
    pub fn close(&self, shard: ShardId) {
        self.closed.lock().insert(shard, true);
    }

    /// Reopens the gate and wakes blocked writers.
    pub fn open(&self, shard: ShardId) {
        self.closed.lock().remove(&shard);
        self.opened.notify_all();
    }

    /// True if the gate is currently closed.
    pub fn is_closed(&self, shard: ShardId) -> bool {
        self.closed.lock().get(&shard).copied().unwrap_or(false)
    }

    /// Reopens every gate and wakes all blocked writers (crash restart: a
    /// gate closed by a migration that died with the process must not
    /// outlive it).
    pub fn reset(&self) {
        self.closed.lock().clear();
        self.opened.notify_all();
    }

    /// Blocks while the shard's gate is closed. Returns `true` if the call
    /// had to wait (the caller then re-validates shard placement — after an
    /// ownership transfer the shard is gone and the write must abort).
    pub fn wait_open(&self, shard: ShardId, timeout: Duration) -> DbResult<bool> {
        let deadline = Instant::now() + timeout;
        let mut closed = self.closed.lock();
        let mut waited = false;
        while closed.get(&shard).copied().unwrap_or(false) {
            waited = true;
            let now = Instant::now();
            if now >= deadline {
                return Err(DbError::Timeout("shard gate"));
            }
            self.opened.wait_for(&mut closed, deadline - now);
        }
        Ok(waited)
    }
}

/// Lock modes for the shard lock table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (writers, migration pulls).
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    /// Shared holders.
    shared: Vec<TxnId>,
    /// Exclusive holder.
    exclusive: Option<TxnId>,
}

impl LockState {
    fn grant(&mut self, xid: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => {
                if self.exclusive.is_none() || self.exclusive == Some(xid) {
                    if self.exclusive != Some(xid) && !self.shared.contains(&xid) {
                        self.shared.push(xid);
                    }
                    true
                } else {
                    false
                }
            }
            LockMode::Exclusive => match self.exclusive {
                Some(holder) if holder == xid => true,
                Some(_) => false,
                None => {
                    // Upgrade allowed only if we are the sole shared holder.
                    let others = self.shared.iter().any(|&h| h != xid);
                    if others || (!self.shared.is_empty() && !self.shared.contains(&xid)) {
                        false
                    } else if self.shared.is_empty() || self.shared == [xid] {
                        self.shared.retain(|&h| h != xid);
                        self.exclusive = Some(xid);
                        true
                    } else {
                        false
                    }
                }
            },
        }
    }

    fn release(&mut self, xid: TxnId) -> bool {
        let before = self.shared.len();
        self.shared.retain(|&h| h != xid);
        let mut released = before != self.shared.len();
        if self.exclusive == Some(xid) {
            self.exclusive = None;
            released = true;
        }
        released
    }

    fn is_free(&self) -> bool {
        self.shared.is_empty() && self.exclusive.is_none()
    }
}

/// Per-shard shared/exclusive locks with blocking acquisition.
///
/// Callers acquiring multiple shards must acquire in sorted order (see
/// [`ShardLockTable::acquire_many`]) — that convention plus the timeout is
/// the deadlock story, as in H-store's partition executors.
#[derive(Debug, Default)]
pub struct ShardLockTable {
    locks: Mutex<HashMap<ShardId, LockState>>,
    released: Condvar,
}

impl ShardLockTable {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires one shard lock, blocking up to `timeout`.
    pub fn acquire(
        &self,
        xid: TxnId,
        shard: ShardId,
        mode: LockMode,
        timeout: Duration,
    ) -> DbResult<()> {
        let deadline = Instant::now() + timeout;
        let mut locks = self.locks.lock();
        loop {
            if locks.entry(shard).or_default().grant(xid, mode) {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(DbError::Timeout("shard lock"));
            }
            self.released.wait_for(&mut locks, deadline - now);
        }
    }

    /// Acquires several shard locks in sorted order (deadlock avoidance).
    pub fn acquire_many(
        &self,
        xid: TxnId,
        shards: &[ShardId],
        mode: LockMode,
        timeout: Duration,
    ) -> DbResult<()> {
        let mut sorted: Vec<ShardId> = shards.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for (i, shard) in sorted.iter().enumerate() {
            if let Err(e) = self.acquire(xid, *shard, mode, timeout) {
                // Back out the locks taken so far.
                for taken in &sorted[..i] {
                    self.release_one(xid, *taken);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    fn release_one(&self, xid: TxnId, shard: ShardId) {
        let mut locks = self.locks.lock();
        if let Some(state) = locks.get_mut(&shard) {
            if state.release(xid) && state.is_free() {
                locks.remove(&shard);
            }
        }
        drop(locks);
        self.released.notify_all();
    }

    /// Releases every lock held by `xid`.
    pub fn release_all(&self, xid: TxnId) {
        let mut locks = self.locks.lock();
        locks.retain(|_, state| {
            state.release(xid);
            !state.is_free()
        });
        drop(locks);
        self.released.notify_all();
    }

    /// Number of shards with at least one holder (diagnostics).
    pub fn held_count(&self) -> usize {
        self.locks.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_common::NodeId;
    use std::sync::Arc;

    const T: Duration = Duration::from_millis(200);

    fn xid(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    #[test]
    fn gate_blocks_until_open() {
        let gate = Arc::new(ShardGate::new());
        gate.close(ShardId(1));
        assert!(gate.is_closed(ShardId(1)));
        let g = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g.wait_open(ShardId(1), Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        gate.open(ShardId(1));
        assert!(waiter.join().unwrap().unwrap());
    }

    #[test]
    fn open_gate_passes_without_waiting() {
        let gate = ShardGate::new();
        assert!(!gate.wait_open(ShardId(1), T).unwrap());
    }

    #[test]
    fn gate_wait_times_out() {
        let gate = ShardGate::new();
        gate.close(ShardId(1));
        assert_eq!(
            gate.wait_open(ShardId(1), Duration::from_millis(10))
                .unwrap_err(),
            DbError::Timeout("shard gate")
        );
    }

    #[test]
    fn shared_locks_coexist() {
        let t = ShardLockTable::new();
        t.acquire(xid(1), ShardId(1), LockMode::Shared, T).unwrap();
        t.acquire(xid(2), ShardId(1), LockMode::Shared, T).unwrap();
        assert_eq!(t.held_count(), 1);
    }

    #[test]
    fn exclusive_excludes_shared_and_exclusive() {
        let t = ShardLockTable::new();
        t.acquire(xid(1), ShardId(1), LockMode::Exclusive, T)
            .unwrap();
        assert!(t
            .acquire(
                xid(2),
                ShardId(1),
                LockMode::Shared,
                Duration::from_millis(10)
            )
            .is_err());
        assert!(t
            .acquire(
                xid(2),
                ShardId(1),
                LockMode::Exclusive,
                Duration::from_millis(10)
            )
            .is_err());
    }

    #[test]
    fn reacquire_is_idempotent() {
        let t = ShardLockTable::new();
        t.acquire(xid(1), ShardId(1), LockMode::Exclusive, T)
            .unwrap();
        t.acquire(xid(1), ShardId(1), LockMode::Exclusive, T)
            .unwrap();
        t.acquire(xid(1), ShardId(1), LockMode::Shared, T).unwrap();
        t.release_all(xid(1));
        // Fully free afterwards.
        t.acquire(xid(2), ShardId(1), LockMode::Exclusive, T)
            .unwrap();
    }

    #[test]
    fn sole_shared_holder_upgrades() {
        let t = ShardLockTable::new();
        t.acquire(xid(1), ShardId(1), LockMode::Shared, T).unwrap();
        t.acquire(xid(1), ShardId(1), LockMode::Exclusive, T)
            .unwrap();
        assert!(t
            .acquire(
                xid(2),
                ShardId(1),
                LockMode::Shared,
                Duration::from_millis(10)
            )
            .is_err());
    }

    #[test]
    fn release_wakes_waiter() {
        let t = Arc::new(ShardLockTable::new());
        t.acquire(xid(1), ShardId(1), LockMode::Exclusive, T)
            .unwrap();
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || {
            t2.acquire(
                xid(2),
                ShardId(1),
                LockMode::Exclusive,
                Duration::from_secs(5),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        t.release_all(xid(1));
        assert!(waiter.join().unwrap().is_ok());
    }

    #[test]
    fn acquire_many_backs_out_on_failure() {
        let t = ShardLockTable::new();
        t.acquire(xid(9), ShardId(2), LockMode::Exclusive, T)
            .unwrap();
        let err = t.acquire_many(
            xid(1),
            &[ShardId(3), ShardId(1), ShardId(2)],
            LockMode::Exclusive,
            Duration::from_millis(10),
        );
        assert!(err.is_err());
        // Shards 1 and 3 must have been released.
        t.acquire(xid(2), ShardId(1), LockMode::Exclusive, T)
            .unwrap();
        t.acquire(xid(2), ShardId(3), LockMode::Exclusive, T)
            .unwrap();
    }

    #[test]
    fn acquire_many_sorts_and_dedups() {
        let t = ShardLockTable::new();
        t.acquire_many(
            xid(1),
            &[ShardId(2), ShardId(1), ShardId(2)],
            LockMode::Exclusive,
            T,
        )
        .unwrap();
        assert_eq!(t.held_count(), 2);
        t.release_all(xid(1));
        assert_eq!(t.held_count(), 0);
    }
}
