//! The commit-path seam that migration engines interpose on.
//!
//! Remus's sync barrier (paper §3.4) is "a flag in a shared memory area of
//! the source node ... checked by source transactions before they commit".
//! [`SyncCommitHook`] is that flag plus the machinery behind it: the commit
//! protocol asks the installed hook for its [`CommitMode`]; in sync mode the
//! transaction becomes a *synchronized source transaction* and, after
//! writing its validation (prepare) record, blocks in
//! [`SyncCommitHook::await_validation`] until the destination has replayed
//! and validated its changes (MOCC's validation stage, §3.5.2).
//!
//! The hook also hears about commit-progress boundaries so the migration
//! can track `TS_unsync` — the set of transactions already committing when
//! the barrier was raised.

use remus_common::{DbResult, ShardId, Timestamp, TxnId};

/// How a transaction must commit on this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMode {
    /// Normal path: commit locally; changes propagate asynchronously.
    Async,
    /// Synchronized source transaction: wait for destination validation
    /// before assigning the commit timestamp.
    Sync,
}

/// Migration interposition points on one node's commit path.
///
/// All methods must be cheap when no migration is active; the engine
/// installs a hook only on the migration's source node.
pub trait SyncCommitHook: Send + Sync {
    /// Called when a transaction that wrote `shards` on this node enters
    /// its commit progress. Returns the commit mode and registers the
    /// transaction as "in commit progress" (the `TS_unsync` bookkeeping).
    fn begin_commit(&self, xid: TxnId, shards: &[ShardId]) -> CommitMode;

    /// Sync mode only: blocks until the destination reports the MOCC
    /// validation outcome for `xid`. `Err` means a WW-conflict was found on
    /// the destination and both the source and shadow transaction must
    /// abort.
    fn await_validation(&self, xid: TxnId) -> DbResult<()>;

    /// Called once the transaction resolved (committed with `Some(ts)` or
    /// aborted with `None`), after its resolution record hit the WAL.
    fn end_commit(&self, xid: TxnId, commit_ts: Option<Timestamp>);
}

/// The hook installed when no migration is running: everything commits
/// asynchronously.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHook;

impl SyncCommitHook for NoopHook {
    fn begin_commit(&self, _xid: TxnId, _shards: &[ShardId]) -> CommitMode {
        CommitMode::Async
    }

    fn await_validation(&self, _xid: TxnId) -> DbResult<()> {
        Ok(())
    }

    fn end_commit(&self, _xid: TxnId, _commit_ts: Option<Timestamp>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_common::NodeId;

    #[test]
    fn noop_hook_always_async_and_valid() {
        let hook = NoopHook;
        let xid = TxnId::new(NodeId(0), 1);
        assert_eq!(hook.begin_commit(xid, &[ShardId(1)]), CommitMode::Async);
        assert!(hook.await_validation(xid).is_ok());
        hook.end_commit(xid, Some(Timestamp(5)));
        hook.end_commit(xid, None);
    }
}
