//! The network-delay seam.
//!
//! The simulation runs every node in one process; protocol messages are
//! method calls. To keep the *relative* costs of the paper's testbed (2PC
//! round trips, propagation sends, Squall pulls), cross-node interactions
//! charge themselves a hop through a [`Network`] implementation.

use std::time::Duration;

use remus_common::NodeId;

/// Charges simulated network hops.
pub trait Network: Send + Sync {
    /// One message from `from` to `to`. Local delivery must be free.
    fn hop(&self, from: NodeId, to: NodeId);
}

/// Zero-latency network for unit tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoNetwork;

impl Network for NoNetwork {
    fn hop(&self, _from: NodeId, _to: NodeId) {}
}

/// Uniform one-way latency between distinct nodes.
#[derive(Debug, Clone, Copy)]
pub struct DelayNetwork {
    latency: Duration,
}

impl DelayNetwork {
    /// A network with the given one-way latency.
    pub fn new(latency: Duration) -> Self {
        DelayNetwork { latency }
    }
}

impl Network for DelayNetwork {
    fn hop(&self, from: NodeId, to: NodeId) {
        if from != to && !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn local_hops_are_free() {
        let net = DelayNetwork::new(Duration::from_millis(50));
        let t = Instant::now();
        net.hop(NodeId(1), NodeId(1));
        assert!(t.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn remote_hops_charge_latency() {
        let net = DelayNetwork::new(Duration::from_millis(20));
        let t = Instant::now();
        net.hop(NodeId(1), NodeId(2));
        assert!(t.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn no_network_is_instant() {
        let t = Instant::now();
        NoNetwork.hop(NodeId(1), NodeId(2));
        assert!(t.elapsed() < Duration::from_millis(5));
    }
}
