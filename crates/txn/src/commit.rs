//! Commit and abort protocols.
//!
//! * Single write-node transactions take the fast path of §2.2: mark
//!   `Prepared` in the CLOG, assign the commit timestamp, replace the
//!   status with it.
//! * Multi-node transactions use two-phase commit; the prepare-wait rule
//!   falls out of the `Prepared` CLOG status blocking readers.
//! * On nodes whose installed [`crate::hooks::SyncCommitHook`] reports sync mode, the
//!   transaction writes its validation (prepare) record and blocks until
//!   the destination validates its replayed changes — MOCC's validation
//!   stage. A validation failure aborts the whole transaction.
//! * Under DTS, the coordinator observes a clock tick from every
//!   participant after prepare, so the commit timestamp exceeds every
//!   participant's prepare time (the causality the prepare-wait correctness
//!   argument needs); participants observe the commit timestamp back.
//!
//! The low-level participant steps ([`prepare_participant`],
//! [`commit_prepared`], [`rollback_prepared`]) are shared with the
//! destination-side replay process, which drives shadow transactions
//! through exactly the same state machine.

use std::sync::Arc;

use remus_clock::TimestampOracle;
use remus_common::{DbError, DbResult, Timestamp, TxnId};
use remus_wal::{LogOp, LogRecord};

use crate::hooks::CommitMode;
use crate::net::Network;
use crate::node::NodeStorage;
use crate::ssi::SealOutcome;
use crate::txn::{Txn, TxnState};

/// SSI commit-entry check: seal the handle (so post-seal edges abort their
/// live side instead), fail a handover-doomed transaction with a migration
/// abort, and abort a dangerous-structure pivot with a serialization
/// failure. No-op under plain snapshot isolation.
fn ssi_precommit(txn: &mut Txn) -> DbResult<()> {
    let Some(handle) = txn.ssi.clone() else {
        return Ok(());
    };
    match handle.seal() {
        SealOutcome::Sealed => {}
        SealOutcome::Doomed(reason) => {
            let e = DbError::MigrationAbort {
                txn: txn.xid,
                reason,
            };
            abort_txn(txn);
            return Err(e);
        }
    }
    if handle.is_pivot() {
        if let Some(ssi) = txn.write_nodes.first().and_then(|n| n.ssi.as_ref()) {
            ssi.ssi_aborts.inc();
        }
        let e = DbError::SsiAbort { txn: txn.xid };
        abort_txn(txn);
        return Err(e);
    }
    Ok(())
}

/// Writes the prepare (validation) record and marks the CLOG prepared.
///
/// The prepare record is appended durably: once a participant votes yes it
/// must be able to honor the decision after a crash, which requires the
/// vote (and, transitively, the write records before it) on disk.
pub fn prepare_participant(node: &NodeStorage, xid: TxnId) -> DbResult<()> {
    node.wal
        .append_durable(LogRecord::new(xid, LogOp::Prepare))?;
    node.clog.set_prepared(xid)
}

/// Commits a prepared transaction on one node with the decided timestamp.
///
/// The WAL record is appended *before* the CLOG flips: a conflicting
/// writer waiting on this transaction wakes only after the CLOG commit, so
/// its subsequent records land after this commit record — the propagation
/// stream then replays per-key conflicting transactions in their true
/// commit-dependency order.
pub fn commit_prepared(node: &NodeStorage, xid: TxnId, ts: Timestamp) -> DbResult<()> {
    node.wal
        .append_durable(LogRecord::new(xid, LogOp::CommitPrepared(ts)))?;
    node.clog.set_committed(xid, ts)?;
    node.deregister(xid);
    Ok(())
}

/// Rolls back a prepared transaction on one node, purging its writes.
pub fn rollback_prepared(node: &NodeStorage, xid: TxnId) {
    node.wal
        .append(LogRecord::new(xid, LogOp::RollbackPrepared));
    node.clog.set_aborted(xid);
    purge_writes(node, xid);
}

fn purge_writes(node: &NodeStorage, xid: TxnId) {
    if let Some(info) = node.deregister(xid) {
        for (shard, key) in info.writes {
            if let Some(table) = node.table(shard) {
                table.purge_txn([key], xid);
            }
        }
    }
}

/// Commits the transaction, returning its commit timestamp.
///
/// Read-only transactions commit trivially at their snapshot. On
/// validation failure or doom the transaction is fully aborted before the
/// error returns.
pub fn commit_txn(
    txn: &mut Txn,
    oracle: &dyn TimestampOracle,
    net: &dyn Network,
) -> DbResult<Timestamp> {
    if !txn.is_active() {
        return Err(DbError::Internal(format!(
            "commit on finished {:?}",
            txn.state
        )));
    }
    let write_nodes: Vec<Arc<NodeStorage>> = txn.write_nodes.clone();
    if write_nodes.is_empty() {
        // Read-only transactions commit at their snapshot, but a
        // serializable one must still pass the SSI checks: a migration
        // handover may have doomed it (its SIREAD entries were abandoned),
        // and its handle must record the commit so retained entries carry
        // a timestamp for the watermark GC.
        ssi_precommit(txn)?;
        if let Some(h) = &txn.ssi {
            h.mark_committed(txn.start_ts);
        }
        txn.state = TxnState::Committed(txn.start_ts);
        return Ok(txn.start_ts);
    }

    // Doom check on entry to commit progress.
    for node in &write_nodes {
        if let Err(e) = node.check_doom(txn.xid) {
            abort_txn(txn);
            return Err(e);
        }
    }

    // SSI: seal and run the dangerous-structure pivot check before any
    // node enters commit progress.
    ssi_precommit(txn)?;

    // Enter commit progress: ask each node's hook for the commit mode.
    let plans: Vec<(
        Arc<NodeStorage>,
        Arc<dyn crate::hooks::SyncCommitHook>,
        CommitMode,
    )> = write_nodes
        .iter()
        .map(|node| {
            let hook = node.hook();
            let shards = txn.written_shards_on(node);
            let mode = hook.begin_commit(txn.xid, &shards);
            (Arc::clone(node), hook, mode)
        })
        .collect();

    let any_sync = plans.iter().any(|(_, _, m)| *m == CommitMode::Sync);
    let distributed = write_nodes.len() > 1;

    // Any failure after this point must notify every hook that the
    // transaction ended (otherwise the sync barrier's TS_unsync bookkeeping
    // would wait for it forever) and abort the transaction.
    let plans_for_fail: Vec<_> = plans
        .iter()
        .map(|(n, h, m)| (Arc::clone(n), Arc::clone(h), *m))
        .collect();
    let fail = move |txn: &mut Txn, e: DbError| -> DbError {
        for (node, hook, _) in &plans_for_fail {
            let _ = node;
            hook.end_commit(txn.xid, None);
        }
        abort_txn_inner(txn);
        e
    };

    let commit_ts = if !distributed && !any_sync {
        // Single-node fast path (§2.2): prepared status guards the window
        // between timestamp assignment and CLOG update.
        let node = &write_nodes[0];
        let result: DbResult<Timestamp> = (|| {
            node.clog.set_prepared(txn.xid)?;
            let ts = oracle.commit_ts(node.id);
            // WAL before CLOG, for the same per-key replay-order reason as
            // commit_prepared; durable before the commit is acknowledged.
            node.wal
                .append_durable(LogRecord::new(txn.xid, LogOp::Commit(ts)))?;
            node.clog.set_committed(txn.xid, ts)?;
            Ok(ts)
        })();
        let ts = match result {
            Ok(ts) => ts,
            Err(e) => return Err(fail(txn, e)),
        };
        node.deregister(txn.xid);
        // The commit timestamp travels back to the coordinator with the
        // result; under DTS the coordinator's clock must observe it so the
        // session's next snapshot is not stale with respect to its own
        // previous commit (per-session monotonicity, §2.2).
        if node.id != txn.coordinator {
            net.hop(node.id, txn.coordinator);
            oracle.observe(txn.coordinator, ts);
        }
        ts
    } else {
        // Phase one: prepare everywhere (validation record + CLOG).
        for (node, _, _) in &plans {
            net.hop(txn.coordinator, node.id);
            node.counters.twopc_hops.inc();
            if let Err(e) = prepare_participant(node, txn.xid) {
                return Err(fail(txn, e));
            }
            txn.prepared_nodes.insert(node.id);
        }
        // MOCC validation: wait for the destination's verdict on every
        // sync-mode node.
        for (_node, hook, mode) in &plans {
            if *mode == CommitMode::Sync {
                if let Err(e) = hook.await_validation(txn.xid) {
                    for (n, h, _) in &plans {
                        net.hop(txn.coordinator, n.id);
                        n.counters.twopc_hops.inc();
                        rollback_prepared(n, txn.xid);
                        h.end_commit(txn.xid, None);
                    }
                    if let Some(h) = &txn.ssi {
                        h.mark_aborted();
                    }
                    txn.state = TxnState::Aborted;
                    return Err(e);
                }
            }
        }
        // Decide the commit timestamp after every prepare completed,
        // observing participant clocks for DTS causality.
        for (node, _, _) in &plans {
            if node.id != txn.coordinator {
                let participant_now = oracle.commit_ts(node.id);
                net.hop(node.id, txn.coordinator);
                node.counters.twopc_hops.inc();
                oracle.observe(txn.coordinator, participant_now);
            }
        }
        let ts = oracle.commit_ts(txn.coordinator);
        // Phase two: commit everywhere.
        for (node, hook, _) in &plans {
            net.hop(txn.coordinator, node.id);
            node.counters.twopc_hops.inc();
            oracle.observe(node.id, ts);
            commit_prepared(node, txn.xid, ts)
                .expect("participant cannot refuse a 2PC commit decision");
            hook.end_commit(txn.xid, Some(ts));
        }
        ts
    };

    // Fast-path hook notification (sync/distributed paths notified above).
    if !distributed && !any_sync {
        plans[0].1.end_commit(txn.xid, Some(commit_ts));
    }

    if let Some(h) = &txn.ssi {
        h.mark_committed(commit_ts);
    }
    txn.state = TxnState::Committed(commit_ts);
    Ok(commit_ts)
}

fn abort_txn_inner(txn: &mut Txn) {
    abort_txn(txn);
}

/// Aborts the transaction on every node it wrote: abort record, CLOG,
/// purge. Safe to call on read-only transactions.
pub fn abort_txn(txn: &mut Txn) {
    if !txn.is_active() {
        return;
    }
    if let Some(h) = &txn.ssi {
        h.mark_aborted();
    }
    for node in &txn.write_nodes {
        let op = if txn.prepared_nodes.contains(&node.id) {
            LogOp::RollbackPrepared
        } else {
            LogOp::Abort
        };
        node.wal.append(LogRecord::new(txn.xid, op));
        node.clog.set_aborted(txn.xid);
        purge_writes(node, txn.xid);
    }
    txn.state = TxnState::Aborted;
}

/// Server-side termination of a victim transaction on one node (the
/// lock-and-abort engine "terminates in advance" transactions holding
/// conflicting locks, §2.3.3). Dooms the xid so the client sees a
/// migration abort, then aborts and purges its writes on this node.
/// Returns `false` if the transaction had already committed.
pub fn force_abort(node: &NodeStorage, xid: TxnId, reason: &'static str) -> bool {
    node.doom(xid, reason);
    if !node.clog.try_abort(xid) {
        // Already prepared or committed: past the point of no return.
        node.clear_doom(xid);
        return false;
    }
    node.wal.append(LogRecord::new(xid, LogOp::Abort));
    purge_writes(node, xid);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::SyncCommitHook;
    use crate::net::NoNetwork;
    use parking_lot::Mutex;
    use remus_clock::Gts;
    use remus_common::{NodeId, ShardId, SimConfig};
    use remus_storage::{TxnStatus, Value};

    fn node(id: u32) -> Arc<NodeStorage> {
        let n = Arc::new(NodeStorage::new(NodeId(id), SimConfig::instant()));
        n.create_shard(ShardId(id as u64));
        n
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn single_node_commit_assigns_timestamp_and_logs() {
        let n = node(1);
        let gts = Gts::new();
        let mut txn = Txn::begin(&n, gts.start_ts(n.id));
        txn.insert(&n, ShardId(1), 1, val("a")).unwrap();
        let ts = commit_txn(&mut txn, &gts, &NoNetwork).unwrap();
        assert!(ts > txn.start_ts);
        assert_eq!(n.clog.status(txn.xid), TxnStatus::Committed(ts));
        assert_eq!(n.active_count(), 0);
        // WAL: begin + write record + commit record.
        assert_eq!(n.wal.flush_lsn().0, 3);
        assert_eq!(n.wal.get(remus_wal::Lsn(3)).unwrap().op, LogOp::Commit(ts));
    }

    #[test]
    fn read_only_commit_is_trivial() {
        let n = node(1);
        let gts = Gts::new();
        let mut txn = Txn::begin(&n, gts.start_ts(n.id));
        let ts = commit_txn(&mut txn, &gts, &NoNetwork).unwrap();
        assert_eq!(ts, txn.start_ts);
        assert_eq!(n.wal.flush_lsn().0, 0);
    }

    #[test]
    fn distributed_commit_uses_2pc_on_all_participants() {
        let (a, b) = (node(1), node(2));
        let gts = Gts::new();
        let mut txn = Txn::begin(&a, gts.start_ts(a.id));
        txn.insert(&a, ShardId(1), 1, val("x")).unwrap();
        txn.insert(&b, ShardId(2), 2, val("y")).unwrap();
        let ts = commit_txn(&mut txn, &gts, &NoNetwork).unwrap();
        for n in [&a, &b] {
            assert_eq!(n.clog.status(txn.xid), TxnStatus::Committed(ts));
            // Begin + Write + Prepare + CommitPrepared.
            assert_eq!(n.wal.flush_lsn().0, 4);
            assert_eq!(
                n.wal.get(remus_wal::Lsn(4)).unwrap().op,
                LogOp::CommitPrepared(ts)
            );
        }
        // Coordinator node: prepare + commit hops. Participant: prepare +
        // clock observation + commit hops.
        assert_eq!(a.counters.twopc_hops.get(), 2);
        assert_eq!(b.counters.twopc_hops.get(), 3);
    }

    #[test]
    fn single_node_fast_path_counts_no_2pc_hops() {
        let n = node(1);
        let gts = Gts::new();
        let mut txn = Txn::begin(&n, gts.start_ts(n.id));
        txn.insert(&n, ShardId(1), 1, val("a")).unwrap();
        commit_txn(&mut txn, &gts, &NoNetwork).unwrap();
        assert_eq!(n.counters.twopc_hops.get(), 0);
    }

    #[test]
    fn ww_conflict_is_counted_on_the_node() {
        let n = node(1);
        let gts = Gts::new();
        let mut t0 = Txn::begin(&n, gts.start_ts(n.id));
        t0.insert(&n, ShardId(1), 1, val("base")).unwrap();
        commit_txn(&mut t0, &gts, &NoNetwork).unwrap();
        // t2's snapshot predates t1's commit: first committer wins.
        let mut t2 = Txn::begin(&n, gts.start_ts(n.id));
        let mut t1 = Txn::begin(&n, gts.start_ts(n.id));
        t1.update(&n, ShardId(1), 1, val("x")).unwrap();
        commit_txn(&mut t1, &gts, &NoNetwork).unwrap();
        let err = t2.update(&n, ShardId(1), 1, val("y")).unwrap_err();
        assert!(matches!(err, DbError::WwConflict { .. }));
        assert_eq!(n.counters.ww_aborts.get(), 1);
    }

    #[test]
    fn distributed_commit_ts_exceeds_under_dts() {
        use remus_clock::Dts;
        let dts = Dts::new(3, std::time::Duration::from_millis(2));
        let (a, b) = (node(1), node(2));
        let mut txn = Txn::begin(&a, dts.start_ts(a.id));
        txn.insert(&a, ShardId(1), 1, val("x")).unwrap();
        txn.insert(&b, ShardId(2), 2, val("y")).unwrap();
        let ts = commit_txn(&mut txn, &dts, &NoNetwork).unwrap();
        assert!(ts > txn.start_ts);
        // A later transaction on the participant sees a larger snapshot.
        assert!(dts.start_ts(b.id) > ts);
    }

    #[test]
    fn abort_purges_writes_everywhere() {
        let (a, b) = (node(1), node(2));
        let gts = Gts::new();
        let mut txn = Txn::begin(&a, gts.start_ts(a.id));
        txn.insert(&a, ShardId(1), 1, val("x")).unwrap();
        txn.insert(&b, ShardId(2), 2, val("y")).unwrap();
        abort_txn(&mut txn);
        assert_eq!(a.clog.status(txn.xid), TxnStatus::Aborted);
        assert_eq!(b.clog.status(txn.xid), TxnStatus::Aborted);
        assert_eq!(a.table(ShardId(1)).unwrap().stats().versions, 0);
        assert_eq!(b.table(ShardId(2)).unwrap().stats().versions, 0);
        // Idempotent.
        abort_txn(&mut txn);
    }

    #[test]
    fn doomed_txn_aborts_at_commit() {
        let n = node(1);
        let gts = Gts::new();
        let mut txn = Txn::begin(&n, gts.start_ts(n.id));
        txn.insert(&n, ShardId(1), 1, val("a")).unwrap();
        n.doom(txn.xid, "ownership transfer");
        let err = commit_txn(&mut txn, &gts, &NoNetwork).unwrap_err();
        assert!(err.is_migration_induced());
        assert_eq!(n.clog.status(txn.xid), TxnStatus::Aborted);
        assert_eq!(txn.state, TxnState::Aborted);
    }

    #[test]
    fn force_abort_terminates_victim_server_side() {
        let n = node(1);
        let gts = Gts::new();
        let mut txn = Txn::begin(&n, gts.start_ts(n.id));
        txn.insert(&n, ShardId(1), 1, val("a")).unwrap();
        assert!(force_abort(&n, txn.xid, "lock-and-abort"));
        assert_eq!(n.clog.status(txn.xid), TxnStatus::Aborted);
        assert_eq!(n.table(ShardId(1)).unwrap().stats().versions, 0);
        // The client discovers the abort at its next action.
        assert!(txn.read(&n, ShardId(1), 1).is_err());
    }

    #[test]
    fn force_abort_loses_to_commit() {
        let n = node(1);
        let gts = Gts::new();
        let mut txn = Txn::begin(&n, gts.start_ts(n.id));
        txn.insert(&n, ShardId(1), 1, val("a")).unwrap();
        let ts = commit_txn(&mut txn, &gts, &NoNetwork).unwrap();
        assert!(!force_abort(&n, txn.xid, "too late"));
        assert_eq!(n.clog.status(txn.xid), TxnStatus::Committed(ts));
    }

    /// A hook that forces sync mode and records the protocol interaction.
    struct RecordingHook {
        verdict: DbResult<()>,
        log: Mutex<Vec<String>>,
    }

    impl SyncCommitHook for RecordingHook {
        fn begin_commit(&self, _xid: TxnId, shards: &[ShardId]) -> CommitMode {
            self.log.lock().push(format!("begin {shards:?}"));
            CommitMode::Sync
        }
        fn await_validation(&self, _xid: TxnId) -> DbResult<()> {
            self.log.lock().push("validate".into());
            self.verdict.clone()
        }
        fn end_commit(&self, _xid: TxnId, ts: Option<Timestamp>) {
            self.log.lock().push(format!("end {:?}", ts.is_some()));
        }
    }

    #[test]
    fn sync_mode_commit_waits_for_validation() {
        let n = node(1);
        let hook = Arc::new(RecordingHook {
            verdict: Ok(()),
            log: Mutex::new(vec![]),
        });
        n.install_hook(Arc::clone(&hook) as Arc<dyn SyncCommitHook>);
        let gts = Gts::new();
        let mut txn = Txn::begin(&n, gts.start_ts(n.id));
        txn.insert(&n, ShardId(1), 1, val("a")).unwrap();
        let ts = commit_txn(&mut txn, &gts, &NoNetwork).unwrap();
        assert_eq!(n.clog.status(txn.xid), TxnStatus::Committed(ts));
        // Prepare record precedes the commit-prepared record in the WAL.
        assert_eq!(n.wal.get(remus_wal::Lsn(3)).unwrap().op, LogOp::Prepare);
        assert_eq!(
            n.wal.get(remus_wal::Lsn(4)).unwrap().op,
            LogOp::CommitPrepared(ts)
        );
        let log = hook.log.lock();
        assert_eq!(*log, vec!["begin [ShardId(1)]", "validate", "end true"]);
    }

    #[test]
    fn failed_validation_aborts_source_transaction() {
        let n = node(1);
        let fail = DbError::WwConflict {
            txn: TxnId::INVALID,
            other: TxnId::INVALID,
        };
        let hook = Arc::new(RecordingHook {
            verdict: Err(fail.clone()),
            log: Mutex::new(vec![]),
        });
        n.install_hook(Arc::clone(&hook) as Arc<dyn SyncCommitHook>);
        let gts = Gts::new();
        let mut txn = Txn::begin(&n, gts.start_ts(n.id));
        txn.insert(&n, ShardId(1), 1, val("a")).unwrap();
        let err = commit_txn(&mut txn, &gts, &NoNetwork).unwrap_err();
        assert_eq!(err, fail);
        assert_eq!(n.clog.status(txn.xid), TxnStatus::Aborted);
        assert_eq!(n.table(ShardId(1)).unwrap().stats().versions, 0);
        assert_eq!(
            n.wal.get(remus_wal::Lsn(4)).unwrap().op,
            LogOp::RollbackPrepared
        );
        assert_eq!(hook.log.lock().last().unwrap(), "end false");
    }
}
