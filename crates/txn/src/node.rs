//! One elastic node's storage context.
//!
//! [`NodeStorage`] bundles everything a node owns: its CLOG, WAL, the MVCC
//! table of each shard it hosts, xid allocation, the registry of
//! transactions currently active on the node (with their write sets, so
//! migration engines can find and terminate victims), the doom list, the
//! per-shard write gates, and the installed commit hook.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use remus_common::metrics::{Counter, MetricsRegistry};
use remus_common::{DbError, DbResult, NodeId, ShardId, SimConfig, TxnId};
use remus_storage::{Clog, Key, VersionedTable};
use remus_wal::{Lsn, Wal};

use crate::gate::ShardGate;
use crate::hooks::{NoopHook, SyncCommitHook};
use crate::ssi::SsiNode;

/// Book-keeping for a transaction active on this node.
#[derive(Debug, Default, Clone)]
pub struct ActiveTxn {
    /// Every (shard, key) this transaction wrote *on this node*, in order;
    /// used for abort purges and by force-abort.
    pub writes: Vec<(ShardId, Key)>,
    /// WAL position just before this transaction's first record here. A
    /// propagation process starting a migration must read from the oldest
    /// active `begin_lsn` so in-flight transactions' earlier writes are not
    /// missed; WAL truncation must never pass it.
    pub begin_lsn: Lsn,
}

impl ActiveTxn {
    /// Distinct shards written.
    pub fn shards(&self) -> Vec<ShardId> {
        let mut shards: Vec<ShardId> = self.writes.iter().map(|(s, _)| *s).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

/// Pre-resolved counter handles for this node's hot paths. Resolving a
/// series takes a registry map lock; these are resolved once at node
/// construction so the commit/abort/replay paths touch only atomics.
#[derive(Debug, Clone)]
pub struct NodeCounters {
    /// 2PC messages sent to or from this node (prepare, clock observation,
    /// and commit-decision hops).
    pub twopc_hops: Arc<Counter>,
    /// Write-write conflicts raised against this node's tables.
    pub ww_aborts: Arc<Counter>,
    /// Spill-batch reloads charged when update cache queues ship from this
    /// node (source side of a migration).
    pub queue_spills: Arc<Counter>,
    /// Replay jobs applied on this node (destination side of a migration).
    pub replay_jobs: Arc<Counter>,
}

impl NodeCounters {
    fn new(metrics: &MetricsRegistry) -> Self {
        NodeCounters {
            twopc_hops: metrics.counter("txn.2pc_hops"),
            ww_aborts: metrics.counter("txn.ww_aborts"),
            queue_spills: metrics.counter("wal.queue_spills"),
            replay_jobs: metrics.counter("replay.jobs"),
        }
    }
}

/// One node's storage-side state.
pub struct NodeStorage {
    /// This node's id.
    pub id: NodeId,
    /// Transaction status + commit timestamps.
    pub clog: Arc<Clog>,
    /// Write-ahead log.
    pub wal: Arc<Wal>,
    /// Per-shard write gates (lock-and-abort ownership transfer).
    pub gate: ShardGate,
    /// Simulation tunables.
    pub config: SimConfig,
    /// This node's metric scope (label `node=<id>` on a shared registry).
    pub metrics: MetricsRegistry,
    /// Pre-resolved hot-path counters.
    pub counters: NodeCounters,
    /// SSI tracking state — present only under
    /// [`remus_common::IsolationLevel::Serializable`]. `None` keeps the
    /// snapshot-isolation hot path untouched.
    pub ssi: Option<Arc<SsiNode>>,
    tables: RwLock<HashMap<ShardId, Arc<VersionedTable>>>,
    next_seq: AtomicU64,
    active: Mutex<HashMap<TxnId, ActiveTxn>>,
    doomed: Mutex<HashMap<TxnId, &'static str>>,
    hook: RwLock<Arc<dyn SyncCommitHook>>,
    slots: Mutex<HashMap<u64, Lsn>>,
    next_slot: AtomicU64,
}

impl std::fmt::Debug for NodeStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeStorage")
            .field("id", &self.id)
            .field("shards", &self.tables.read().len())
            .finish()
    }
}

impl NodeStorage {
    /// A fresh node with no shards and its own private metrics registry.
    pub fn new(id: NodeId, config: SimConfig) -> Self {
        Self::with_metrics(id, config, &MetricsRegistry::new())
    }

    /// A fresh node scoped as `node=<id>` into a shared (cluster-wide)
    /// metrics registry. The WAL backend follows `config.wal`: in-memory
    /// by default, or a `node-<id>` segment directory under the configured
    /// root (recovering whatever an earlier incarnation left there).
    pub fn with_metrics(id: NodeId, config: SimConfig, registry: &MetricsRegistry) -> Self {
        let metrics = registry.scoped("node", id.raw());
        let counters = NodeCounters::new(&metrics);
        let ssi = (config.isolation == remus_common::IsolationLevel::Serializable)
            .then(|| SsiNode::new(config.hot_path.index_stripes, &metrics));
        let wal = Wal::for_node(&config.wal, id.raw())
            .unwrap_or_else(|e| panic!("opening WAL for node {}: {e}", id.raw()));
        NodeStorage {
            id,
            clog: Arc::new(Clog::new()),
            wal: Arc::new(wal),
            gate: ShardGate::new(),
            config,
            metrics,
            counters,
            ssi,
            tables: RwLock::new(HashMap::new()),
            next_seq: AtomicU64::new(1),
            active: Mutex::new(HashMap::new()),
            doomed: Mutex::new(HashMap::new()),
            hook: RwLock::new(Arc::new(NoopHook)),
            slots: Mutex::new(HashMap::new()),
            next_slot: AtomicU64::new(1),
        }
    }

    /// Allocates a new transaction id originating on this node.
    pub fn alloc_xid(&self) -> TxnId {
        TxnId::new(self.id, self.next_seq.fetch_add(1, Ordering::Relaxed))
    }

    // ---- shard placement ----

    /// Creates an (empty) table for a shard this node now hosts. The key
    /// index gets `config.hot_path.index_stripes` lock stripes.
    pub fn create_shard(&self, shard: ShardId) -> Arc<VersionedTable> {
        let stripes = self.config.hot_path.index_stripes;
        let mut tables = self.tables.write();
        Arc::clone(
            tables
                .entry(shard)
                .or_insert_with(|| Arc::new(VersionedTable::with_stripes(stripes))),
        )
    }

    /// The table for `shard`, if hosted here.
    pub fn table(&self, shard: ShardId) -> Option<Arc<VersionedTable>> {
        self.tables.read().get(&shard).cloned()
    }

    /// The table for `shard`, or a `NotOwner` error.
    pub fn table_or_err(&self, shard: ShardId) -> DbResult<Arc<VersionedTable>> {
        self.table(shard).ok_or(DbError::NotOwner {
            shard,
            node: self.id,
        })
    }

    /// Drops a shard's data (cleanup after it migrated away).
    pub fn drop_shard(&self, shard: ShardId) -> bool {
        self.tables.write().remove(&shard).is_some()
    }

    /// True if this node hosts the shard.
    pub fn hosts(&self, shard: ShardId) -> bool {
        self.tables.read().contains_key(&shard)
    }

    /// Ids of all hosted shards.
    pub fn shards(&self) -> Vec<ShardId> {
        self.tables.read().keys().copied().collect()
    }

    // ---- active-transaction registry ----

    /// Registers a transaction as active on this node (idempotent). The
    /// registration records the current WAL tail as the transaction's
    /// `begin_lsn`, so it must happen before the transaction's first WAL
    /// record.
    pub fn register_active(&self, xid: TxnId) {
        let begin_lsn = self.wal.flush_lsn();
        self.active.lock().entry(xid).or_insert(ActiveTxn {
            writes: Vec::new(),
            begin_lsn,
        });
    }

    /// WAL position from which a new propagation reader must start to cover
    /// every in-flight transaction's records.
    pub fn oldest_active_begin_lsn(&self) -> Lsn {
        self.active
            .lock()
            .values()
            .map(|a| a.begin_lsn)
            .min()
            .unwrap_or_else(|| self.wal.flush_lsn())
    }

    /// Records a write in the active registry.
    pub fn record_write(&self, xid: TxnId, shard: ShardId, key: Key) {
        self.active
            .lock()
            .entry(xid)
            .or_default()
            .writes
            .push((shard, key));
    }

    /// Removes the transaction from the registry, returning its record.
    pub fn deregister(&self, xid: TxnId) -> Option<ActiveTxn> {
        self.active.lock().remove(&xid)
    }

    /// Snapshot of the active transactions and their write sets.
    pub fn active_txns(&self) -> Vec<(TxnId, ActiveTxn)> {
        self.active
            .lock()
            .iter()
            .map(|(x, a)| (*x, a.clone()))
            .collect()
    }

    /// Active transactions that wrote the given shard (lock-and-abort's
    /// conflicting-lock-holder search).
    pub fn writers_of(&self, shard: ShardId) -> Vec<TxnId> {
        self.active
            .lock()
            .iter()
            .filter(|(_, a)| a.writes.iter().any(|(s, _)| *s == shard))
            .map(|(x, _)| *x)
            .collect()
    }

    /// Number of transactions currently active on this node.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    // ---- doom list ----

    /// Marks a transaction for termination: its next operation or commit
    /// fails with a migration abort.
    pub fn doom(&self, xid: TxnId, reason: &'static str) {
        self.doomed.lock().insert(xid, reason);
    }

    /// Fails if the transaction has been doomed.
    pub fn check_doom(&self, xid: TxnId) -> DbResult<()> {
        if let Some(reason) = self.doomed.lock().get(&xid) {
            Err(DbError::MigrationAbort { txn: xid, reason })
        } else {
            Ok(())
        }
    }

    /// Clears the doom entry (after the client observed the abort).
    pub fn clear_doom(&self, xid: TxnId) {
        self.doomed.lock().remove(&xid);
    }

    // ---- replication slots & WAL truncation ----

    /// Registers a replication slot at `from`: WAL truncation will never
    /// pass an undropped slot's position.
    pub fn create_slot(&self, from: Lsn) -> u64 {
        let id = self.next_slot.fetch_add(1, Ordering::Relaxed);
        self.slots.lock().insert(id, from);
        id
    }

    /// Advances a slot after its reader consumed through `upto`.
    pub fn advance_slot(&self, slot: u64, upto: Lsn) {
        if let Some(pos) = self.slots.lock().get_mut(&slot) {
            *pos = (*pos).max(upto);
        }
    }

    /// Drops a slot (its reader finished).
    pub fn drop_slot(&self, slot: u64) {
        self.slots.lock().remove(&slot);
    }

    /// Registers a replication slot at the oldest active transaction's
    /// begin LSN, atomically with respect to [`truncate_wal_safely`]: the
    /// slot is visible to any later truncation, so a reader starting at
    /// the returned LSN never observes a truncated record. Computing the
    /// position and registering the slot separately would leave a window
    /// where concurrent truncation passes the not-yet-registered reader.
    pub fn create_slot_at_oldest_active(&self) -> (u64, Lsn) {
        let mut slots = self.slots.lock();
        let from = self.oldest_active_begin_lsn();
        let id = self.next_slot.fetch_add(1, Ordering::Relaxed);
        slots.insert(id, from);
        (id, from)
    }

    /// Truncates the WAL up to the safe point: the minimum of every active
    /// transaction's `begin_lsn` and every replication slot position.
    /// Returns the position truncated to. The slot table stays locked for
    /// the whole computation so it serializes with
    /// [`create_slot_at_oldest_active`].
    pub fn truncate_wal_safely(&self) -> Lsn {
        let slots = self.slots.lock();
        let mut upto = self.oldest_active_begin_lsn();
        for pos in slots.values() {
            upto = upto.min(*pos);
        }
        self.wal.truncate_until(upto);
        upto
    }

    // ---- crash restart ----

    /// Simulates a process crash of this node: every piece of volatile
    /// state is dropped — MVCC tables, CLOG, active/doomed registries,
    /// replication slots, shard gates, the commit hook — and the WAL is
    /// reopened from its durability backend (recovering everything modulo
    /// a torn tail for the file backend; nothing for the in-memory one).
    ///
    /// Tables for shards in `keep` are not dropped but cleared in place,
    /// preserving their `Arc` identity — the shard-map replica is shared
    /// by reference with the cluster node wrapper and must survive.
    ///
    /// This only rebuilds the empty skeleton; callers follow up with
    /// [`crate::recovery::replay_node_wal`] (and re-seed frozen bootstrap
    /// state that never hits the WAL) to restore contents.
    pub fn crash_reset(&self, keep: &[ShardId]) -> DbResult<()> {
        self.wal.crash_and_reopen()?;
        self.clog.reset();
        {
            let mut tables = self.tables.write();
            tables.retain(|shard, table| {
                if keep.contains(shard) {
                    table.clear();
                    true
                } else {
                    false
                }
            });
        }
        self.active.lock().clear();
        self.doomed.lock().clear();
        self.slots.lock().clear();
        self.gate.reset();
        if let Some(ssi) = &self.ssi {
            ssi.clear();
        }
        self.uninstall_hook();
        Ok(())
    }

    /// Bumps the xid sequence allocator to at least `seq + 1`, so ids
    /// recovered from the WAL are never re-issued (re-beginning a resolved
    /// xid is a CLOG protocol violation).
    pub fn reserve_seq(&self, seq: u64) {
        self.next_seq.fetch_max(seq + 1, Ordering::Relaxed);
    }

    // ---- commit hook ----

    /// Installs a migration commit hook, returning the previous one.
    pub fn install_hook(&self, hook: Arc<dyn SyncCommitHook>) -> Arc<dyn SyncCommitHook> {
        std::mem::replace(&mut *self.hook.write(), hook)
    }

    /// Restores the no-op hook.
    pub fn uninstall_hook(&self) {
        *self.hook.write() = Arc::new(NoopHook);
    }

    /// The currently installed hook.
    pub fn hook(&self) -> Arc<dyn SyncCommitHook> {
        Arc::clone(&self.hook.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeStorage {
        NodeStorage::new(NodeId(1), SimConfig::instant())
    }

    #[test]
    fn xids_are_unique_and_tagged_with_node() {
        let n = node();
        let a = n.alloc_xid();
        let b = n.alloc_xid();
        assert_ne!(a, b);
        assert_eq!(a.origin(), NodeId(1));
    }

    #[test]
    fn shard_placement_lifecycle() {
        let n = node();
        assert!(!n.hosts(ShardId(7)));
        assert!(matches!(
            n.table_or_err(ShardId(7)),
            Err(DbError::NotOwner { .. })
        ));
        n.create_shard(ShardId(7));
        assert!(n.hosts(ShardId(7)));
        assert!(n.table_or_err(ShardId(7)).is_ok());
        assert!(n.drop_shard(ShardId(7)));
        assert!(!n.drop_shard(ShardId(7)));
    }

    #[test]
    fn active_registry_tracks_writes_and_writers() {
        let n = node();
        let x = n.alloc_xid();
        let y = n.alloc_xid();
        n.register_active(x);
        n.register_active(y);
        n.record_write(x, ShardId(1), 10);
        n.record_write(x, ShardId(2), 20);
        n.record_write(y, ShardId(2), 30);
        assert_eq!(n.active_count(), 2);
        let mut w = n.writers_of(ShardId(2));
        w.sort();
        assert_eq!(w, vec![x, y]);
        assert_eq!(n.writers_of(ShardId(1)), vec![x]);
        let info = n.deregister(x).unwrap();
        assert_eq!(info.shards(), vec![ShardId(1), ShardId(2)]);
        assert_eq!(n.active_count(), 1);
    }

    #[test]
    fn doom_list_flags_and_clears() {
        let n = node();
        let x = n.alloc_xid();
        assert!(n.check_doom(x).is_ok());
        n.doom(x, "lock-and-abort ownership transfer");
        let err = n.check_doom(x).unwrap_err();
        assert!(err.is_migration_induced());
        n.clear_doom(x);
        assert!(n.check_doom(x).is_ok());
    }

    #[test]
    fn begin_lsn_tracks_wal_position_at_registration() {
        use remus_wal::{LogOp, LogRecord};
        let n = node();
        // Two records already in the WAL.
        let filler = n.alloc_xid();
        n.wal.append(LogRecord::new(filler, LogOp::Abort));
        n.wal.append(LogRecord::new(filler, LogOp::Abort));
        let x = n.alloc_xid();
        n.register_active(x);
        assert_eq!(n.oldest_active_begin_lsn(), Lsn(2));
        n.deregister(x);
        // With nothing active the safe point is the tail.
        assert_eq!(n.oldest_active_begin_lsn(), n.wal.flush_lsn());
    }

    #[test]
    fn truncation_respects_active_txns_and_slots() {
        use remus_wal::{LogOp, LogRecord};
        let n = node();
        let filler = n.alloc_xid();
        for _ in 0..10 {
            n.wal.append(LogRecord::new(filler, LogOp::Abort));
        }
        let slot = n.create_slot(Lsn(4));
        assert_eq!(n.truncate_wal_safely(), Lsn(4));
        assert_eq!(n.wal.retained(), 6);
        n.advance_slot(slot, Lsn(7));
        assert_eq!(n.truncate_wal_safely(), Lsn(7));
        // Slots never move backwards.
        n.advance_slot(slot, Lsn(5));
        assert_eq!(n.truncate_wal_safely(), Lsn(7));
        n.drop_slot(slot);
        assert_eq!(n.truncate_wal_safely(), Lsn(10));
        assert_eq!(n.wal.retained(), 0);
    }

    #[test]
    fn slot_at_oldest_active_pins_reader_start_against_truncation() {
        use remus_wal::{LogOp, LogRecord};
        let n = node();
        let filler = n.alloc_xid();
        n.wal.append(LogRecord::new(filler, LogOp::Abort));
        n.wal.append(LogRecord::new(filler, LogOp::Abort));
        let x = n.alloc_xid();
        n.register_active(x); // begin_lsn = 2
        for _ in 0..4 {
            n.wal.append(LogRecord::new(filler, LogOp::Abort));
        }
        let (slot, from) = n.create_slot_at_oldest_active();
        assert_eq!(from, Lsn(2));
        // The active transaction finishing no longer unblocks truncation:
        // the slot holds the reader's start position on its own.
        n.deregister(x);
        assert_eq!(n.truncate_wal_safely(), Lsn(2));
        // A reader starting at `from` still sees every record from there.
        let mut reader = n.wal.reader_from(from);
        assert!(reader.try_next().is_some());
        n.drop_slot(slot);
        assert_eq!(n.truncate_wal_safely(), n.wal.flush_lsn());
    }

    #[test]
    fn hook_install_swap() {
        let n = node();
        let prev = n.install_hook(Arc::new(NoopHook));
        // Default hook present.
        let _ = prev;
        n.uninstall_hook();
        assert_eq!(
            n.hook().begin_commit(n.alloc_xid(), &[]),
            crate::hooks::CommitMode::Async
        );
    }
}
