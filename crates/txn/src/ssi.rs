//! Serializable snapshot isolation (SSI) per Ports & Grittner.
//!
//! SI admits exactly one anomaly class: write skew, where two concurrent
//! transactions each read what the other writes and both commit. Cahill's
//! observation is that every such anomaly contains a *dangerous structure*
//! — two consecutive rw-antidependency edges `T1 -rw-> T2 -rw-> T3` in
//! which the middle transaction (the pivot) has both an incoming and an
//! outgoing edge and the transactions are pairwise concurrent. Aborting
//! every would-be pivot at commit is sufficient for serializability, at
//! the cost of false positives (rw edges that never close a cycle).
//!
//! The machinery, following the PostgreSQL design:
//!
//! * Every serializable transaction carries an [`SsiTxn`] handle — shared
//!   by `Arc` across every node the transaction touches, so the in/out
//!   rw-edge flags are global to the transaction, not per-node.
//! * Each node runs an [`SsiNode`]: a striped SIREAD lock table recording
//!   which transactions read which `(shard, key)` (plus shard-granularity
//!   entries for scans), and a write registry recording which transactions
//!   wrote which key. Reads check the write registry for concurrent
//!   writers (edge `reader -rw-> writer`); writes check the SIREAD tables
//!   for concurrent readers.
//! * A transaction *seals* its handle on entering commit
//!   ([`SsiTxn::seal`]) and aborts there if it is a pivot. Edges that
//!   arrive after the seal see a committing/committed pivot and abort the
//!   *live* side instead ([`DbError::SsiAbort`]) — the same division of
//!   labor PostgreSQL uses, and the reason the two checks together leave
//!   no window.
//! * SIREAD entries are *retained past commit*: a committed reader's entry
//!   still produces edges against later overwriting writers until no
//!   concurrent transaction can remain — operationally, until the cluster
//!   safe-ts watermark (the GC watermark from the version-chain pruner)
//!   passes the reader's commit timestamp. [`SsiNode::gc`] drops them
//!   there.
//!
//! Migration interaction (DESIGN.md §14): when a shard moves, its SIREAD
//! and write-registry entries are exported from the source and imported on
//! the destination ([`SsiNode::export_shard`] / [`SsiNode::import_shard`])
//! — handles are `Arc`-shared, so a transferred entry keeps pointing at
//! the same flag state. Engines that abort their way through ownership
//! transfer instead conservatively doom every still-active straddler
//! ([`SsiNode::doom_active_straddlers`]) and transfer only the retained
//! (committing/committed) entries.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use remus_common::metrics::{Counter, Gauge, MetricsRegistry};
use remus_common::{DbError, DbResult, ShardId, Timestamp, TxnId};
use remus_storage::Key;

/// Commit-protocol phase of a serializable transaction, as the SSI
/// machinery sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsiPhase {
    /// Open: edges against it are live, its own commit check is pending.
    Active,
    /// Sealed for commit: it passed its own pivot check, so it *will*
    /// commit — edges arriving now must abort their live side.
    Committing,
    /// Committed at the contained timestamp. SIREAD entries are retained
    /// until the safe-ts watermark passes this timestamp.
    Committed(Timestamp),
    /// Aborted; its entries are dead weight until the next GC sweep.
    Aborted,
    /// Doomed by a migration handover: its commit must fail with a
    /// migration abort (the SSI state for the moved shard was not carried
    /// over on its behalf).
    Doomed(&'static str),
}

/// Outcome of [`SsiTxn::seal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealOutcome {
    /// Sealed; proceed with the commit protocol.
    Sealed,
    /// A migration handover doomed this transaction first.
    Doomed(&'static str),
}

/// Per-transaction SSI state, shared by `Arc` across nodes.
///
/// The rw-edge flags are plain atomics — they only ever go from unset to
/// set, and a stale read of "unset" is resolved by the seal/edge-check
/// ordering described in the module docs.
#[derive(Debug)]
pub struct SsiTxn {
    /// The transaction this handle belongs to.
    pub xid: TxnId,
    /// Its snapshot timestamp (concurrency test: a committed peer with
    /// `cts > start_ts` overlapped this transaction).
    pub start_ts: Timestamp,
    in_rw: AtomicBool,
    out_rw: AtomicBool,
    phase: Mutex<SsiPhase>,
}

impl SsiTxn {
    /// A fresh handle for an active transaction.
    pub fn new(xid: TxnId, start_ts: Timestamp) -> Arc<SsiTxn> {
        Arc::new(SsiTxn {
            xid,
            start_ts,
            in_rw: AtomicBool::new(false),
            out_rw: AtomicBool::new(false),
            phase: Mutex::new(SsiPhase::Active),
        })
    }

    /// Current phase (a copy).
    pub fn phase(&self) -> SsiPhase {
        *self.phase.lock()
    }

    /// True once both an incoming and an outgoing rw-edge have been
    /// recorded — the transaction is the pivot of a dangerous structure.
    pub fn is_pivot(&self) -> bool {
        self.in_rw.load(Ordering::Acquire) && self.out_rw.load(Ordering::Acquire)
    }

    /// Whether the transaction has an incoming rw-edge.
    pub fn has_in_rw(&self) -> bool {
        self.in_rw.load(Ordering::Acquire)
    }

    /// Whether the transaction has an outgoing rw-edge.
    pub fn has_out_rw(&self) -> bool {
        self.out_rw.load(Ordering::Acquire)
    }

    /// Seals the handle on entry to commit progress: after this, edge
    /// checks treat it as committed. Returns the doom reason instead if a
    /// migration handover got there first.
    pub fn seal(&self) -> SealOutcome {
        let mut phase = self.phase.lock();
        match *phase {
            SsiPhase::Doomed(reason) => SealOutcome::Doomed(reason),
            _ => {
                *phase = SsiPhase::Committing;
                SealOutcome::Sealed
            }
        }
    }

    /// Records the commit timestamp (SIREAD retention is keyed on it).
    pub fn mark_committed(&self, cts: Timestamp) {
        *self.phase.lock() = SsiPhase::Committed(cts);
    }

    /// Marks the transaction aborted; its entries stop producing edges.
    pub fn mark_aborted(&self) {
        *self.phase.lock() = SsiPhase::Aborted;
    }

    /// Migration-handover doom: only lands on a still-active transaction
    /// (one already committing keeps its exported entries instead).
    /// Returns whether the doom took effect.
    pub fn doom(&self, reason: &'static str) -> bool {
        let mut phase = self.phase.lock();
        if *phase == SsiPhase::Active {
            *phase = SsiPhase::Doomed(reason);
            true
        } else {
            false
        }
    }

    /// Whether an edge against this transaction is still meaningful from
    /// the viewpoint of a peer with snapshot `peer_start`: it is live
    /// (active/committing/doomed-but-unresolved) or committed after the
    /// peer's snapshot was taken (i.e. the two overlapped).
    fn edge_relevant_to(&self, peer_start: Timestamp) -> bool {
        match self.phase() {
            SsiPhase::Active | SsiPhase::Committing | SsiPhase::Doomed(_) => true,
            SsiPhase::Committed(cts) => cts > peer_start,
            SsiPhase::Aborted => false,
        }
    }

    /// True when the transaction can no longer abort itself at commit:
    /// a pivot in this phase forces the *other* side of the edge to die.
    fn past_self_abort(&self) -> bool {
        matches!(self.phase(), SsiPhase::Committing | SsiPhase::Committed(_))
    }
}

/// One lock stripe: SIREAD entries and write-registry entries for the
/// keys hashed onto it.
#[derive(Debug, Default)]
struct Stripe {
    sireads: HashMap<(ShardId, Key), Vec<Arc<SsiTxn>>>,
    writes: HashMap<(ShardId, Key), Vec<Arc<SsiTxn>>>,
}

/// Per-node SSI state: the striped SIREAD lock table, the shard-granularity
/// SIREAD entries (scans), the write registry, and the node-scoped metrics.
///
/// Striping mirrors the storage index (`hot_path.index_stripes`): point
/// reads and writes lock exactly one stripe, so serializable tracking adds
/// no cross-key contention beyond what the table itself has.
pub struct SsiNode {
    stripes: Vec<Mutex<Stripe>>,
    shard_reads: Mutex<HashMap<ShardId, Vec<Arc<SsiTxn>>>>,
    /// Shards whose SSI state was handed to another node. Serializable
    /// access through this node afterwards would register edges nobody
    /// checks, so it fails as migration-induced instead. (SI-mode traffic
    /// never consults this — dual execution stays abort-free there.)
    departed: Mutex<HashSet<ShardId>>,
    /// Dangerous-structure aborts raised on this node (edge-time and
    /// commit-time).
    pub ssi_aborts: Arc<Counter>,
    /// rw-antidependency flag transitions recorded on this node (each
    /// distinct edge sets at most two flags; re-detections of an already
    /// flagged edge are not counted).
    pub rw_edges: Arc<Counter>,
    /// Live SIREAD entries (key- plus shard-granularity), refreshed by
    /// [`SsiNode::gc`].
    pub siread_entries: Arc<Gauge>,
}

impl std::fmt::Debug for SsiNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsiNode")
            .field("stripes", &self.stripes.len())
            .field("siread_entries", &self.siread_count())
            .finish()
    }
}

impl SsiNode {
    /// A fresh SSI table with `stripes` lock stripes, its counters resolved
    /// from the node's metric scope.
    pub fn new(stripes: usize, metrics: &MetricsRegistry) -> Arc<SsiNode> {
        let stripes = stripes.max(1);
        Arc::new(SsiNode {
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            shard_reads: Mutex::new(HashMap::new()),
            departed: Mutex::new(HashSet::new()),
            ssi_aborts: metrics.counter("txn.ssi_aborts"),
            rw_edges: metrics.counter("txn.rw_edges"),
            siread_entries: metrics.gauge("txn.siread_entries"),
        })
    }

    fn stripe_for(&self, shard: ShardId, key: Key) -> &Mutex<Stripe> {
        let mut h = DefaultHasher::new();
        (shard.0, key).hash(&mut h);
        &self.stripes[(h.finish() as usize) % self.stripes.len()]
    }

    /// Records an rw-antidependency edge `reader -rw-> writer`, counting
    /// each flag that newly transitions.
    fn add_edge(&self, reader: &SsiTxn, writer: &SsiTxn) {
        if !reader.out_rw.swap(true, Ordering::AcqRel) {
            self.rw_edges.inc();
        }
        if !writer.in_rw.swap(true, Ordering::AcqRel) {
            self.rw_edges.inc();
        }
    }

    /// After `live` created an edge whose other endpoint is `other`: if
    /// `other` is now a pivot that already passed its own commit check,
    /// the live transaction must die instead.
    fn check_committed_pivot(&self, live: &SsiTxn, other: &SsiTxn) -> DbResult<()> {
        if other.is_pivot() && other.past_self_abort() {
            self.ssi_aborts.inc();
            return Err(DbError::SsiAbort { txn: live.xid });
        }
        Ok(())
    }

    fn push_unique(list: &mut Vec<Arc<SsiTxn>>, txn: &Arc<SsiTxn>) {
        if !list.iter().any(|t| t.xid == txn.xid) {
            list.push(Arc::clone(txn));
        }
    }

    /// Fails serializable access to a shard whose SSI state has been
    /// handed to another node: an edge registered here after the handover
    /// would never be seen by writers on the new owner.
    fn check_departed(&self, shard: ShardId, xid: TxnId) -> DbResult<()> {
        if self.departed.lock().contains(&shard) {
            return Err(DbError::MigrationAbort {
                txn: xid,
                reason: "serializable access to a shard in SSI handover",
            });
        }
        Ok(())
    }

    /// Registers a point read: takes the SIREAD lock on `(shard, key)` and
    /// raises edges against every concurrent writer of the key.
    pub fn on_read(&self, reader: &Arc<SsiTxn>, shard: ShardId, key: Key) -> DbResult<()> {
        self.check_departed(shard, reader.xid)?;
        let writers: Vec<Arc<SsiTxn>> = {
            let mut stripe = self.stripe_for(shard, key).lock();
            Self::push_unique(stripe.sireads.entry((shard, key)).or_default(), reader);
            stripe
                .writes
                .get(&(shard, key))
                .map(|w| w.to_vec())
                .unwrap_or_default()
        };
        for writer in &writers {
            if writer.xid == reader.xid || !writer.edge_relevant_to(reader.start_ts) {
                continue;
            }
            self.add_edge(reader, writer);
            self.check_committed_pivot(reader, writer)?;
        }
        Ok(())
    }

    /// Registers a shard scan: takes a shard-granularity SIREAD lock and
    /// raises edges against every concurrent writer anywhere in the shard.
    pub fn on_scan(&self, reader: &Arc<SsiTxn>, shard: ShardId) -> DbResult<()> {
        self.check_departed(shard, reader.xid)?;
        Self::push_unique(self.shard_reads.lock().entry(shard).or_default(), reader);
        // One stripe at a time; never two stripe locks at once.
        for stripe in &self.stripes {
            let writers: Vec<Arc<SsiTxn>> = {
                let stripe = stripe.lock();
                stripe
                    .writes
                    .iter()
                    .filter(|((s, _), _)| *s == shard)
                    .flat_map(|(_, w)| w.iter().cloned())
                    .collect()
            };
            for writer in &writers {
                if writer.xid == reader.xid || !writer.edge_relevant_to(reader.start_ts) {
                    continue;
                }
                self.add_edge(reader, writer);
                self.check_committed_pivot(reader, writer)?;
            }
        }
        Ok(())
    }

    /// Registers a write: enters the write registry and raises edges
    /// against every concurrent reader of the key (point SIREAD entries
    /// plus shard-granularity scan entries).
    pub fn on_write(&self, writer: &Arc<SsiTxn>, shard: ShardId, key: Key) -> DbResult<()> {
        self.check_departed(shard, writer.xid)?;
        let mut readers: Vec<Arc<SsiTxn>> = {
            let mut stripe = self.stripe_for(shard, key).lock();
            Self::push_unique(stripe.writes.entry((shard, key)).or_default(), writer);
            stripe
                .sireads
                .get(&(shard, key))
                .map(|r| r.to_vec())
                .unwrap_or_default()
        };
        if let Some(scanners) = self.shard_reads.lock().get(&shard) {
            readers.extend(scanners.iter().cloned());
        }
        for reader in &readers {
            if reader.xid == writer.xid || !reader.edge_relevant_to(writer.start_ts) {
                continue;
            }
            self.add_edge(reader, writer);
            self.check_committed_pivot(writer, reader)?;
        }
        Ok(())
    }

    /// Live SIREAD entry count (key- plus shard-granularity).
    pub fn siread_count(&self) -> u64 {
        let mut n: u64 = self
            .shard_reads
            .lock()
            .values()
            .map(|v| v.len() as u64)
            .sum();
        for stripe in &self.stripes {
            n += stripe
                .lock()
                .sireads
                .values()
                .map(|v| v.len() as u64)
                .sum::<u64>();
        }
        n
    }

    /// Drops entries that can no longer produce a meaningful edge: aborted
    /// transactions, and committed ones whose commit timestamp the cluster
    /// safe-ts watermark has passed (no concurrent transaction remains).
    /// Refreshes the `txn.siread_entries` gauge.
    pub fn gc(&self, watermark: Timestamp) {
        let retire = |t: &Arc<SsiTxn>| match t.phase() {
            SsiPhase::Aborted => false,
            SsiPhase::Committed(cts) => cts >= watermark,
            _ => true,
        };
        for stripe in &self.stripes {
            let mut stripe = stripe.lock();
            stripe.sireads.retain(|_, v| {
                v.retain(retire);
                !v.is_empty()
            });
            stripe.writes.retain(|_, v| {
                v.retain(retire);
                !v.is_empty()
            });
        }
        self.shard_reads.lock().retain(|_, v| {
            v.retain(retire);
            !v.is_empty()
        });
        self.siread_entries.set(self.siread_count());
    }

    // ---- migration handover ----

    /// Copies every SSI entry touching `shard` into a portable export.
    /// The source keeps its copies — under dual execution the shard is
    /// briefly live on both sides, and the `Arc`-shared handles keep the
    /// flag state unified regardless.
    pub fn export_shard(&self, shard: ShardId) -> SsiShardExport {
        let mut export = SsiShardExport {
            shard,
            key_sireads: Vec::new(),
            key_writes: Vec::new(),
            shard_sireads: Vec::new(),
        };
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            for ((s, key), v) in &stripe.sireads {
                if *s == shard {
                    export.key_sireads.push((*key, v.clone()));
                }
            }
            for ((s, key), v) in &stripe.writes {
                if *s == shard {
                    export.key_writes.push((*key, v.clone()));
                }
            }
        }
        if let Some(v) = self.shard_reads.lock().get(&shard) {
            export.shard_sireads = v.clone();
        }
        export
    }

    /// Marks `shard` as handed over: subsequent serializable access
    /// through this node fails as migration-induced. Called on the source
    /// right after [`SsiNode::export_shard`].
    pub fn mark_departed(&self, shard: ShardId) {
        self.departed.lock().insert(shard);
    }

    /// Merges an export from the migration source (idempotent; entries
    /// already present for a transaction are not duplicated). Also clears
    /// any departed marking for the shard — the node is its owner now
    /// (back-migrations reuse nodes).
    pub fn import_shard(&self, export: &SsiShardExport) {
        self.departed.lock().remove(&export.shard);
        for (key, txns) in &export.key_sireads {
            let mut stripe = self.stripe_for(export.shard, *key).lock();
            let list = stripe.sireads.entry((export.shard, *key)).or_default();
            for t in txns {
                Self::push_unique(list, t);
            }
        }
        for (key, txns) in &export.key_writes {
            let mut stripe = self.stripe_for(export.shard, *key).lock();
            let list = stripe.writes.entry((export.shard, *key)).or_default();
            for t in txns {
                Self::push_unique(list, t);
            }
        }
        if !export.shard_sireads.is_empty() {
            let mut shard_reads = self.shard_reads.lock();
            let list = shard_reads.entry(export.shard).or_default();
            for t in &export.shard_sireads {
                Self::push_unique(list, t);
            }
        }
    }

    /// Conservative handover: dooms every still-active transaction holding
    /// an SSI entry on `shard` (readers included — a straddling reader's
    /// rw-edges cannot be tracked once the shard's versions move away).
    /// Returns the doomed xids so the engine can also doom them in the
    /// node's registry for in-flight statement aborts.
    pub fn doom_active_straddlers(&self, shard: ShardId, reason: &'static str) -> Vec<TxnId> {
        let mut holders: Vec<Arc<SsiTxn>> = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            for ((s, _), v) in stripe.sireads.iter().chain(stripe.writes.iter()) {
                if *s == shard {
                    for t in v {
                        Self::push_unique(&mut holders, t);
                    }
                }
            }
        }
        if let Some(v) = self.shard_reads.lock().get(&shard) {
            for t in v {
                Self::push_unique(&mut holders, t);
            }
        }
        let mut doomed = Vec::new();
        for t in holders {
            if t.doom(reason) {
                self.ssi_aborts.inc();
                doomed.push(t.xid);
            }
        }
        doomed
    }

    /// Drops every entry (crash restart: SSI state is volatile).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            let mut stripe = stripe.lock();
            stripe.sireads.clear();
            stripe.writes.clear();
        }
        self.shard_reads.lock().clear();
        self.departed.lock().clear();
        self.siread_entries.set(0);
    }
}

/// Portable copy of one shard's SSI entries, carried with the migration
/// gate plan from source to destination.
#[derive(Debug)]
pub struct SsiShardExport {
    /// The shard being handed over.
    pub shard: ShardId,
    key_sireads: Vec<(Key, Vec<Arc<SsiTxn>>)>,
    key_writes: Vec<(Key, Vec<Arc<SsiTxn>>)>,
    shard_sireads: Vec<Arc<SsiTxn>>,
}

impl SsiShardExport {
    /// Total entries carried (diagnostics).
    pub fn len(&self) -> usize {
        self.key_sireads.iter().map(|(_, v)| v.len()).sum::<usize>()
            + self.key_writes.iter().map(|(_, v)| v.len()).sum::<usize>()
            + self.shard_sireads.len()
    }

    /// True when nothing is carried.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_common::NodeId;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new()
    }

    fn txn(seq: u64, start: u64) -> Arc<SsiTxn> {
        SsiTxn::new(TxnId::new(NodeId(1), seq), Timestamp(start))
    }

    const S: ShardId = ShardId(3);

    #[test]
    fn read_then_concurrent_write_raises_one_edge() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let r = txn(1, 10);
        let w = txn(2, 10);
        ssi.on_read(&r, S, 7).unwrap();
        ssi.on_write(&w, S, 7).unwrap();
        assert!(r.has_out_rw());
        assert!(w.has_in_rw());
        assert!(!r.has_in_rw());
        assert!(!w.has_out_rw());
        assert_eq!(ssi.rw_edges.get(), 2); // two flag transitions
                                           // Re-detection of the same edge counts nothing new.
        ssi.on_write(&w, S, 7).unwrap();
        assert_eq!(ssi.rw_edges.get(), 2);
    }

    #[test]
    fn own_writes_raise_no_edges() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let t = txn(1, 10);
        ssi.on_read(&t, S, 7).unwrap();
        ssi.on_write(&t, S, 7).unwrap();
        assert!(!t.has_in_rw() && !t.has_out_rw());
        assert_eq!(ssi.rw_edges.get(), 0);
    }

    #[test]
    fn pivot_aborts_live_side_once_committed() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        // Pivot P reads key A (out-edge pending) and writes key B.
        let p = txn(1, 10);
        ssi.on_read(&p, S, 1).unwrap();
        ssi.on_write(&p, S, 2).unwrap();
        // W overwrites A while P is active: edge P -> W, P.out set.
        let w = txn(2, 10);
        ssi.on_write(&w, S, 1).unwrap();
        assert!(p.has_out_rw());
        // P seals and commits (its own check would have passed if run
        // before R's edge below — model the post-seal race).
        assert_eq!(p.seal(), SealOutcome::Sealed);
        assert!(!p.is_pivot());
        p.mark_committed(Timestamp(20));
        // R reads B after P committed, from a snapshot concurrent with P:
        // edge R -> P completes the dangerous structure with a committed
        // pivot, so the live reader dies.
        let r = txn(3, 10);
        let err = ssi.on_read(&r, S, 2).unwrap_err();
        assert!(matches!(err, DbError::SsiAbort { txn } if txn == r.xid));
        assert_eq!(ssi.ssi_aborts.get(), 1);
    }

    #[test]
    fn committed_writer_before_snapshot_is_not_concurrent() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let w = txn(1, 5);
        ssi.on_write(&w, S, 7).unwrap();
        w.mark_committed(Timestamp(8));
        // Reader's snapshot (10) already covers the commit (8): no edge.
        let r = txn(2, 10);
        ssi.on_read(&r, S, 7).unwrap();
        assert!(!r.has_out_rw());
        assert!(!w.has_in_rw());
    }

    #[test]
    fn aborted_peer_raises_no_edges() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let w = txn(1, 10);
        ssi.on_write(&w, S, 7).unwrap();
        w.mark_aborted();
        let r = txn(2, 10);
        ssi.on_read(&r, S, 7).unwrap();
        assert!(!r.has_out_rw());
    }

    #[test]
    fn scan_locks_shard_against_later_point_writes() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let r = txn(1, 10);
        ssi.on_scan(&r, S).unwrap();
        let w = txn(2, 10);
        ssi.on_write(&w, S, 999).unwrap();
        assert!(r.has_out_rw());
        assert!(w.has_in_rw());
        // A write in a different shard is invisible to the scan lock.
        let w2 = txn(3, 10);
        ssi.on_write(&w2, ShardId(4), 999).unwrap();
        assert!(!w2.has_in_rw());
    }

    #[test]
    fn scan_sees_existing_writers_in_shard() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let w = txn(1, 10);
        ssi.on_write(&w, S, 42).unwrap();
        let r = txn(2, 10);
        ssi.on_scan(&r, S).unwrap();
        assert!(r.has_out_rw());
        assert!(w.has_in_rw());
    }

    #[test]
    fn gc_retains_until_watermark_then_drops() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let r = txn(1, 10);
        ssi.on_read(&r, S, 7).unwrap();
        r.mark_committed(Timestamp(20));
        // Watermark below the commit: the entry must survive (a concurrent
        // transaction could still overwrite key 7 and owe r an edge).
        ssi.gc(Timestamp(15));
        assert_eq!(ssi.siread_count(), 1);
        assert_eq!(ssi.siread_entries.get(), 1);
        // Watermark past the commit: dropped, not leaked.
        ssi.gc(Timestamp(21));
        assert_eq!(ssi.siread_count(), 0);
        assert_eq!(ssi.siread_entries.get(), 0);
    }

    #[test]
    fn gc_drops_aborted_immediately_and_keeps_active() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let a = txn(1, 10);
        let b = txn(2, 10);
        ssi.on_read(&a, S, 1).unwrap();
        ssi.on_read(&b, S, 2).unwrap();
        a.mark_aborted();
        ssi.gc(Timestamp(1000));
        assert_eq!(
            ssi.siread_count(),
            1,
            "active entry must survive any watermark"
        );
    }

    #[test]
    fn seal_wins_over_late_doom_and_doom_wins_over_late_seal() {
        let t = txn(1, 10);
        assert_eq!(t.seal(), SealOutcome::Sealed);
        assert!(
            !t.doom("handover"),
            "doom must not land on a committing txn"
        );
        let u = txn(2, 10);
        assert!(u.doom("handover"));
        assert_eq!(u.seal(), SealOutcome::Doomed("handover"));
    }

    #[test]
    fn export_import_carries_entries_and_shares_flag_state() {
        let m = registry();
        let source = SsiNode::new(4, &m);
        let dest = SsiNode::new(8, &m); // stripe counts may differ
        let r = txn(1, 10);
        source.on_read(&r, S, 7).unwrap();
        source.on_scan(&r, S).unwrap();
        let export = source.export_shard(S);
        assert_eq!(export.len(), 2);
        dest.import_shard(&export);
        // Import is idempotent.
        dest.import_shard(&export);
        assert_eq!(dest.siread_count(), 2);
        // A write on the destination now raises the edge on the shared
        // handle.
        let w = txn(2, 10);
        dest.on_write(&w, S, 7).unwrap();
        assert!(r.has_out_rw());
    }

    #[test]
    fn departed_shard_rejects_ssi_access_until_reimported() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let t = txn(1, 10);
        ssi.on_read(&t, S, 7).unwrap();
        let export = ssi.export_shard(S);
        ssi.mark_departed(S);
        let r = txn(2, 10);
        let err = ssi.on_read(&r, S, 7).unwrap_err();
        assert!(err.is_migration_induced(), "got {err:?}");
        assert!(ssi.on_write(&r, S, 8).is_err());
        assert!(ssi.on_scan(&r, S).is_err());
        // Other shards are untouched.
        ssi.on_read(&r, ShardId(9), 7).unwrap();
        // A back-migration imports the shard again and access resumes.
        ssi.import_shard(&export);
        ssi.on_read(&r, S, 7).unwrap();
    }

    #[test]
    fn doom_straddlers_hits_active_spares_committed() {
        let m = registry();
        let ssi = SsiNode::new(4, &m);
        let active = txn(1, 10);
        let committed = txn(2, 10);
        ssi.on_read(&active, S, 1).unwrap();
        ssi.on_read(&committed, S, 2).unwrap();
        committed.mark_committed(Timestamp(20));
        let doomed = ssi.doom_active_straddlers(S, "handover");
        assert_eq!(doomed, vec![active.xid]);
        assert!(matches!(active.phase(), SsiPhase::Doomed(_)));
        assert!(matches!(committed.phase(), SsiPhase::Committed(_)));
    }

    // ---- SIREAD-table concurrency suite (nightly TSan target) ----

    #[test]
    fn concurrent_readers_writers_and_gc_race_cleanly() {
        let m = registry();
        let ssi = SsiNode::new(8, &m);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ssi = Arc::clone(&ssi);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let h = SsiTxn::new(TxnId::new(NodeId(1), t * 1000 + i + 1), Timestamp(i));
                        let key = i % 16;
                        let _ = ssi.on_read(&h, S, key);
                        let _ = ssi.on_write(&h, S, key + 1);
                        if i % 3 == 0 {
                            let _ = ssi.on_scan(&h, S);
                        }
                        if i % 2 == 0 {
                            h.mark_committed(Timestamp(i + 1));
                        } else {
                            h.mark_aborted();
                        }
                    }
                })
            })
            .collect();
        let gc = {
            let ssi = Arc::clone(&ssi);
            std::thread::spawn(move || {
                for w in 0..100u64 {
                    ssi.gc(Timestamp(w * 2));
                    std::thread::yield_now();
                }
            })
        };
        for t in threads {
            t.join().unwrap();
        }
        gc.join().unwrap();
        // Everything committed/aborted, so a max-watermark sweep drains
        // the table completely — nothing leaked.
        ssi.gc(Timestamp(u64::MAX));
        assert_eq!(ssi.siread_count(), 0);
    }

    #[test]
    fn concurrent_export_import_during_traffic() {
        let m = registry();
        let source = SsiNode::new(8, &m);
        let dest = SsiNode::new(8, &m);
        let writers: Vec<_> = (0..3)
            .map(|t| {
                let source = Arc::clone(&source);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let h = SsiTxn::new(TxnId::new(NodeId(1), t * 1000 + i + 1), Timestamp(i));
                        let _ = ssi_round(&source, &h, i % 8);
                        h.mark_committed(Timestamp(i + 1));
                    }
                })
            })
            .collect();
        for _ in 0..20 {
            let export = source.export_shard(S);
            dest.import_shard(&export);
        }
        for w in writers {
            w.join().unwrap();
        }
        let export = source.export_shard(S);
        dest.import_shard(&export);
        assert!(dest.siread_count() > 0);
    }

    fn ssi_round(ssi: &SsiNode, h: &Arc<SsiTxn>, key: Key) -> DbResult<()> {
        ssi.on_read(h, S, key)?;
        ssi.on_write(h, S, key)
    }
}
