#![warn(missing_docs)]

//! Benchmark workloads and the closed-loop driver (paper §4.3).
//!
//! * [`ycsb`] — YCSB: 50% reads / 50% updates over a keyspace with uniform
//!   or Zipfian access, multi-statement interactive transactions (the
//!   write set is unknown before execution), plus the high-contention
//!   hot-shard variant of §4.8.
//! * [`tpcc`] — a compact TPC-C: 480 warehouses, eight tables sharded by
//!   warehouse (one warehouse per shard, collocated across tables),
//!   new-order / payment / order-status mix with ~10% distributed
//!   transactions.
//! * [`hybrid`] — hybrid workload A's batch-ingestion client (monotonic
//!   keys, 2PC commit, repeatable retry) and hybrid workload B's
//!   analytical duplicate-primary-key check used to verify database
//!   consistency during migration.
//! * [`engine`] — the open-loop workload engine: a fixed worker pool
//!   multiplexing hundreds of logical clients over seeded arrival
//!   schedules (fixed-rate / Poisson), bounded per-worker queues with
//!   drop/park accounting, and coordinated-omission-safe latency.
//! * [`driver`] — the legacy driver API as a facade over the engine, with
//!   per-second throughput timelines, abort classification, and
//!   before/during-migration latency buckets (Table 3).

pub mod driver;
pub mod engine;
pub mod hybrid;
pub mod tpcc;
pub mod ycsb;

pub use driver::{Driver, RunMetrics, Workload};
pub use engine::{
    arrival_schedule, Admission, ArrivalGen, BoundedQueue, EngineConfig, EngineReport,
    OpenLoopEngine, Pacing,
};
pub use hybrid::{AnalyticalClient, BatchIngest, BatchIngestReport};
pub use tpcc::{Tpcc, TpccConfig};
pub use ycsb::{HotPhase, HotSpot, HotspotShift, KeyDistribution, Ycsb, YcsbConfig, Zipfian};
