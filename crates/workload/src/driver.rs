//! The benchmark driver facade over the open-loop engine.
//!
//! [`Driver`] keeps the old thread-per-client API (`start`,
//! `start_with_think`, `run_for`, `stop`) but is now a thin wrapper over
//! [`crate::engine::OpenLoopEngine`]. Two behavioral fixes ride along:
//!
//! * **Coordinated omission**: with a think time, clients used to sleep
//!   `think` *after* each completion and measure service time from the
//!   post-sleep `Instant::now()` — a stalled server paused the load and
//!   the queueing delay never reached p99. `think > 0` now means a
//!   fixed-rate *open-loop* schedule of period `think`, with latency
//!   recorded from the intended arrival, so a stall inflates every sample
//!   that was due while it lasted.
//! * **Striped recording**: [`RunMetrics`] shards its timeline, latency,
//!   and abort counters into cache-padded stripes merged at read time, so
//!   hundreds of recorders don't serialize on one mutex.
//!
//! `think == 0` keeps true closed-loop semantics (latency = service time):
//! with no schedule there is no intended arrival to measure against.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use remus_cluster::{Cluster, SessionTxn};
use remus_common::metrics::{
    EventMarks, StripedAbortCounters, StripedLatencyStat, StripedTimeline,
};
use remus_common::{ClientId, DbError, DbResult};

use crate::engine::{EngineConfig, EngineReport, OpenLoopEngine, Pacing};

/// A benchmark workload: one transaction per arrival.
pub trait Workload: Send + Sync + 'static {
    /// Executes one transaction on the session. Returning `Err` counts as
    /// an abort of the class carried by the error; the engine immediately
    /// proceeds to the next arrival (the standard retry loop).
    fn run_once(
        &self,
        client: ClientId,
        txn: &mut SessionTxn<'_>,
        rng: &mut SmallRng,
    ) -> DbResult<()>;
}

impl<F> Workload for F
where
    F: Fn(ClientId, &mut SessionTxn<'_>, &mut SmallRng) -> DbResult<()> + Send + Sync + 'static,
{
    fn run_once(
        &self,
        client: ClientId,
        txn: &mut SessionTxn<'_>,
        rng: &mut SmallRng,
    ) -> DbResult<()> {
        self(client, txn, rng)
    }
}

/// Metrics shared between the engine's workers and the harness.
///
/// All hot recorders are striped: writes land on the calling thread's
/// cache-padded stripe, reads merge.
#[derive(Debug)]
pub struct RunMetrics {
    /// Committed transactions per second.
    pub timeline: StripedTimeline,
    /// Named event overlays (migration start/end etc.).
    pub marks: EventMarks,
    /// Commit/abort classification.
    pub counters: StripedAbortCounters,
    /// Commit latency outside migrations.
    pub latency_normal: StripedLatencyStat,
    /// Commit latency while a migration is marked active.
    pub latency_migration: StripedLatencyStat,
    migration_active: AtomicBool,
}

impl RunMetrics {
    /// Fresh metrics anchored now.
    pub fn new() -> Self {
        RunMetrics {
            timeline: StripedTimeline::per_second(),
            marks: EventMarks::new(),
            counters: StripedAbortCounters::new(),
            latency_normal: StripedLatencyStat::new(),
            latency_migration: StripedLatencyStat::new(),
            migration_active: AtomicBool::new(false),
        }
    }

    /// Flags the migration window for latency bucketing and records a mark.
    pub fn set_migration_active(&self, active: bool) {
        self.migration_active.store(active, Ordering::SeqCst);
        self.marks.mark(
            if active {
                "migration start"
            } else {
                "migration end"
            },
            &self.timeline,
        );
    }

    /// True while a migration is marked active.
    pub fn migration_active(&self) -> bool {
        self.migration_active.load(Ordering::SeqCst)
    }

    /// Average latency increase of the migration bucket over the normal
    /// bucket (Table 3); zero when either bucket is empty.
    pub fn latency_increase(&self) -> Duration {
        if self.latency_normal.count() == 0 || self.latency_migration.count() == 0 {
            return Duration::ZERO;
        }
        self.latency_migration
            .mean()
            .saturating_sub(self.latency_normal.mean())
    }

    /// Records one transaction outcome with an already-measured latency —
    /// for open-loop callers this is intended-arrival → completion (the
    /// coordinated-omission-safe definition), for closed-loop callers it
    /// is service time.
    pub fn record_outcome_with_latency(&self, latency: Duration, result: &DbResult<()>) {
        match result {
            Ok(()) => {
                self.timeline.record();
                self.counters.commit();
                if self.migration_active() {
                    self.latency_migration.record(latency);
                } else {
                    self.latency_normal.record(latency);
                }
            }
            Err(e) if e.is_migration_induced() => self.counters.migration_abort(),
            Err(DbError::WwConflict { .. }) => self.counters.ww_abort(),
            Err(_) => self.counters.other_abort(),
        }
    }

    /// Service-time convenience: records the outcome with latency measured
    /// from `started` to now.
    pub fn record_outcome(&self, started: Instant, result: &DbResult<()>) {
        self.record_outcome_with_latency(started.elapsed(), result);
    }
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Run seed of the facade driver: the old driver's client-rng constant, so
/// workload key streams stay in the same family across the rewrite.
const DRIVER_SEED: u64 = 0x5EED;

/// A running client fleet behind the legacy driver API.
pub struct Driver {
    /// Shared metrics.
    pub metrics: Arc<RunMetrics>,
    engine: Option<OpenLoopEngine>,
}

impl Driver {
    /// Starts `clients` closed-loop clients running `workload` with no
    /// think time (the paper's OLTP-Bench setting).
    pub fn start(cluster: &Arc<Cluster>, clients: usize, workload: Arc<dyn Workload>) -> Driver {
        Self::start_with_think(cluster, clients, Duration::ZERO, workload)
    }

    /// Starts clients paced by `think`.
    ///
    /// `think > 0` is an *open-loop fixed-rate* schedule with period
    /// `think` — latency is recorded against each intended arrival, so
    /// server stalls inflate p99 instead of pausing the load (the
    /// coordinated-omission fix). A bounded per-client backlog (64
    /// arrivals) sheds load past that, keeping catch-up bursts finite on a
    /// small host. `think == 0` is a true closed loop measuring service
    /// time.
    pub fn start_with_think(
        cluster: &Arc<Cluster>,
        clients: usize,
        think: Duration,
        workload: Arc<dyn Workload>,
    ) -> Driver {
        let pacing = if think.is_zero() {
            Pacing::ClosedLoop {
                think: Duration::ZERO,
            }
        } else {
            Pacing::FixedRate { period: think }
        };
        let config = EngineConfig {
            clients,
            workers: clients,
            pacing,
            seed: DRIVER_SEED,
            queue_bound: 64,
            horizon: None,
            max_txns_per_client: None,
        };
        Self::from_engine(OpenLoopEngine::start(cluster, config, workload))
    }

    /// Wraps an already-started engine in the legacy driver API.
    pub fn from_engine(engine: OpenLoopEngine) -> Driver {
        Driver {
            metrics: Arc::clone(&engine.metrics),
            engine: Some(engine),
        }
    }

    /// Signals the clients to stop and waits for them.
    pub fn stop(mut self) -> Arc<RunMetrics> {
        self.stop_with_report().metrics
    }

    /// Stops the fleet and returns the full engine report (offered /
    /// dropped / park accounting on top of the shared metrics).
    pub fn stop_with_report(&mut self) -> EngineReport {
        self.engine.take().expect("driver already stopped").stop()
    }

    /// Lets the clients run for `d`.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_cluster::{ClusterBuilder, Session};
    use remus_common::{NodeId, TableId};
    use remus_storage::Value;

    #[test]
    fn driver_runs_and_counts_commits() {
        let cluster = ClusterBuilder::new(2).build();
        let layout = cluster.create_table(TableId(1), 0, 4, |i| NodeId(i % 2));
        // Preload.
        let session = Session::connect(&cluster, NodeId(0));
        for k in 0..50 {
            session
                .run(|t| t.insert(&layout, k, Value::copy_from_slice(b"v")))
                .unwrap();
        }
        let workload = move |_c: ClientId, txn: &mut SessionTxn<'_>, rng: &mut SmallRng| {
            use rand::Rng;
            let key = rng.gen_range(0..50u64);
            txn.read(&layout, key)?;
            Ok(())
        };
        let driver = Driver::start(&cluster, 4, Arc::new(workload));
        driver.run_for(Duration::from_millis(200));
        let metrics = driver.stop();
        assert!(metrics.counters.commits() > 0);
        assert_eq!(metrics.counters.migration_aborts(), 0);
        assert!(!metrics.timeline.buckets().is_empty());
        assert!(metrics.latency_normal.count() > 0);
    }

    #[test]
    fn driver_with_think_offers_open_loop_load() {
        let cluster = ClusterBuilder::new(1).build();
        let layout = cluster.create_table(TableId(1), 0, 2, |_| NodeId(0));
        let session = Session::connect(&cluster, NodeId(0));
        session
            .run(|t| t.insert(&layout, 1, Value::copy_from_slice(b"v")))
            .unwrap();
        let workload = move |_c: ClientId, txn: &mut SessionTxn<'_>, _r: &mut SmallRng| {
            txn.read(&layout, 1)?;
            Ok(())
        };
        let mut driver =
            Driver::start_with_think(&cluster, 2, Duration::from_millis(2), Arc::new(workload));
        driver.run_for(Duration::from_millis(300));
        let report = driver.stop_with_report();
        assert!(report.offered > 0);
        assert_eq!(
            report.offered,
            report.executed + report.dropped,
            "every arrival is executed or shed"
        );
        assert!(report.metrics.counters.commits() > 0);
    }

    #[test]
    fn latency_buckets_switch_with_migration_flag() {
        let metrics = RunMetrics::new();
        metrics.record_outcome(Instant::now(), &Ok(()));
        assert_eq!(metrics.latency_normal.count(), 1);
        metrics.set_migration_active(true);
        metrics.record_outcome(Instant::now(), &Ok(()));
        assert_eq!(metrics.latency_migration.count(), 1);
        metrics.set_migration_active(false);
        assert_eq!(metrics.marks.all().len(), 2);
    }

    #[test]
    fn abort_classification() {
        use remus_common::{ShardId, TxnId};
        let metrics = RunMetrics::new();
        metrics.record_outcome(
            Instant::now(),
            &Err(DbError::WwConflict {
                txn: TxnId(1),
                other: TxnId(2),
            }),
        );
        metrics.record_outcome(
            Instant::now(),
            &Err(DbError::NotOwner {
                shard: ShardId(1),
                node: NodeId(0),
            }),
        );
        metrics.record_outcome(Instant::now(), &Err(DbError::KeyNotFound));
        assert_eq!(metrics.counters.ww_aborts(), 1);
        assert_eq!(metrics.counters.migration_aborts(), 1);
        assert_eq!(metrics.counters.other_aborts(), 1);
    }

    #[test]
    fn latency_increase_requires_both_buckets() {
        let metrics = RunMetrics::new();
        assert_eq!(metrics.latency_increase(), Duration::ZERO);
        metrics.latency_normal.record(Duration::from_millis(1));
        metrics.latency_migration.record(Duration::from_millis(4));
        assert!(metrics.latency_increase() >= Duration::from_millis(2));
    }

    /// The coordinated-omission regression: a single long stall must
    /// inflate the tail of the *recorded* distribution, because every
    /// arrival that was due during the stall is measured from its intended
    /// time. The old service-time driver recorded exactly one slow sample
    /// here and the tail stayed flat.
    #[test]
    fn stalled_server_inflates_co_safe_p99() {
        use std::sync::atomic::AtomicU64;

        let cluster = ClusterBuilder::new(1).build();
        let layout = cluster.create_table(TableId(1), 0, 2, |_| NodeId(0));
        let session = Session::connect(&cluster, NodeId(0));
        session
            .run(|t| t.insert(&layout, 1, Value::copy_from_slice(b"v")))
            .unwrap();
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let workload = move |_c: ClientId, txn: &mut SessionTxn<'_>, _r: &mut SmallRng| {
            // One 200 ms stall early in the run, then fast.
            if calls2.fetch_add(1, Ordering::Relaxed) == 5 {
                std::thread::sleep(Duration::from_millis(200));
            }
            txn.read(&layout, 1)?;
            Ok(())
        };
        // Open-loop 2 ms schedule: ~100 arrivals fall due during the stall.
        let mut driver =
            Driver::start_with_think(&cluster, 1, Duration::from_millis(2), Arc::new(workload));
        driver.run_for(Duration::from_millis(700));
        let report = driver.stop_with_report();
        let lat = &report.metrics.latency_normal;
        assert!(
            lat.percentile(0.99) >= Duration::from_millis(50),
            "stall must surface in p99, got {:?}",
            lat.percentile(0.99)
        );
        // The distinguishing signal vs service-time recording: *many*
        // samples carry the stall, not just the one stalled transaction.
        let slow: u64 = lat
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i >= 14) // buckets >= ~16.4 ms
            .map(|(_, &n)| n)
            .sum();
        assert!(slow >= 8, "expected many inflated samples, got {slow}");
    }
}
