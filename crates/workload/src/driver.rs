//! The closed-loop benchmark driver.
//!
//! Spawns one thread per client, each bound to a session on a round-robin
//! coordinator node (clients "can submit requests to any one of the
//! elastic nodes", §2.1). Each client repeatedly executes the workload's
//! transaction with no think time (as in the paper's OLTP-Bench setup) and
//! records commits into a per-second [`Timeline`], classifies aborts, and
//! buckets latency into *normal* vs *during-migration* samples so the
//! harness can compute Table 3's average latency increase.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remus_cluster::{Cluster, Session, SessionTxn};
use remus_common::metrics::{AbortCounters, EventMarks, LatencyStat, Timeline};
use remus_common::{ClientId, DbError, DbResult, NodeId};

/// A benchmark workload: one closed-loop transaction at a time.
pub trait Workload: Send + Sync + 'static {
    /// Executes one transaction on the session. Returning `Err` counts as
    /// an abort of the class carried by the error; the driver immediately
    /// issues the next transaction (the standard retry loop).
    fn run_once(
        &self,
        client: ClientId,
        txn: &mut SessionTxn<'_>,
        rng: &mut SmallRng,
    ) -> DbResult<()>;
}

impl<F> Workload for F
where
    F: Fn(ClientId, &mut SessionTxn<'_>, &mut SmallRng) -> DbResult<()> + Send + Sync + 'static,
{
    fn run_once(
        &self,
        client: ClientId,
        txn: &mut SessionTxn<'_>,
        rng: &mut SmallRng,
    ) -> DbResult<()> {
        self(client, txn, rng)
    }
}

/// Metrics shared between the driver's clients and the harness.
#[derive(Debug)]
pub struct RunMetrics {
    /// Committed transactions per second.
    pub timeline: Timeline,
    /// Named event overlays (migration start/end etc.).
    pub marks: EventMarks,
    /// Commit/abort classification.
    pub counters: AbortCounters,
    /// Commit latency outside migrations.
    pub latency_normal: LatencyStat,
    /// Commit latency while a migration is marked active.
    pub latency_migration: LatencyStat,
    migration_active: AtomicBool,
}

impl RunMetrics {
    /// Fresh metrics anchored now.
    pub fn new() -> Self {
        RunMetrics {
            timeline: Timeline::per_second(),
            marks: EventMarks::new(),
            counters: AbortCounters::new(),
            latency_normal: LatencyStat::new(),
            latency_migration: LatencyStat::new(),
            migration_active: AtomicBool::new(false),
        }
    }

    /// Flags the migration window for latency bucketing and records a mark.
    pub fn set_migration_active(&self, active: bool) {
        self.migration_active.store(active, Ordering::SeqCst);
        self.marks.mark(
            if active {
                "migration start"
            } else {
                "migration end"
            },
            &self.timeline,
        );
    }

    /// True while a migration is marked active.
    pub fn migration_active(&self) -> bool {
        self.migration_active.load(Ordering::SeqCst)
    }

    /// Average latency increase of the migration bucket over the normal
    /// bucket (Table 3); zero when either bucket is empty.
    pub fn latency_increase(&self) -> Duration {
        if self.latency_normal.count() == 0 || self.latency_migration.count() == 0 {
            return Duration::ZERO;
        }
        self.latency_migration
            .mean()
            .saturating_sub(self.latency_normal.mean())
    }

    fn record_outcome(&self, started: Instant, result: &DbResult<()>) {
        match result {
            Ok(()) => {
                self.timeline.record();
                self.counters.commit();
                let elapsed = started.elapsed();
                if self.migration_active() {
                    self.latency_migration.record(elapsed);
                } else {
                    self.latency_normal.record(elapsed);
                }
            }
            Err(e) if e.is_migration_induced() => self.counters.migration_abort(),
            Err(DbError::WwConflict { .. }) => self.counters.ww_abort(),
            Err(_) => self.counters.other_abort(),
        }
    }
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A running fleet of closed-loop clients.
pub struct Driver {
    /// Shared metrics.
    pub metrics: Arc<RunMetrics>,
    stop: Arc<AtomicBool>,
    clients: Vec<std::thread::JoinHandle<()>>,
}

impl Driver {
    /// Starts `clients` closed-loop clients running `workload` with no
    /// think time (the paper's OLTP-Bench setting).
    pub fn start(cluster: &Arc<Cluster>, clients: usize, workload: Arc<dyn Workload>) -> Driver {
        Self::start_with_think(cluster, clients, Duration::ZERO, workload)
    }

    /// Starts clients that pause `think` between transactions. On a
    /// single-core simulation host a small think time stands in for the
    /// client-side round trips of the paper's separate load generator —
    /// without it the clients starve the replication pipeline of CPU.
    pub fn start_with_think(
        cluster: &Arc<Cluster>,
        clients: usize,
        think: Duration,
        workload: Arc<dyn Workload>,
    ) -> Driver {
        let metrics = Arc::new(RunMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..clients)
            .map(|i| {
                let cluster = Arc::clone(cluster);
                let workload = Arc::clone(&workload);
                let metrics = Arc::clone(&metrics);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let coordinator = NodeId((i % cluster.node_count()) as u32);
                    let session = Session::connect(&cluster, coordinator);
                    let client = ClientId(i as u32);
                    let mut rng = SmallRng::seed_from_u64(0x5EED ^ (i as u64) << 8);
                    while !stop.load(Ordering::Relaxed) {
                        let started = Instant::now();
                        let result = session
                            .run(|txn| workload.run_once(client, txn, &mut rng))
                            .map(|((), _)| ());
                        metrics.record_outcome(started, &result);
                        if !think.is_zero() {
                            std::thread::sleep(think);
                        }
                    }
                })
            })
            .collect();
        Driver {
            metrics,
            stop,
            clients: handles,
        }
    }

    /// Signals the clients to stop and waits for them.
    pub fn stop(mut self) -> Arc<RunMetrics> {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.clients.drain(..) {
            handle.join().expect("client thread panicked");
        }
        Arc::clone(&self.metrics)
    }

    /// Lets the clients run for `d`.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_cluster::ClusterBuilder;
    use remus_common::TableId;
    use remus_storage::Value;

    #[test]
    fn driver_runs_and_counts_commits() {
        let cluster = ClusterBuilder::new(2).build();
        let layout = cluster.create_table(TableId(1), 0, 4, |i| NodeId(i % 2));
        // Preload.
        let session = Session::connect(&cluster, NodeId(0));
        for k in 0..50 {
            session
                .run(|t| t.insert(&layout, k, Value::copy_from_slice(b"v")))
                .unwrap();
        }
        let workload = move |_c: ClientId, txn: &mut SessionTxn<'_>, rng: &mut SmallRng| {
            use rand::Rng;
            let key = rng.gen_range(0..50u64);
            txn.read(&layout, key)?;
            Ok(())
        };
        let driver = Driver::start(&cluster, 4, Arc::new(workload));
        driver.run_for(Duration::from_millis(200));
        let metrics = driver.stop();
        assert!(metrics.counters.commits() > 0);
        assert_eq!(metrics.counters.migration_aborts(), 0);
        assert!(!metrics.timeline.buckets().is_empty());
        assert!(metrics.latency_normal.count() > 0);
    }

    #[test]
    fn latency_buckets_switch_with_migration_flag() {
        let metrics = RunMetrics::new();
        metrics.record_outcome(Instant::now(), &Ok(()));
        assert_eq!(metrics.latency_normal.count(), 1);
        metrics.set_migration_active(true);
        metrics.record_outcome(Instant::now(), &Ok(()));
        assert_eq!(metrics.latency_migration.count(), 1);
        metrics.set_migration_active(false);
        assert_eq!(metrics.marks.all().len(), 2);
    }

    #[test]
    fn abort_classification() {
        use remus_common::{ShardId, TxnId};
        let metrics = RunMetrics::new();
        metrics.record_outcome(
            Instant::now(),
            &Err(DbError::WwConflict {
                txn: TxnId(1),
                other: TxnId(2),
            }),
        );
        metrics.record_outcome(
            Instant::now(),
            &Err(DbError::NotOwner {
                shard: ShardId(1),
                node: NodeId(0),
            }),
        );
        metrics.record_outcome(Instant::now(), &Err(DbError::KeyNotFound));
        assert_eq!(metrics.counters.ww_aborts(), 1);
        assert_eq!(metrics.counters.migration_aborts(), 1);
        assert_eq!(metrics.counters.other_aborts(), 1);
    }

    #[test]
    fn latency_increase_requires_both_buckets() {
        let metrics = RunMetrics::new();
        assert_eq!(metrics.latency_increase(), Duration::ZERO);
        metrics.latency_normal.record(Duration::from_millis(1));
        metrics.latency_migration.record(Duration::from_millis(4));
        assert!(metrics.latency_increase() >= Duration::from_millis(2));
    }
}
