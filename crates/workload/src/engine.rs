//! The open-loop workload engine.
//!
//! The thread-per-closed-loop-client driver caps a run at tens of sessions
//! and — worse — measures *service time*: a client that is stuck waiting on
//! a migration-stalled transaction stops issuing load, so exactly the
//! samples that should dominate p99 are never taken (coordinated
//! omission). This engine replaces it with the load-generator shape the
//! paper's separate OLTP-Bench machines had:
//!
//! * a **fixed worker pool** multiplexes hundreds of logical clients, each
//!   client pinned to one worker and one home coordinator;
//! * every client follows a **deterministic seeded arrival schedule**
//!   ([`Pacing::FixedRate`] or [`Pacing::Poisson`]) derived from the run
//!   seed, so two runs with the same seed offer identical load;
//! * due arrivals enter a **bounded per-worker queue**; overflow is
//!   *dropped and counted* (explicit load shedding, never silent), idle
//!   workers *park* until the next due arrival (park count/time counted);
//! * latency is recorded **against the intended arrival time**, so
//!   queueing delay under migration shows up in p99 instead of vanishing.
//!
//! [`Pacing::ClosedLoop`] keeps the legacy semantics (next arrival =
//! completion + think, latency = service time) for workloads that really
//! are closed-loop, e.g. fixed-work bench legs.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use remus_cluster::{Cluster, SessionPool};
use remus_common::{ClientId, Timestamp};

use crate::driver::{RunMetrics, Workload};

/// How a logical client paces its transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Legacy closed loop: the next transaction becomes due `think` after
    /// the previous one *completes*; latency is service time. Use only for
    /// genuinely closed workloads (fixed-work bench legs) — a stalled
    /// server silently stops the load (coordinated omission).
    ClosedLoop {
        /// Pause between a completion and the next arrival.
        think: Duration,
    },
    /// Open loop at a fixed rate: arrivals at `phase + k * period`
    /// regardless of completions. The phase is seeded per client so
    /// clients don't stampede in lockstep.
    FixedRate {
        /// Gap between consecutive intended arrivals.
        period: Duration,
    },
    /// Open loop with exponentially distributed gaps (a Poisson process)
    /// of the given mean — the memoryless arrivals real user traffic
    /// approximates.
    Poisson {
        /// Mean gap between consecutive intended arrivals.
        mean: Duration,
    },
}

impl Pacing {
    /// True for the open-loop variants (schedule-driven arrivals).
    pub fn is_open_loop(&self) -> bool {
        !matches!(self, Pacing::ClosedLoop { .. })
    }
}

/// Deterministic per-client arrival schedule generator.
///
/// Seeded from `(run seed, client id)` only, so the schedule is a pure
/// function of the configuration: same seed ⇒ identical offered load, on
/// any worker count, any host.
#[derive(Debug)]
pub struct ArrivalGen {
    rng: SmallRng,
    pacing: Pacing,
    /// Intended offset of the pending (not yet consumed) arrival, in
    /// nanoseconds from the run epoch.
    next: u64,
}

impl ArrivalGen {
    /// The schedule for `client` under `seed`. For closed-loop pacing the
    /// first arrival is due immediately and [`ArrivalGen::advance`] is
    /// driven by completions instead.
    pub fn new(seed: u64, client: ClientId, pacing: Pacing) -> Self {
        let mut rng = SmallRng::seed_from_u64(
            seed ^ 0xA221_7AB5_9E37_79B9u64.wrapping_mul(client.0 as u64 + 1),
        );
        let next = match pacing {
            Pacing::ClosedLoop { .. } => 0,
            // Seeded phase: spread fixed-rate clients over one period.
            Pacing::FixedRate { period } => rng.gen_range(0..nanos_of(period)),
            Pacing::Poisson { mean } => exp_gap(&mut rng, mean),
        };
        ArrivalGen { rng, pacing, next }
    }

    /// Intended offset (nanos from the run epoch) of the pending arrival.
    pub fn current(&self) -> u64 {
        self.next
    }

    /// Consumes the pending arrival and schedules the next one.
    pub fn advance(&mut self) {
        self.next += match self.pacing {
            Pacing::ClosedLoop { .. } => 0, // driven by completions, not the schedule
            Pacing::FixedRate { period } => nanos_of(period),
            Pacing::Poisson { mean } => exp_gap(&mut self.rng, mean),
        };
    }
}

/// Positive nanosecond width of a pacing interval (zero-width pacing would
/// make the schedule infinitely dense).
fn nanos_of(d: Duration) -> u64 {
    (d.as_nanos() as u64).max(1)
}

/// One exponentially distributed gap with the given mean, via inverse CDF.
fn exp_gap(rng: &mut SmallRng, mean: Duration) -> u64 {
    let u: f64 = rng.gen();
    // u ∈ [0, 1); 1-u ∈ (0, 1] keeps ln finite. Gaps are clamped to ≥ 1ns.
    ((-(1.0 - u).ln()) * nanos_of(mean) as f64).max(1.0) as u64
}

/// The full intended-arrival schedule of one client within `horizon` — the
/// pure function the engine's admission follows, exposed for determinism
/// tests and offline analysis.
pub fn arrival_schedule(
    seed: u64,
    client: ClientId,
    pacing: Pacing,
    horizon: Duration,
) -> Vec<Duration> {
    assert!(pacing.is_open_loop(), "closed-loop pacing has no schedule");
    let mut gen = ArrivalGen::new(seed, client, pacing);
    let horizon = horizon.as_nanos() as u64;
    let mut out = Vec::new();
    while gen.current() < horizon {
        out.push(Duration::from_nanos(gen.current()));
        gen.advance();
    }
    out
}

/// Admission verdict of a [`BoundedQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The item entered the queue.
    Queued,
    /// The queue was at its bound; the item was shed and counted.
    Dropped,
}

/// A bounded FIFO with exact shed accounting — the per-worker backpressure
/// primitive. Pure (no locks, single-owner) so its invariants are directly
/// property-testable.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    bound: usize,
    dropped: u64,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `bound` items (at least 1).
    pub fn new(bound: usize) -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            bound: bound.max(1),
            dropped: 0,
            high_water: 0,
        }
    }

    /// Admits `item` unless the queue is at its bound, in which case the
    /// item is shed and the drop counted.
    pub fn push(&mut self, item: T) -> Admission {
        if self.items.len() >= self.bound {
            self.dropped += 1;
            return Admission::Dropped;
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        Admission::Queued
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The admission bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Items shed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// Configuration of one engine run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Logical clients, assigned round-robin to workers and coordinators.
    pub clients: usize,
    /// Worker threads multiplexing the clients.
    pub workers: usize,
    /// Arrival pacing, shared by all clients.
    pub pacing: Pacing,
    /// Run seed: same seed ⇒ identical offered load.
    pub seed: u64,
    /// Bound of each worker's arrival queue (open-loop only).
    pub queue_bound: usize,
    /// Stop generating arrivals at this offset; workers drain and exit.
    /// `None` runs until [`OpenLoopEngine::stop`].
    pub horizon: Option<Duration>,
    /// Per-client transaction budget; a client stops arriving once spent.
    pub max_txns_per_client: Option<u64>,
}

impl EngineConfig {
    /// An open-loop config with the defaults the bench harness uses:
    /// 64-deep worker queues, no horizon (run until stopped).
    pub fn open_loop(clients: usize, workers: usize, pacing: Pacing, seed: u64) -> Self {
        assert!(pacing.is_open_loop(), "use EngineConfig::closed_loop");
        EngineConfig {
            clients,
            workers,
            pacing,
            seed,
            queue_bound: 64,
            horizon: None,
            max_txns_per_client: None,
        }
    }

    /// A closed-loop config (legacy driver semantics): one worker per
    /// client unless overridden, latency = service time.
    pub fn closed_loop(clients: usize, think: Duration, seed: u64) -> Self {
        EngineConfig {
            clients,
            workers: clients,
            pacing: Pacing::ClosedLoop { think },
            seed,
            queue_bound: 64,
            horizon: None,
            max_txns_per_client: None,
        }
    }
}

/// What one run offered, shed, and delivered.
#[derive(Debug)]
pub struct EngineReport {
    /// The shared transaction metrics (timeline, latency buckets, aborts).
    pub metrics: Arc<RunMetrics>,
    /// Arrivals generated (admitted + dropped).
    pub offered: u64,
    /// Arrivals executed to completion (commit or abort).
    pub executed: u64,
    /// Arrivals shed at a full worker queue.
    pub dropped: u64,
    /// Times a worker parked with nothing due.
    pub parks: u64,
    /// Total time workers spent parked.
    pub parked: Duration,
    /// Deepest any worker queue got.
    pub queue_high_water: usize,
    /// Arrivals generated per client, indexed by client id.
    pub per_client_offered: Vec<u64>,
    /// Arrivals executed per client, indexed by client id.
    pub per_client_executed: Vec<u64>,
    /// Wall-clock duration of the run (epoch → last worker exit).
    pub elapsed: Duration,
    /// Highest commit timestamp any worker produced.
    pub last_commit_ts: Timestamp,
}

impl EngineReport {
    /// Offered load in arrivals per second.
    pub fn offered_rate(&self) -> f64 {
        self.offered as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Delivered load in *commits* per second (aborts execute but don't
    /// deliver).
    pub fn delivered_rate(&self) -> f64 {
        self.metrics.counters.commits() as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Commits per offered arrival — the open-loop health signal the scale
    /// gate checks (1.0 = every intended transaction committed; drops and
    /// aborts both lower it).
    pub fn delivered_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.metrics.counters.commits() as f64 / self.offered as f64
    }
}

/// Cap on one park nap so workers notice `stop` and newly due arrivals
/// promptly even when the schedule says "nothing for a while".
const PARK_NAP: Duration = Duration::from_millis(1);

struct ClientState {
    id: ClientId,
    gen: ArrivalGen,
    rng: SmallRng,
    executed: u64,
    offered: u64,
}

#[derive(Debug)]
struct WorkerOut {
    dropped: u64,
    parks: u64,
    parked: Duration,
    queue_high_water: usize,
    /// (client id, offered, executed) for this worker's clients.
    per_client: Vec<(u32, u64, u64)>,
    last_commit_ts: Timestamp,
}

/// A running open-loop (or legacy closed-loop) client fleet.
pub struct OpenLoopEngine {
    /// Shared transaction metrics, available mid-run for migration marks.
    pub metrics: Arc<RunMetrics>,
    config: EngineConfig,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<WorkerOut>>,
}

impl OpenLoopEngine {
    /// Starts the worker pool driving `workload`. Clients are assigned
    /// round-robin to workers; each worker holds one [`SessionPool`]
    /// (a session per node) and routes every client to its home
    /// coordinator `client % nodes`.
    pub fn start(
        cluster: &Arc<Cluster>,
        config: EngineConfig,
        workload: Arc<dyn Workload>,
    ) -> OpenLoopEngine {
        assert!(config.clients > 0, "need at least one client");
        let workers = config.workers.clamp(1, config.clients);
        let metrics = Arc::new(RunMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let handles = (0..workers)
            .map(|w| {
                let clients: Vec<ClientState> = (w..config.clients)
                    .step_by(workers)
                    .map(|c| ClientState {
                        id: ClientId(c as u32),
                        gen: ArrivalGen::new(config.seed, ClientId(c as u32), config.pacing),
                        rng: SmallRng::seed_from_u64(config.seed ^ (c as u64) << 8),
                        executed: 0,
                        offered: 0,
                    })
                    .collect();
                let cluster = Arc::clone(cluster);
                let workload = Arc::clone(&workload);
                let metrics = Arc::clone(&metrics);
                let stop = Arc::clone(&stop);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("engine-worker-{w}"))
                    .spawn(move || {
                        worker_loop(
                            &cluster, &config, clients, &*workload, &metrics, &stop, epoch,
                        )
                    })
                    .expect("spawn engine worker")
            })
            .collect();
        OpenLoopEngine {
            metrics,
            config,
            epoch,
            stop,
            workers: handles,
        }
    }

    /// Lets the fleet run for `d` (convenience mirror of the old driver).
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Signals the workers to stop (pending schedules are discarded,
    /// already-admitted arrivals drain) and collects the report.
    pub fn stop(self) -> EngineReport {
        self.stop.store(true, Ordering::Relaxed);
        self.collect()
    }

    /// Waits for the run to end on its own — requires a horizon or a
    /// per-client budget, otherwise the workers never exit.
    pub fn join(self) -> EngineReport {
        assert!(
            self.config.horizon.is_some() || self.config.max_txns_per_client.is_some(),
            "join() without a horizon or txn budget would never return; use stop()"
        );
        self.collect()
    }

    fn collect(mut self) -> EngineReport {
        let mut report = EngineReport {
            metrics: Arc::clone(&self.metrics),
            offered: 0,
            executed: 0,
            dropped: 0,
            parks: 0,
            parked: Duration::ZERO,
            queue_high_water: 0,
            per_client_offered: vec![0; self.config.clients],
            per_client_executed: vec![0; self.config.clients],
            elapsed: Duration::ZERO,
            last_commit_ts: Timestamp::INVALID,
        };
        for handle in self.workers.drain(..) {
            let out = handle.join().expect("engine worker panicked");
            report.dropped += out.dropped;
            report.parks += out.parks;
            report.parked += out.parked;
            report.queue_high_water = report.queue_high_water.max(out.queue_high_water);
            report.last_commit_ts = report.last_commit_ts.max(out.last_commit_ts);
            for (client, offered, executed) in out.per_client {
                report.offered += offered;
                report.executed += executed;
                report.per_client_offered[client as usize] = offered;
                report.per_client_executed[client as usize] = executed;
            }
        }
        report.elapsed = self.epoch.elapsed();
        report
    }
}

/// One worker: admit due arrivals, execute queued work, park when idle.
fn worker_loop(
    cluster: &Arc<Cluster>,
    config: &EngineConfig,
    mut clients: Vec<ClientState>,
    workload: &dyn Workload,
    metrics: &RunMetrics,
    stop: &AtomicBool,
    epoch: Instant,
) -> WorkerOut {
    let pool = SessionPool::connect_all(cluster);
    let horizon = config.horizon.map(|h| h.as_nanos() as u64);
    let budget = config.max_txns_per_client;
    let closed_think = match config.pacing {
        Pacing::ClosedLoop { think } => Some(think.as_nanos() as u64),
        _ => None,
    };

    // Pending arrivals per client, ordered by due time. Closed-loop clients
    // re-enter the heap at completion + think instead of by schedule.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = clients
        .iter()
        .enumerate()
        .filter(|_| budget != Some(0))
        .map(|(slot, c)| Reverse((c.gen.current(), slot)))
        .collect();
    let mut queue: BoundedQueue<(usize, u64)> = BoundedQueue::new(config.queue_bound);
    let mut parks = 0u64;
    let mut parked = Duration::ZERO;

    loop {
        if stop.load(Ordering::Relaxed) {
            // Discard the remaining schedule; drain what was admitted.
            heap.clear();
        }
        let now = epoch.elapsed().as_nanos() as u64;

        if let Some(think) = closed_think {
            // Closed loop: execute the earliest eligible client directly.
            match heap.peek().copied() {
                None => break,
                Some(Reverse((due, slot))) if due <= now => {
                    heap.pop();
                    let c = &mut clients[slot];
                    c.offered += 1;
                    execute(&pool, workload, metrics, c, None, epoch);
                    let done = budget.is_some_and(|b| c.executed >= b)
                        || horizon.is_some_and(|h| epoch.elapsed().as_nanos() as u64 >= h);
                    if !done {
                        let next = epoch.elapsed().as_nanos() as u64 + think;
                        heap.push(Reverse((next, slot)));
                    }
                }
                Some(Reverse((due, _))) => {
                    parks += 1;
                    let nap = Duration::from_nanos(due - now).min(PARK_NAP);
                    std::thread::sleep(nap);
                    parked += nap;
                }
            }
            continue;
        }

        // Open loop: admit everything due, then execute one queued arrival.
        while let Some(&Reverse((due, slot))) = heap.peek() {
            if due > now {
                break;
            }
            heap.pop();
            let c = &mut clients[slot];
            c.offered += 1;
            let _ = queue.push((slot, due));
            c.gen.advance();
            let exhausted = horizon.is_some_and(|h| c.gen.current() >= h)
                || budget.is_some_and(|b| c.offered >= b);
            if !exhausted {
                heap.push(Reverse((c.gen.current(), slot)));
            }
        }

        if let Some((slot, due)) = queue.pop() {
            execute(
                &pool,
                workload,
                metrics,
                &mut clients[slot],
                Some(due),
                epoch,
            );
        } else if let Some(&Reverse((due, _))) = heap.peek() {
            parks += 1;
            let nap = Duration::from_nanos(due.saturating_sub(now)).min(PARK_NAP);
            std::thread::sleep(nap);
            parked += nap;
        } else {
            // Schedule exhausted and queue drained: the run is over.
            break;
        }
    }

    WorkerOut {
        dropped: queue.dropped(),
        parks,
        parked,
        queue_high_water: queue.high_water(),
        per_client: clients
            .iter()
            .map(|c| (c.id.0, c.offered, c.executed))
            .collect(),
        last_commit_ts: pool.last_commit_ts(),
    }
}

/// Runs one transaction for `client`, recording latency against the
/// intended arrival (`due`, nanos from epoch) when given — the
/// coordinated-omission-safe measurement — or against the actual start for
/// closed-loop service time.
fn execute(
    pool: &SessionPool,
    workload: &dyn Workload,
    metrics: &RunMetrics,
    client: &mut ClientState,
    due: Option<u64>,
    epoch: Instant,
) {
    let session = pool.for_client(client.id);
    let started = Instant::now();
    let result = session
        .run(|txn| workload.run_once(client.id, txn, &mut client.rng))
        .map(|((), _)| ());
    let latency = match due {
        Some(due) => {
            let completed = epoch.elapsed().as_nanos() as u64;
            Duration::from_nanos(completed.saturating_sub(due))
        }
        None => started.elapsed(),
    };
    metrics.record_outcome_with_latency(latency, &result);
    client.executed += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_schedule_is_periodic_after_phase() {
        let pacing = Pacing::FixedRate {
            period: Duration::from_millis(10),
        };
        let sched = arrival_schedule(7, ClientId(3), pacing, Duration::from_millis(100));
        assert!(!sched.is_empty());
        assert!(
            sched[0] < Duration::from_millis(10),
            "phase within one period"
        );
        for pair in sched.windows(2) {
            assert_eq!(pair[1] - pair[0], Duration::from_millis(10));
        }
    }

    #[test]
    fn poisson_schedule_is_monotone_with_positive_gaps() {
        let pacing = Pacing::Poisson {
            mean: Duration::from_millis(5),
        };
        let sched = arrival_schedule(7, ClientId(0), pacing, Duration::from_secs(1));
        assert!(sched.len() > 50, "~200 expected, got {}", sched.len());
        for pair in sched.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn schedules_differ_across_clients_and_seeds() {
        let pacing = Pacing::Poisson {
            mean: Duration::from_millis(5),
        };
        let h = Duration::from_millis(200);
        let a = arrival_schedule(7, ClientId(0), pacing, h);
        let b = arrival_schedule(7, ClientId(1), pacing, h);
        let c = arrival_schedule(8, ClientId(0), pacing, h);
        assert_ne!(a, b, "clients must not stampede in lockstep");
        assert_ne!(a, c, "seed must change the schedule");
    }

    #[test]
    #[should_panic(expected = "no schedule")]
    fn closed_loop_has_no_schedule() {
        let _ = arrival_schedule(
            7,
            ClientId(0),
            Pacing::ClosedLoop {
                think: Duration::ZERO,
            },
            Duration::from_secs(1),
        );
    }

    #[test]
    fn bounded_queue_sheds_and_counts() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.push(1), Admission::Queued);
        assert_eq!(q.push(2), Admission::Queued);
        assert_eq!(q.push(3), Admission::Dropped);
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(4), Admission::Queued);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_queue_bound_is_at_least_one() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.bound(), 1);
        assert_eq!(q.push(()), Admission::Queued);
        assert_eq!(q.push(()), Admission::Dropped);
    }

    #[test]
    fn zero_width_pacing_is_clamped() {
        // A zero period must not generate an infinitely dense schedule.
        let sched = arrival_schedule(
            1,
            ClientId(0),
            Pacing::FixedRate {
                period: Duration::ZERO,
            },
            Duration::from_nanos(100),
        );
        assert!(sched.len() <= 100);
    }
}
