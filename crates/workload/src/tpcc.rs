//! A compact TPC-C (paper §4.3, §4.6).
//!
//! Eight tables, each sharded **by warehouse id** with exactly one
//! warehouse per shard (direct layouts) and collocated across tables —
//! migrating a warehouse moves its 8 shards together, matching the paper's
//! "3 warehouses (a total of 24 shards given 8 TPC-C distributed tables)".
//!
//! The transaction mix is 45% new-order, 43% payment, 12% order-status;
//! ~10% of new-order and payment transactions touch a remote warehouse and
//! therefore commit through 2PC. Row contents are fixed-size payloads —
//! the concurrency structure (which rows are read, updated, inserted, and
//! on which shards) follows the TPC-C definition; decimal bookkeeping is
//! out of scope for a migration benchmark.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use remus_cluster::{Cluster, SessionTxn};
use remus_common::{ClientId, DbResult, NodeId, ShardId, TableId};
use remus_shard::TableLayout;
use remus_storage::{Key, Value};

use crate::driver::Workload;

/// TPC-C scale parameters.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses (paper: 480).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts: u32,
    /// Customers per district (spec: 3000; scaled down by default).
    pub customers: u32,
    /// Stock items per warehouse (spec: 100 000; scaled down by default).
    pub items: u32,
    /// Fraction of new-order/payment transactions touching a remote
    /// warehouse (paper: ~10% distributed).
    pub remote_ratio: f64,
    /// First shard id to allocate from.
    pub base_shard: u64,
    /// Row payload size.
    pub value_len: usize,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 48,
            districts: 10,
            customers: 100,
            items: 200,
            remote_ratio: 0.10,
            base_shard: 0,
            value_len: 64,
        }
    }
}

/// The eight TPC-C tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TpccTable {
    Warehouse = 0,
    District = 1,
    Customer = 2,
    Stock = 3,
    Orders = 4,
    OrderLine = 5,
    NewOrder = 6,
    History = 7,
}

const TABLES: [TpccTable; 8] = [
    TpccTable::Warehouse,
    TpccTable::District,
    TpccTable::Customer,
    TpccTable::Stock,
    TpccTable::Orders,
    TpccTable::OrderLine,
    TpccTable::NewOrder,
    TpccTable::History,
];

/// The TPC-C workload and schema.
pub struct Tpcc {
    /// Configuration used.
    pub config: TpccConfig,
    /// Layouts, indexed by [`TpccTable`] discriminant.
    pub layouts: [TableLayout; 8],
    /// Per-(warehouse, district) order-id sequences.
    next_order: Vec<AtomicU64>,
    /// History row sequence.
    next_history: AtomicU64,
}

impl Tpcc {
    /// Creates all eight tables (one warehouse per shard, collocated by
    /// placement), loads warehouses, districts, customers and stock, and
    /// returns the workload.
    ///
    /// `placement` maps a warehouse id to its node.
    pub fn setup(
        cluster: &Arc<Cluster>,
        config: TpccConfig,
        mut placement: impl FnMut(u32) -> NodeId,
    ) -> Tpcc {
        let w = config.warehouses;
        let homes: Vec<NodeId> = (0..w).map(&mut placement).collect();
        let layouts: [TableLayout; 8] = std::array::from_fn(|t| {
            let base = config.base_shard + (t as u64) * w as u64;
            let homes = homes.clone();
            let layout = TableLayout::direct(TableId(100 + t as u32), base, w);

            cluster.create_table_with_layout(layout, move |i| homes[i as usize])
        });
        let tpcc = Tpcc {
            next_order: (0..(w * config.districts))
                .map(|_| AtomicU64::new(1))
                .collect(),
            next_history: AtomicU64::new(1),
            config,
            layouts,
        };
        tpcc.load(cluster);
        tpcc
    }

    fn load(&self, cluster: &Arc<Cluster>) {
        let value = Self::row(self.config.value_len, 1);
        let install = |table: TpccTable, warehouse: u64, key: Key| {
            let layout = &self.layouts[table as usize];
            let shard = layout.shard_for(warehouse);
            let owner = cluster
                .current_owner(cluster.node(NodeId(0)), shard)
                .expect("owner exists")
                .node;
            cluster
                .node(owner)
                .storage
                .table(shard)
                .expect("shard exists")
                .install_frozen(key, value.clone());
        };
        for w in 0..self.config.warehouses as u64 {
            install(TpccTable::Warehouse, w, w);
            for d in 0..self.config.districts as u64 {
                install(TpccTable::District, w, self.district_key(w, d));
                for c in 0..self.config.customers as u64 {
                    install(TpccTable::Customer, w, self.customer_key(w, d, c));
                }
            }
            for i in 0..self.config.items as u64 {
                install(TpccTable::Stock, w, self.stock_key(w, i));
            }
        }
    }

    /// A fixed-size row payload tagged with a version.
    pub fn row(len: usize, version: u64) -> Value {
        let mut buf = vec![0u8; len.max(8)];
        buf[..8].copy_from_slice(&version.to_le_bytes());
        Value::from(buf)
    }

    // ---- key encodings ----

    fn district_key(&self, w: u64, d: u64) -> Key {
        w * self.config.districts as u64 + d
    }

    fn customer_key(&self, w: u64, d: u64, c: u64) -> Key {
        self.district_key(w, d) * self.config.customers as u64 + c
    }

    fn stock_key(&self, w: u64, i: u64) -> Key {
        w * self.config.items as u64 + i
    }

    fn order_key(&self, w: u64, d: u64, o: u64) -> Key {
        self.district_key(w, d) * 10_000_000 + o
    }

    fn order_line_key(&self, w: u64, d: u64, o: u64, line: u64) -> Key {
        self.order_key(w, d, o) * 16 + line
    }

    fn alloc_order_id(&self, w: u64, d: u64) -> u64 {
        self.next_order[self.district_key(w, d) as usize].fetch_add(1, Ordering::Relaxed)
    }

    /// All shards of one warehouse across the eight tables — the unit the
    /// scale-out scenario migrates together.
    pub fn warehouse_shards(&self, warehouse: u32) -> Vec<ShardId> {
        TABLES
            .iter()
            .map(|t| self.layouts[*t as usize].shard_for(warehouse as u64))
            .collect()
    }

    // ---- transactions ----

    fn pick_remote(&self, home: u64, rng: &mut SmallRng) -> u64 {
        if self.config.warehouses == 1 {
            return home;
        }
        loop {
            let w = rng.gen_range(0..self.config.warehouses as u64);
            if w != home {
                return w;
            }
        }
    }

    /// The new-order transaction for home warehouse `w`.
    pub fn new_order(&self, txn: &mut SessionTxn<'_>, w: u64, rng: &mut SmallRng) -> DbResult<()> {
        let cfg = &self.config;
        let d = rng.gen_range(0..cfg.districts as u64);
        let c = rng.gen_range(0..cfg.customers as u64);
        let lines = rng.gen_range(5..=15u64);
        let remote = rng.gen_bool(cfg.remote_ratio);

        // Read warehouse & customer, bump the district's next order id.
        txn.read_at(&self.layouts[TpccTable::Warehouse as usize], w, w)?;
        txn.read_at(
            &self.layouts[TpccTable::Customer as usize],
            w,
            self.customer_key(w, d, c),
        )?;
        txn.update_at(
            &self.layouts[TpccTable::District as usize],
            w,
            self.district_key(w, d),
            Self::row(cfg.value_len, rng.gen()),
        )?;
        let o = self.alloc_order_id(w, d);
        txn.insert_at(
            &self.layouts[TpccTable::Orders as usize],
            w,
            self.order_key(w, d, o),
            Self::row(cfg.value_len, o),
        )?;
        txn.insert_at(
            &self.layouts[TpccTable::NewOrder as usize],
            w,
            self.order_key(w, d, o),
            Self::row(cfg.value_len, o),
        )?;
        for line in 0..lines {
            // ~1% of items come from a remote warehouse when the
            // transaction is distributed.
            let supply_w = if remote && line == 0 {
                self.pick_remote(w, rng)
            } else {
                w
            };
            let item = rng.gen_range(0..cfg.items as u64);
            txn.update_at(
                &self.layouts[TpccTable::Stock as usize],
                supply_w,
                self.stock_key(supply_w, item),
                Self::row(cfg.value_len, rng.gen()),
            )?;
            txn.insert_at(
                &self.layouts[TpccTable::OrderLine as usize],
                w,
                self.order_line_key(w, d, o, line),
                Self::row(cfg.value_len, item),
            )?;
        }
        Ok(())
    }

    /// The payment transaction for home warehouse `w`.
    pub fn payment(&self, txn: &mut SessionTxn<'_>, w: u64, rng: &mut SmallRng) -> DbResult<()> {
        let cfg = &self.config;
        let d = rng.gen_range(0..cfg.districts as u64);
        // 10%: the paying customer belongs to a remote warehouse.
        let (cw, cd) = if rng.gen_bool(cfg.remote_ratio) {
            (
                self.pick_remote(w, rng),
                rng.gen_range(0..cfg.districts as u64),
            )
        } else {
            (w, d)
        };
        let c = rng.gen_range(0..cfg.customers as u64);
        txn.update_at(
            &self.layouts[TpccTable::Warehouse as usize],
            w,
            w,
            Self::row(cfg.value_len, rng.gen()),
        )?;
        txn.update_at(
            &self.layouts[TpccTable::District as usize],
            w,
            self.district_key(w, d),
            Self::row(cfg.value_len, rng.gen()),
        )?;
        txn.update_at(
            &self.layouts[TpccTable::Customer as usize],
            cw,
            self.customer_key(cw, cd, c),
            Self::row(cfg.value_len, rng.gen()),
        )?;
        let h = self.next_history.fetch_add(1, Ordering::Relaxed);
        txn.insert_at(
            &self.layouts[TpccTable::History as usize],
            w,
            h,
            Self::row(cfg.value_len, h),
        )?;
        Ok(())
    }

    /// The order-status transaction (read-only) for home warehouse `w`.
    pub fn order_status(
        &self,
        txn: &mut SessionTxn<'_>,
        w: u64,
        rng: &mut SmallRng,
    ) -> DbResult<()> {
        let cfg = &self.config;
        let d = rng.gen_range(0..cfg.districts as u64);
        let c = rng.gen_range(0..cfg.customers as u64);
        txn.read_at(
            &self.layouts[TpccTable::Customer as usize],
            w,
            self.customer_key(w, d, c),
        )?;
        let issued = self.next_order[self.district_key(w, d) as usize].load(Ordering::Relaxed);
        if issued > 1 {
            let o = rng.gen_range(1..issued);
            txn.read_at(
                &self.layouts[TpccTable::Orders as usize],
                w,
                self.order_key(w, d, o),
            )?;
        }
        Ok(())
    }
}

impl Workload for Tpcc {
    fn run_once(
        &self,
        client: ClientId,
        txn: &mut SessionTxn<'_>,
        rng: &mut SmallRng,
    ) -> DbResult<()> {
        // Each client has a home warehouse (paper: one client per
        // warehouse).
        let w = (client.0 % self.config.warehouses) as u64;
        let dice: f64 = rng.gen();
        if dice < 0.45 {
            self.new_order(txn, w, rng)
        } else if dice < 0.88 {
            self.payment(txn, w, rng)
        } else {
            self.order_status(txn, w, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use remus_cluster::{ClusterBuilder, Session};

    fn small() -> TpccConfig {
        TpccConfig {
            warehouses: 4,
            districts: 2,
            customers: 5,
            items: 10,
            ..Default::default()
        }
    }

    #[test]
    fn setup_collocates_warehouse_shards() {
        let cluster = ClusterBuilder::new(2).build();
        let tpcc = Tpcc::setup(&cluster, small(), |w| NodeId(w % 2));
        for w in 0..4u32 {
            let shards = tpcc.warehouse_shards(w);
            assert_eq!(shards.len(), 8);
            let owner = cluster
                .current_owner(cluster.node(NodeId(0)), shards[0])
                .unwrap()
                .node;
            assert_eq!(owner, NodeId(w % 2));
            for s in shards {
                assert_eq!(
                    cluster
                        .current_owner(cluster.node(NodeId(0)), s)
                        .unwrap()
                        .node,
                    owner,
                    "warehouse {w} shards not collocated"
                );
            }
        }
    }

    #[test]
    fn transactions_run_and_commit() {
        let cluster = ClusterBuilder::new(2).build();
        let tpcc = Arc::new(Tpcc::setup(&cluster, small(), |w| NodeId(w % 2)));
        let session = Session::connect(&cluster, NodeId(0));
        let mut rng = SmallRng::seed_from_u64(3);
        let mut commits = 0;
        for i in 0..60 {
            let r = session.run(|t| tpcc.run_once(ClientId(i % 4), t, &mut rng));
            if r.is_ok() {
                commits += 1;
            }
        }
        // A handful of WW conflicts on hot district rows are expected; the
        // vast majority must commit.
        assert!(commits >= 45, "only {commits}/60 committed");
    }

    #[test]
    fn new_order_inserts_rows() {
        let cluster = ClusterBuilder::new(1).build();
        let tpcc = Tpcc::setup(&cluster, small(), |_| NodeId(0));
        let session = Session::connect(&cluster, NodeId(0));
        let mut rng = SmallRng::seed_from_u64(5);
        session.run(|t| tpcc.new_order(t, 0, &mut rng)).unwrap();
        // The orders table gained at least one row.
        let (rows, _) = session
            .run(|t| t.scan_table(&tpcc.layouts[TpccTable::Orders as usize]))
            .unwrap();
        assert_eq!(rows.len(), 1);
        let (lines, _) = session
            .run(|t| t.scan_table(&tpcc.layouts[TpccTable::OrderLine as usize]))
            .unwrap();
        assert!((5..=15).contains(&lines.len()));
    }

    #[test]
    fn remote_payment_is_distributed() {
        // With remote_ratio = 1.0 every payment touches two warehouses on
        // different nodes and must 2PC.
        let cluster = ClusterBuilder::new(2).build();
        let config = TpccConfig {
            remote_ratio: 1.0,
            ..small()
        };
        let tpcc = Tpcc::setup(&cluster, config, |w| NodeId(w % 2));
        let session = Session::connect(&cluster, NodeId(0));
        let mut rng = SmallRng::seed_from_u64(8);
        // Home warehouse 0 (node 0); customer update goes to a remote
        // warehouse — find a run where the remote sits on node 1.
        let mut distributed_seen = false;
        for _ in 0..20 {
            let mut txn = session.begin();
            if tpcc.payment(&mut txn, 0, &mut rng).is_ok() {
                let nodes = txn.txn.write_node_ids();
                if nodes.len() > 1 {
                    distributed_seen = true;
                }
                txn.commit().unwrap();
            } else {
                txn.abort();
            }
        }
        assert!(distributed_seen, "no distributed payment in 20 runs");
    }

    #[test]
    fn order_ids_are_per_district_monotone() {
        let cluster = ClusterBuilder::new(1).build();
        let tpcc = Tpcc::setup(&cluster, small(), |_| NodeId(0));
        let a = tpcc.alloc_order_id(0, 0);
        let b = tpcc.alloc_order_id(0, 0);
        let c = tpcc.alloc_order_id(1, 0);
        assert!(b > a);
        assert_eq!(c, 1, "districts have independent sequences");
    }
}
