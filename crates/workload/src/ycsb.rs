//! YCSB (paper §4.3).
//!
//! The paper's YCSB database is 100 M × 1 KB tuples in 360 shards over 6
//! nodes; transactions are multi-statement interactive (explicit
//! BEGIN/COMMIT wrapping each read/update), 50% reads / 50% updates,
//! uniform or skewed. We keep the access structure identical and scale the
//! constants (`YcsbConfig`).
//!
//! The Zipfian generator is the standard YCSB/Gray construction; the
//! skewed load-balancing scenario (§4.5) and the hot-shard contention
//! scenario (§4.8) both build on it.

use std::ops::Range;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use remus_cluster::{Cluster, SessionTxn};
use remus_common::{ClientId, DbResult, NodeId, TableId};
use remus_shard::TableLayout;
use remus_storage::{Key, Value};

use crate::driver::Workload;

/// Key-access distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over the keyspace.
    Uniform,
    /// Zipfian with the given theta (YCSB default 0.99).
    Zipfian(f64),
    /// Uniform over a fixed key range (the §4.8 hot-tuple set).
    HotRange(u64, u64),
}

/// YCSB parameters.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Table id to create.
    pub table: TableId,
    /// First shard id.
    pub base_shard: u64,
    /// Number of shards (paper: 360 over 6 nodes).
    pub shards: u32,
    /// Number of tuples (paper: 100 M; default here laptop-scale).
    pub keys: u64,
    /// Tuple payload size in bytes (paper: ~1 KB).
    pub value_len: usize,
    /// Fraction of reads (paper: 0.5).
    pub read_ratio: f64,
    /// Access distribution.
    pub distribution: KeyDistribution,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            table: TableId(1),
            base_shard: 0,
            shards: 36,
            keys: 100_000,
            value_len: 64,
            read_ratio: 0.5,
            distribution: KeyDistribution::Uniform,
        }
    }
}

/// Gray's Zipfian generator over `0..n` (most popular item is 0).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds a generator for `n` items with skew `theta` in (0, 1).
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0 && theta > 0.0 && theta < 1.0);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; integral approximation beyond, accurate to
        // well under a percent for the sizes we use.
        const EXACT: u64 = 10_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            let a = EXACT as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Samples an item rank in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

/// The YCSB workload.
pub struct Ycsb {
    /// Configuration used.
    pub config: YcsbConfig,
    /// The table layout (created by [`Ycsb::setup`]).
    pub layout: TableLayout,
    zipf: Option<Zipfian>,
}

impl Ycsb {
    /// Creates the YCSB table on the cluster (placement round-robin over
    /// nodes) and bulk-loads `config.keys` tuples directly into the owner
    /// shards (initial load, not part of the measured workload).
    pub fn setup(cluster: &Arc<Cluster>, config: YcsbConfig) -> Ycsb {
        let nodes = cluster.node_count() as u32;
        let layout = cluster.create_table(config.table, config.base_shard, config.shards, |i| {
            NodeId(i % nodes)
        });
        let value = Self::value_of(config.value_len, 0);
        for key in 0..config.keys {
            let shard = layout.shard_for(key);
            let owner = cluster
                .current_owner(cluster.node(NodeId(0)), shard)
                .expect("owner exists")
                .node;
            cluster
                .node(owner)
                .storage
                .table(shard)
                .expect("shard exists")
                .install_frozen(key, value.clone());
        }
        let zipf = match config.distribution {
            KeyDistribution::Zipfian(theta) => Some(Zipfian::new(config.keys, theta)),
            _ => None,
        };
        Ycsb {
            config,
            layout,
            zipf,
        }
    }

    /// Like [`Ycsb::setup`] with explicit shard placement.
    pub fn setup_with_placement(
        cluster: &Arc<Cluster>,
        config: YcsbConfig,
        placement: impl FnMut(u32) -> NodeId,
    ) -> Ycsb {
        let layout =
            cluster.create_table(config.table, config.base_shard, config.shards, placement);
        let value = Self::value_of(config.value_len, 0);
        for key in 0..config.keys {
            let shard = layout.shard_for(key);
            let owner = cluster
                .current_owner(cluster.node(NodeId(0)), shard)
                .expect("owner exists")
                .node;
            cluster
                .node(owner)
                .storage
                .table(shard)
                .expect("shard exists")
                .install_frozen(key, value.clone());
        }
        let zipf = match config.distribution {
            KeyDistribution::Zipfian(theta) => Some(Zipfian::new(config.keys, theta)),
            _ => None,
        };
        Ycsb {
            config,
            layout,
            zipf,
        }
    }

    /// A payload of the configured size, tagged with a version counter.
    pub fn value_of(len: usize, version: u64) -> Value {
        let mut buf = vec![0u8; len.max(8)];
        buf[..8].copy_from_slice(&version.to_le_bytes());
        Value::from(buf)
    }

    /// Samples a key according to the configured distribution.
    pub fn sample_key(&self, rng: &mut SmallRng) -> Key {
        match self.config.distribution {
            KeyDistribution::Uniform => rng.gen_range(0..self.config.keys),
            KeyDistribution::Zipfian(_) => {
                // Scramble the rank so popular keys spread over shards, as
                // YCSB's scrambled-zipfian does.
                let rank = self.zipf.as_ref().expect("zipfian built").sample(rng);

                remus_shard::key_hash(rank) % self.config.keys
            }
            KeyDistribution::HotRange(lo, hi) => rng.gen_range(lo..hi),
        }
    }

    /// Keys in `range` — used by the hot-shard scenario to find keys
    /// landing on one shard.
    pub fn keys_on_shard(&self, shard: remus_common::ShardId, limit: usize) -> Vec<Key> {
        (0..self.config.keys)
            .filter(|k| self.layout.shard_for(*k) == shard)
            .take(limit)
            .collect()
    }
}

impl Workload for Ycsb {
    fn run_once(
        &self,
        _client: ClientId,
        txn: &mut SessionTxn<'_>,
        rng: &mut SmallRng,
    ) -> DbResult<()> {
        let key = self.sample_key(rng);
        if rng.gen_bool(self.config.read_ratio) {
            txn.read(&self.layout, key)?;
        } else {
            let value = Self::value_of(self.config.value_len, rng.gen());
            txn.update(&self.layout, key, value)?;
        }
        Ok(())
    }
}

/// The §4.8 high-contention transaction: read one hot tuple, update
/// another, all within one hot key range.
pub struct HotSpot {
    /// The layout of the YCSB table.
    pub layout: TableLayout,
    /// The hot keys.
    pub keys: Arc<Vec<Key>>,
    /// Payload size.
    pub value_len: usize,
}

impl Workload for HotSpot {
    fn run_once(
        &self,
        _client: ClientId,
        txn: &mut SessionTxn<'_>,
        rng: &mut SmallRng,
    ) -> DbResult<()> {
        let read_key = self.keys[rng.gen_range(0..self.keys.len())];
        let write_key = self.keys[rng.gen_range(0..self.keys.len())];
        txn.read(&self.layout, read_key)?;
        txn.update(
            &self.layout,
            write_key,
            Ycsb::value_of(self.value_len, rng.gen()),
        )?;
        Ok(())
    }
}

/// A `Range` helper for hot ranges.
pub fn hot_range(range: Range<u64>) -> KeyDistribution {
    KeyDistribution::HotRange(range.start, range.end)
}

/// One phase of the hotspot-shift scenario: a Zipfian-weighted hot key
/// set drawn from a *pair* of shards. Every transaction writes one key on
/// each shard of the pair, so the pair's placement decides whether the
/// commit takes the single-node fast path (co-resident) or a full
/// distributed 2PC (split) — the signal the elasticity autopilot's
/// co-location trigger feeds on.
#[derive(Debug, Clone)]
pub struct HotPhase {
    /// The two shards the phase's transactions span.
    pub shards: (remus_common::ShardId, remus_common::ShardId),
    /// Hot keys on `shards.0`, rank 0 hottest.
    pub a_keys: Arc<Vec<Key>>,
    /// Hot keys on `shards.1`, rank 0 hottest.
    pub b_keys: Arc<Vec<Key>>,
}

/// The hotspot-shift workload: Zipfian traffic over a two-shard hot pair
/// that *jumps* to a different pair after a configurable number of
/// transactions — the elasticity scenario where yesterday's perfect
/// placement becomes today's hotspot.
///
/// The phase boundary is a shared transaction counter, not wall-clock, so
/// a run of N transactions always shifts at the same point regardless of
/// machine speed.
pub struct HotspotShift {
    /// The layout of the YCSB table.
    pub layout: TableLayout,
    /// Phase 0 (before the shift) and phase 1 (after).
    pub phases: [HotPhase; 2],
    /// Payload size.
    pub value_len: usize,
    zipf: Zipfian,
    shift_after: u64,
    executed: std::sync::atomic::AtomicU64,
}

impl HotspotShift {
    /// Builds the scenario on an already-loaded [`Ycsb`] table: the hot
    /// pair is `phase0` for the first `shift_after` transactions and
    /// `phase1` afterwards, with `keys_per_shard` hot keys taken from each
    /// shard and Zipfian skew `theta` over their ranks.
    pub fn new(
        ycsb: &Ycsb,
        phase0: (remus_common::ShardId, remus_common::ShardId),
        phase1: (remus_common::ShardId, remus_common::ShardId),
        keys_per_shard: usize,
        theta: f64,
        shift_after: u64,
    ) -> HotspotShift {
        let phase = |pair: (remus_common::ShardId, remus_common::ShardId)| {
            let a_keys = Arc::new(ycsb.keys_on_shard(pair.0, keys_per_shard));
            let b_keys = Arc::new(ycsb.keys_on_shard(pair.1, keys_per_shard));
            assert!(
                a_keys.len() == keys_per_shard && b_keys.len() == keys_per_shard,
                "not enough keys on the hot pair {pair:?}"
            );
            HotPhase {
                shards: pair,
                a_keys,
                b_keys,
            }
        };
        HotspotShift {
            layout: ycsb.layout,
            phases: [phase(phase0), phase(phase1)],
            value_len: ycsb.config.value_len,
            zipf: Zipfian::new(keys_per_shard as u64, theta),
            shift_after,
            executed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The phase the *next* transaction will run in (0 or 1).
    pub fn phase(&self) -> usize {
        usize::from(self.executed.load(std::sync::atomic::Ordering::Relaxed) >= self.shift_after)
    }

    /// Transactions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Forces the phase boundary now (harnesses that separate the phases
    /// into distinct measured legs advance explicitly instead of counting
    /// on the transaction counter).
    pub fn advance(&self) {
        self.executed
            .fetch_max(self.shift_after, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Workload for HotspotShift {
    fn run_once(
        &self,
        _client: ClientId,
        txn: &mut SessionTxn<'_>,
        rng: &mut SmallRng,
    ) -> DbResult<()> {
        let seq = self
            .executed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let phase = &self.phases[usize::from(seq >= self.shift_after)];
        let a = phase.a_keys[self.zipf.sample(rng) as usize];
        let b = phase.b_keys[self.zipf.sample(rng) as usize];
        txn.read(&self.layout, a)?;
        txn.update(&self.layout, a, Ycsb::value_of(self.value_len, rng.gen()))?;
        txn.update(&self.layout, b, Ycsb::value_of(self.value_len, rng.gen()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use remus_cluster::{ClusterBuilder, Session};

    #[test]
    fn setup_loads_all_keys_across_nodes() {
        let cluster = ClusterBuilder::new(3).build();
        let ycsb = Ycsb::setup(
            &cluster,
            YcsbConfig {
                keys: 300,
                shards: 9,
                ..YcsbConfig::default()
            },
        );
        let session = Session::connect(&cluster, NodeId(1));
        let (rows, _) = session.run(|t| t.scan_table(&ycsb.layout)).unwrap();
        assert_eq!(rows.len(), 300);
        // Every node owns some shards.
        for node in cluster.nodes() {
            assert!(!node.data_shards().is_empty());
        }
    }

    #[test]
    fn workload_runs_reads_and_updates() {
        let cluster = ClusterBuilder::new(2).build();
        let ycsb = Arc::new(Ycsb::setup(
            &cluster,
            YcsbConfig {
                keys: 100,
                shards: 4,
                ..YcsbConfig::default()
            },
        ));
        let session = Session::connect(&cluster, NodeId(0));
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            session
                .run(|t| ycsb.run_once(ClientId(0), t, &mut rng))
                .unwrap();
        }
    }

    #[test]
    fn zipfian_is_skewed_and_bounded() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            let v = z.sample(&mut rng);
            assert!(v < 1000);
            counts[v as usize] += 1;
        }
        // Rank 0 must be far more popular than the median rank.
        assert!(counts[0] > 20 * counts[500].max(1));
        // And a meaningful share of all samples.
        assert!(counts[0] as f64 > 0.02 * 20_000.0);
    }

    #[test]
    fn zipfian_zeta_approximation_is_close() {
        // Compare approximate zeta against exact for n slightly above the
        // exact cutoff.
        let exact: f64 = (1..=12_000u64).map(|i| 1.0 / (i as f64).powf(0.99)).sum();
        let approx = Zipfian::zeta(12_000, 0.99);
        assert!((exact - approx).abs() / exact < 0.01, "{exact} vs {approx}");
    }

    #[test]
    fn hot_range_sampling_stays_in_range() {
        let cluster = ClusterBuilder::new(1).build();
        let ycsb = Ycsb::setup(
            &cluster,
            YcsbConfig {
                keys: 1000,
                shards: 2,
                distribution: KeyDistribution::HotRange(100, 200),
                ..YcsbConfig::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let k = ycsb.sample_key(&mut rng);
            assert!((100..200).contains(&k));
        }
    }

    #[test]
    fn keys_on_shard_all_map_back() {
        let cluster = ClusterBuilder::new(1).build();
        let ycsb = Ycsb::setup(
            &cluster,
            YcsbConfig {
                keys: 500,
                shards: 5,
                ..YcsbConfig::default()
            },
        );
        let shard = ycsb.layout.shard_ids().next().unwrap();
        let keys = ycsb.keys_on_shard(shard, 50);
        assert!(!keys.is_empty());
        for k in keys {
            assert_eq!(ycsb.layout.shard_for(k), shard);
        }
    }

    #[test]
    fn value_embeds_version() {
        let v = Ycsb::value_of(64, 0xDEAD);
        assert_eq!(v.len(), 64);
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 0xDEAD);
    }

    use remus_common::ShardId;

    fn shift_fixture(cluster: &Arc<remus_cluster::Cluster>) -> HotspotShift {
        let ycsb = Ycsb::setup(
            cluster,
            YcsbConfig {
                keys: 2000,
                shards: 4,
                ..YcsbConfig::default()
            },
        );
        HotspotShift::new(
            &ycsb,
            (ShardId(0), ShardId(1)),
            (ShardId(2), ShardId(3)),
            16,
            0.9,
            10,
        )
    }

    #[test]
    fn hotspot_shift_jumps_pairs_at_the_txn_boundary() {
        let cluster = ClusterBuilder::new(1).build();
        let shift = shift_fixture(&cluster);
        let session = Session::connect(&cluster, NodeId(0));
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(shift.phase(), 0);
        // Each transaction writes exactly the current phase's shard pair;
        // the per-window write counters expose which pair that was.
        let mut run = || {
            cluster.roll_load_window(1.0); // discard earlier traffic
            session
                .run(|t| shift.run_once(ClientId(0), t, &mut rng))
                .unwrap();
            let window = cluster.roll_load_window(1.0);
            let mut shards: Vec<ShardId> = window
                .shards
                .iter()
                .filter(|(_, load)| load.writes > 0.0)
                .map(|(&s, _)| s)
                .collect();
            shards.sort_unstable();
            shards
        };
        for _ in 0..10 {
            assert_eq!(run(), vec![ShardId(0), ShardId(1)], "pre-shift pair");
        }
        assert_eq!(shift.phase(), 1);
        assert_eq!(shift.executed(), 10);
        for _ in 0..5 {
            assert_eq!(run(), vec![ShardId(2), ShardId(3)], "post-shift pair");
        }
    }

    #[test]
    fn hotspot_shift_advance_forces_the_boundary() {
        let cluster = ClusterBuilder::new(1).build();
        let shift = shift_fixture(&cluster);
        assert_eq!(shift.phase(), 0);
        shift.advance();
        assert_eq!(shift.phase(), 1);
    }

    #[test]
    fn hotspot_shift_feeds_the_affinity_tracker() {
        let cluster = ClusterBuilder::new(1).build();
        let shift = shift_fixture(&cluster);
        let session = Session::connect(&cluster, NodeId(0));
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..8 {
            session
                .run(|t| shift.run_once(ClientId(0), t, &mut rng))
                .unwrap();
        }
        let window = cluster.roll_load_window(1.0);
        let pair = window
            .affinity
            .iter()
            .find(|&&(a, b, _)| (a, b) == (ShardId(0), ShardId(1)))
            .expect("hot pair shows up in the affinity window");
        assert_eq!(pair.2, 8, "every transaction wrote both shards");
    }
}
