//! Hybrid workloads A and B (paper §4.3).
//!
//! * **A** — real-time ingestion: alongside the YCSB clients, a batch
//!   client issues large insert transactions in a tight loop, each
//!   appending tuples with monotonically increasing primary keys starting
//!   from the current maximum, routed across shards and committed with
//!   2PC (the paper's `COPY` into the sharded table). Migration-induced
//!   aborts are retried with the same keys ("repeatable retry logic").
//! * **B** — HTAP: an analytical transaction scans the whole YCSB table
//!   and checks for duplicated primary keys across nodes — the paper's
//!   consistency probe (`count(*) = 1 group by aid`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use remus_cluster::{Cluster, Session};
use remus_common::metrics::Timeline;
use remus_common::{DbError, DbResult, NodeId};
use remus_shard::TableLayout;
use remus_storage::Value;

/// The batch-ingestion client of hybrid workload A.
pub struct BatchIngest {
    /// The YCSB table layout ingested into.
    pub layout: TableLayout,
    /// Tuples per batch transaction (paper: one million).
    pub batch_size: u64,
    /// Number of batch transactions (paper: 10).
    pub batches: u64,
    /// Payload size (paper: 1 KB).
    pub value_len: usize,
    /// Pause between consecutive batches; stretches the ingestion across
    /// the consolidation window like the paper's figures.
    pub pause: Duration,
    /// Next primary key (starts at the maximum existing key plus one).
    next_key: AtomicU64,
}

/// What the ingestion run did (Table 2's rows).
#[derive(Debug, Clone, Default)]
pub struct BatchIngestReport {
    /// Batches committed.
    pub committed: u64,
    /// Aborted attempts (each retried).
    pub aborted_attempts: u64,
    /// Total wall time of the ingestion.
    pub elapsed: Duration,
    /// Tuples ingested per second, per one-second bucket.
    pub tuple_rate: Vec<f64>,
    /// Abort ratio over attempts (Table 2).
    pub abort_ratio: f64,
}

impl BatchIngest {
    /// An ingestion client appending after `start_key`.
    pub fn new(
        layout: TableLayout,
        start_key: u64,
        batch_size: u64,
        batches: u64,
        value_len: usize,
    ) -> Self {
        BatchIngest {
            layout,
            batch_size,
            batches,
            value_len,
            pause: Duration::ZERO,
            next_key: AtomicU64::new(start_key),
        }
    }

    /// Sets the inter-batch pause.
    pub fn with_pause(mut self, pause: Duration) -> Self {
        self.pause = pause;
        self
    }

    /// Runs the ingestion loop on a session bound to `coordinator`
    /// (the batch client is collocated with one coordinator node, §4.3).
    /// `tuple_timeline`, when given, receives one event per ingested tuple
    /// (Figure 6's red-dashed-window throughput).
    pub fn run(
        &self,
        cluster: &Arc<Cluster>,
        coordinator: NodeId,
        tuple_timeline: Option<&Timeline>,
    ) -> BatchIngestReport {
        let session = Session::connect(cluster, coordinator);
        let started = Instant::now();
        let local_rate = Timeline::per_second();
        let mut report = BatchIngestReport::default();
        for _ in 0..self.batches {
            let first = self.next_key.fetch_add(self.batch_size, Ordering::SeqCst);
            let keys = first..first + self.batch_size;
            // Repeatable retry: the same key range until it commits.
            loop {
                match self.try_batch(&session, keys.clone()) {
                    Ok(()) => {
                        report.committed += 1;
                        if let Some(t) = tuple_timeline {
                            t.record_n(self.batch_size);
                        }
                        local_rate.record_n(self.batch_size);
                        break;
                    }
                    Err(e) if e.is_retryable() => {
                        report.aborted_attempts += 1;
                    }
                    Err(e) => panic!("batch ingestion failed unrecoverably: {e}"),
                }
            }
            if !self.pause.is_zero() {
                std::thread::sleep(self.pause);
            }
        }
        report.elapsed = started.elapsed();
        report.tuple_rate = local_rate.rates_per_sec();
        let attempts = report.committed + report.aborted_attempts;
        report.abort_ratio = if attempts == 0 {
            0.0
        } else {
            report.aborted_attempts as f64 / attempts as f64
        };
        report
    }

    fn try_batch(&self, session: &Session, keys: std::ops::Range<u64>) -> DbResult<()> {
        let value = Value::from(vec![7u8; self.value_len]);
        let mut txn = session.begin();
        for key in keys {
            match txn.insert(&self.layout, key, value.clone()) {
                Ok(()) => {}
                // A retried batch may find keys a half-failed... no:
                // aborts purge everything, but a *duplicate* means a
                // previous attempt actually committed (commit raced the
                // error report); treat the batch as done.
                Err(DbError::DuplicateKey) => {
                    txn.abort();
                    return Ok(());
                }
                Err(e) => {
                    txn.abort();
                    return Err(e);
                }
            }
        }
        txn.commit()?;
        Ok(())
    }
}

/// The analytical client of hybrid workload B.
pub struct AnalyticalClient {
    /// The table to scan.
    pub layout: TableLayout,
}

impl AnalyticalClient {
    /// Runs the duplicate-primary-key check in one snapshot transaction:
    /// returns `Ok(count)` with the number of distinct keys if no key
    /// appears twice across nodes, `Err` describing the inconsistency
    /// otherwise.
    pub fn check_consistency(
        &self,
        cluster: &Arc<Cluster>,
        coordinator: NodeId,
    ) -> DbResult<usize> {
        let session = Session::connect(cluster, coordinator);
        let (rows, _) = session.run(|t| t.scan_table(&self.layout))?;
        let mut keys: Vec<u64> = rows.into_iter().map(|(k, _)| k).collect();
        let total = keys.len();
        keys.sort_unstable();
        keys.dedup();
        if keys.len() != total {
            return Err(DbError::Internal(format!(
                "duplicate primary keys: {} rows, {} distinct",
                total,
                keys.len()
            )));
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_common::TableId;

    fn setup(nodes: usize) -> (Arc<Cluster>, TableLayout) {
        let cluster = remus_cluster::ClusterBuilder::new(nodes).build();
        let n = nodes as u32;
        let layout = cluster.create_table(TableId(1), 0, 6, |i| NodeId(i % n));
        (cluster, layout)
    }

    #[test]
    fn batch_ingest_inserts_monotone_keys_across_shards() {
        let (cluster, layout) = setup(2);
        let ingest = BatchIngest::new(layout, 1000, 50, 3, 16);
        let report = ingest.run(&cluster, NodeId(0), None);
        assert_eq!(report.committed, 3);
        assert_eq!(report.aborted_attempts, 0);
        assert_eq!(report.abort_ratio, 0.0);
        let session = Session::connect(&cluster, NodeId(1));
        let (rows, _) = session.run(|t| t.scan_table(&layout)).unwrap();
        assert_eq!(rows.len(), 150);
        let min = rows.iter().map(|(k, _)| *k).min().unwrap();
        let max = rows.iter().map(|(k, _)| *k).max().unwrap();
        assert_eq!((min, max), (1000, 1149));
    }

    #[test]
    fn analytical_check_passes_on_consistent_data() {
        let (cluster, layout) = setup(3);
        let ingest = BatchIngest::new(layout, 0, 40, 2, 16);
        ingest.run(&cluster, NodeId(0), None);
        let analytical = AnalyticalClient { layout };
        let count = analytical.check_consistency(&cluster, NodeId(2)).unwrap();
        assert_eq!(count, 80);
    }

    #[test]
    fn analytical_check_catches_duplicates() {
        let (cluster, layout) = setup(2);
        // Corrupt: the same key installed on two different shards.
        let shard_a = layout.shard_ids().next().unwrap();
        let shard_b = layout.shard_ids().nth(1).unwrap();
        let owner_a = cluster
            .current_owner(cluster.node(NodeId(0)), shard_a)
            .unwrap()
            .node;
        let owner_b = cluster
            .current_owner(cluster.node(NodeId(0)), shard_b)
            .unwrap()
            .node;
        cluster
            .node(owner_a)
            .storage
            .table(shard_a)
            .unwrap()
            .install_frozen(7, Value::from(vec![1]));
        cluster
            .node(owner_b)
            .storage
            .table(shard_b)
            .unwrap()
            .install_frozen(7, Value::from(vec![2]));
        let analytical = AnalyticalClient { layout };
        let err = analytical
            .check_consistency(&cluster, NodeId(0))
            .unwrap_err();
        assert!(matches!(err, DbError::Internal(_)));
    }

    #[test]
    fn ingest_timeline_records_tuples() {
        let (cluster, layout) = setup(1);
        let timeline = Timeline::per_second();
        let ingest = BatchIngest::new(layout, 0, 25, 2, 8);
        ingest.run(&cluster, NodeId(0), Some(&timeline));
        assert_eq!(timeline.buckets().iter().sum::<u64>(), 50);
    }
}
