//! Seeded determinism of the open-loop engine: the offered load is a pure
//! function of `(seed, client, pacing)` — identical across runs, worker
//! counts, and hosts. Execution timing may vary; the *schedule* may not.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use remus_cluster::{ClusterBuilder, Session, SessionTxn};
use remus_common::{ClientId, NodeId, TableId};
use remus_storage::Value;
use remus_workload::{arrival_schedule, EngineConfig, EngineReport, OpenLoopEngine, Pacing};

#[test]
fn schedules_are_pure_functions_of_seed_and_client() {
    for pacing in [
        Pacing::FixedRate {
            period: Duration::from_millis(3),
        },
        Pacing::Poisson {
            mean: Duration::from_millis(3),
        },
    ] {
        let horizon = Duration::from_secs(2);
        for client in 0..5u32 {
            let a = arrival_schedule(42, ClientId(client), pacing, horizon);
            let b = arrival_schedule(42, ClientId(client), pacing, horizon);
            assert_eq!(a, b, "same seed must reproduce the schedule exactly");
            assert!(!a.is_empty());
            assert!(a.iter().all(|&t| t < horizon));
        }
        let a = arrival_schedule(42, ClientId(0), pacing, horizon);
        let c = arrival_schedule(43, ClientId(0), pacing, horizon);
        assert_ne!(a, c, "a different seed must change the offered load");
    }
}

fn run_once(seed: u64, workers: usize) -> EngineReport {
    let cluster = ClusterBuilder::new(2).build();
    let layout = cluster.create_table(TableId(1), 0, 4, |i| NodeId(i % 2));
    let session = Session::connect(&cluster, NodeId(0));
    for k in 0..20 {
        session
            .run(|t| t.insert(&layout, k, Value::copy_from_slice(b"v")))
            .unwrap();
    }
    let workload = move |_c: ClientId, txn: &mut SessionTxn<'_>, rng: &mut SmallRng| {
        use rand::Rng;
        txn.read(&layout, rng.gen_range(0..20u64))?;
        Ok(())
    };
    let config = EngineConfig {
        clients: 6,
        workers,
        pacing: Pacing::Poisson {
            mean: Duration::from_millis(5),
        },
        seed,
        queue_bound: 1024, // generous: this test wants zero shed load
        horizon: Some(Duration::from_millis(400)),
        max_txns_per_client: None,
    };
    OpenLoopEngine::start(&cluster, config, Arc::new(workload)).join()
}

#[test]
fn same_seed_same_per_client_txn_counts() {
    let a = run_once(7, 2);
    let b = run_once(7, 2);
    assert!(a.offered > 0);
    assert_eq!(
        a.per_client_offered, b.per_client_offered,
        "same seed must offer identical per-client load"
    );
    // Nothing was shed, so executed counts are the offered counts.
    assert_eq!(a.dropped, 0);
    assert_eq!(b.dropped, 0);
    assert_eq!(a.per_client_offered, a.per_client_executed);
    assert_eq!(b.per_client_offered, b.per_client_executed);
    // And the engine followed the pure schedule exactly.
    for (c, &offered) in a.per_client_offered.iter().enumerate() {
        let sched = arrival_schedule(
            7,
            ClientId(c as u32),
            Pacing::Poisson {
                mean: Duration::from_millis(5),
            },
            Duration::from_millis(400),
        );
        assert_eq!(offered, sched.len() as u64, "client {c}");
    }
}

#[test]
fn offered_load_is_independent_of_worker_count() {
    let two = run_once(11, 2);
    let four = run_once(11, 4);
    assert_eq!(
        two.per_client_offered, four.per_client_offered,
        "worker pool size must not change the offered load"
    );
}
