//! Backpressure accounting of the open-loop engine: the per-worker queue
//! never exceeds its bound, and every generated arrival is accounted for
//! exactly once — executed or dropped, never lost.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use remus_cluster::{ClusterBuilder, Session, SessionTxn};
use remus_common::{ClientId, NodeId, TableId};
use remus_storage::Value;
use remus_workload::{Admission, BoundedQueue, EngineConfig, OpenLoopEngine, Pacing};

proptest! {
    /// Drive a bounded queue with an arbitrary push/pop sequence: depth
    /// never exceeds the bound, and pushes split exactly into admitted
    /// (later popped or still queued) and dropped.
    #[test]
    fn bounded_queue_accounts_exactly(
        bound in 1usize..12,
        ops in proptest::collection::vec(0u8..4, 1..300)
    ) {
        let mut q = BoundedQueue::new(bound);
        let mut pushes = 0u64;
        let mut admitted = 0u64;
        let mut popped = 0u64;
        for op in ops {
            if op < 3 {
                // Bias toward pushes so the bound is actually hit.
                pushes += 1;
                match q.push(pushes) {
                    Admission::Queued => admitted += 1,
                    Admission::Dropped => {}
                }
            } else if q.pop().is_some() {
                popped += 1;
            }
            prop_assert!(q.len() <= q.bound(), "depth {} > bound {}", q.len(), q.bound());
            prop_assert!(q.high_water() <= q.bound());
            prop_assert_eq!(q.dropped(), pushes - admitted);
            prop_assert_eq!(q.len() as u64, admitted - popped);
        }
        // Drain: FIFO order of the admitted items.
        let mut last = 0u64;
        while let Some(v) = q.pop() {
            prop_assert!(v > last);
            last = v;
            popped += 1;
        }
        prop_assert_eq!(popped, admitted);
    }
}

fn scale_cluster() -> (Arc<remus_cluster::Cluster>, remus_shard::TableLayout) {
    let cluster = ClusterBuilder::new(1).build();
    let layout = cluster.create_table(TableId(1), 0, 2, |_| NodeId(0));
    let session = Session::connect(&cluster, NodeId(0));
    session
        .run(|t| t.insert(&layout, 1, Value::copy_from_slice(b"v")))
        .unwrap();
    (cluster, layout)
}

/// An overloaded worker (slow transactions, fast schedule, tiny queue)
/// must shed load — and the books must still balance exactly.
#[test]
fn saturated_engine_sheds_and_accounts_exactly() {
    let (cluster, layout) = scale_cluster();
    let workload = move |_c: ClientId, txn: &mut SessionTxn<'_>, _r: &mut SmallRng| {
        std::thread::sleep(Duration::from_millis(2));
        txn.read(&layout, 1)?;
        Ok(())
    };
    let config = EngineConfig {
        clients: 1,
        workers: 1,
        pacing: Pacing::FixedRate {
            period: Duration::from_micros(500),
        },
        seed: 3,
        queue_bound: 4,
        horizon: Some(Duration::from_millis(300)),
        max_txns_per_client: None,
    };
    let report = OpenLoopEngine::start(&cluster, config, Arc::new(workload)).join();
    assert!(report.dropped > 0, "a saturated queue must shed load");
    assert_eq!(
        report.offered,
        report.executed + report.dropped,
        "every arrival is executed or dropped, never lost"
    );
    assert!(
        report.queue_high_water <= 4,
        "queue depth exceeded its bound"
    );
    assert!(report.delivered_ratio() < 1.0);
}

/// An idle worker (slow schedule, fast transactions) must park instead of
/// spinning, shed nothing, and execute its whole schedule.
#[test]
fn idle_engine_parks_and_sheds_nothing() {
    let (cluster, layout) = scale_cluster();
    let workload = move |_c: ClientId, txn: &mut SessionTxn<'_>, _r: &mut SmallRng| {
        txn.read(&layout, 1)?;
        Ok(())
    };
    let config = EngineConfig {
        clients: 2,
        workers: 1,
        pacing: Pacing::FixedRate {
            period: Duration::from_millis(20),
        },
        seed: 3,
        queue_bound: 4,
        horizon: Some(Duration::from_millis(300)),
        max_txns_per_client: None,
    };
    let report = OpenLoopEngine::start(&cluster, config, Arc::new(workload)).join();
    assert_eq!(report.dropped, 0);
    assert_eq!(report.offered, report.executed);
    assert!(report.parks > 0, "an idle worker must park");
    assert!(report.parked > Duration::ZERO);
    assert!(report.metrics.counters.commits() > 0);
}

/// Stopping early discards the pending schedule but still drains admitted
/// arrivals, keeping the accounting exact.
#[test]
fn early_stop_keeps_books_balanced() {
    let (cluster, layout) = scale_cluster();
    let workload = move |_c: ClientId, txn: &mut SessionTxn<'_>, _r: &mut SmallRng| {
        txn.read(&layout, 1)?;
        Ok(())
    };
    let config = EngineConfig {
        clients: 4,
        workers: 2,
        pacing: Pacing::Poisson {
            mean: Duration::from_millis(1),
        },
        seed: 9,
        queue_bound: 16,
        horizon: None,
        max_txns_per_client: None,
    };
    let engine = OpenLoopEngine::start(&cluster, config, Arc::new(workload));
    engine.run_for(Duration::from_millis(150));
    let report = engine.stop();
    assert!(report.offered > 0);
    assert_eq!(report.offered, report.executed + report.dropped);
}
