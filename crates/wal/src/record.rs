//! WAL record types.
//!
//! The record vocabulary follows §3.3/§3.5.2 of the paper: row-level change
//! records tagged with their shard (the propagation process filters on the
//! migrating shards), plus the transaction-control records MOCC relies on —
//! the *validation record* (a special 2PC prepare record), commit/abort,
//! and the commit-prepared / rollback-prepared decisions for transactions
//! that went through a prepare.

use remus_common::{ShardId, Timestamp, TxnId};
use remus_storage::{Key, Value};

/// The kind of row-level change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Insert a new tuple.
    Insert,
    /// Update an existing tuple (payload carries the full new image).
    Update,
    /// Delete a tuple.
    Delete,
    /// Explicit row-level lock (`SELECT ... FOR UPDATE`); propagated so the
    /// destination re-acquires it during replay (§3.5.2).
    Lock,
}

/// One row-level change, identified by primary key (§3.3: every propagated
/// record includes the primary key of the modified tuple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOp {
    /// Shard the change belongs to.
    pub shard: ShardId,
    /// Primary key of the modified tuple.
    pub key: Key,
    /// What happened.
    pub kind: WriteKind,
    /// New tuple image for inserts/updates; empty otherwise.
    pub value: Value,
}

/// The operation a WAL record describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// First record of a transaction on this node, carrying its start
    /// timestamp — the propagation process needs it to run the shadow
    /// transaction "with the same start timestamp" (§3.3).
    Begin(Timestamp),
    /// A row-level change by the transaction.
    Write(WriteOp),
    /// Validation record / 2PC prepare (MOCC validation stage trigger).
    Prepare,
    /// Commit of a transaction that never prepared (single-node fast path),
    /// carrying its commit timestamp.
    Commit(Timestamp),
    /// Abort of a transaction that never prepared.
    Abort,
    /// Commit decision for a prepared transaction.
    CommitPrepared(Timestamp),
    /// Rollback decision for a prepared transaction.
    RollbackPrepared,
}

impl LogOp {
    /// True for the records that finish a transaction on this node.
    pub fn is_resolution(&self) -> bool {
        matches!(
            self,
            LogOp::Commit(_) | LogOp::Abort | LogOp::CommitPrepared(_) | LogOp::RollbackPrepared
        )
    }

    /// The commit timestamp carried, for commit-flavored records.
    pub fn commit_ts(&self) -> Option<Timestamp> {
        match self {
            LogOp::Commit(ts) | LogOp::CommitPrepared(ts) => Some(*ts),
            _ => None,
        }
    }
}

/// A WAL record: which transaction did what. The LSN is assigned by the
/// log on append and lives in [`crate::log::Wal`]'s envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The transaction this record belongs to.
    pub xid: TxnId,
    /// The operation.
    pub op: LogOp,
}

impl LogRecord {
    /// Convenience constructor.
    pub fn new(xid: TxnId, op: LogOp) -> Self {
        LogRecord { xid, op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_common::NodeId;

    #[test]
    fn resolution_classification() {
        assert!(LogOp::Commit(Timestamp(1)).is_resolution());
        assert!(LogOp::Abort.is_resolution());
        assert!(LogOp::CommitPrepared(Timestamp(1)).is_resolution());
        assert!(LogOp::RollbackPrepared.is_resolution());
        assert!(!LogOp::Prepare.is_resolution());
        let w = WriteOp {
            shard: ShardId(1),
            key: 2,
            kind: WriteKind::Insert,
            value: Value::new(),
        };
        assert!(!LogOp::Write(w).is_resolution());
    }

    #[test]
    fn commit_ts_extraction() {
        assert_eq!(LogOp::Commit(Timestamp(5)).commit_ts(), Some(Timestamp(5)));
        assert_eq!(
            LogOp::CommitPrepared(Timestamp(6)).commit_ts(),
            Some(Timestamp(6))
        );
        assert_eq!(LogOp::Abort.commit_ts(), None);
        assert_eq!(LogOp::Prepare.commit_ts(), None);
    }

    #[test]
    fn record_construction() {
        let xid = TxnId::new(NodeId(1), 9);
        let r = LogRecord::new(xid, LogOp::Prepare);
        assert_eq!(r.xid, xid);
        assert_eq!(r.op, LogOp::Prepare);
    }
}
