//! Binary codec for [`LogRecord`] — the payload format of the on-disk
//! segment log (DESIGN.md §10).
//!
//! Every encoded record starts with a one-byte format version so the
//! vocabulary can grow without breaking old segments. All integers are
//! little-endian and fixed-width: the record stream must be byte-exact
//! and self-describing, with no varint ambiguity, so the torn-tail
//! detector can reason about truncation offsets. The frame checksum lives
//! one layer up (the segment framing in [`crate::backend::file`]); this
//! module also hosts the CRC-32 implementation it uses, hand-rolled
//! because the workspace builds offline with no checksum crate.

use remus_common::{DbError, DbResult, ShardId, Timestamp, TxnId};
use remus_storage::Value;

use crate::record::{LogOp, LogRecord, WriteKind, WriteOp};

/// Codec format version written as the first byte of every encoded record.
pub const CODEC_VERSION: u8 = 1;

// Operation tags (second byte). Frozen: append-only on format evolution.
const TAG_BEGIN: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_PREPARE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_ABORT: u8 = 5;
const TAG_COMMIT_PREPARED: u8 = 6;
const TAG_ROLLBACK_PREPARED: u8 = 7;

// Write kinds (one byte inside a TAG_WRITE body).
const KIND_INSERT: u8 = 1;
const KIND_UPDATE: u8 = 2;
const KIND_DELETE: u8 = 3;
const KIND_LOCK: u8 = 4;

/// Encodes a record into `out`: version, xid, op tag, op body.
pub fn encode_record(record: &LogRecord, out: &mut Vec<u8>) {
    out.push(CODEC_VERSION);
    out.extend_from_slice(&record.xid.0.to_le_bytes());
    match &record.op {
        LogOp::Begin(ts) => {
            out.push(TAG_BEGIN);
            out.extend_from_slice(&ts.0.to_le_bytes());
        }
        LogOp::Write(w) => {
            out.push(TAG_WRITE);
            out.extend_from_slice(&w.shard.raw().to_le_bytes());
            out.extend_from_slice(&w.key.to_le_bytes());
            out.push(match w.kind {
                WriteKind::Insert => KIND_INSERT,
                WriteKind::Update => KIND_UPDATE,
                WriteKind::Delete => KIND_DELETE,
                WriteKind::Lock => KIND_LOCK,
            });
            out.extend_from_slice(&(w.value.len() as u32).to_le_bytes());
            out.extend_from_slice(&w.value);
        }
        LogOp::Prepare => out.push(TAG_PREPARE),
        LogOp::Commit(ts) => {
            out.push(TAG_COMMIT);
            out.extend_from_slice(&ts.0.to_le_bytes());
        }
        LogOp::Abort => out.push(TAG_ABORT),
        LogOp::CommitPrepared(ts) => {
            out.push(TAG_COMMIT_PREPARED);
            out.extend_from_slice(&ts.0.to_le_bytes());
        }
        LogOp::RollbackPrepared => out.push(TAG_ROLLBACK_PREPARED),
    }
}

/// Encodes a record into a fresh buffer.
pub fn encode_record_vec(record: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    encode_record(record, &mut out);
    out
}

/// Decodes one record from `buf`, which must contain exactly one encoded
/// record (the segment framing delimits records; trailing bytes are a
/// corruption signal, not a second record).
pub fn decode_record(buf: &[u8]) -> DbResult<LogRecord> {
    let mut cur = Cursor { buf, at: 0 };
    let version = cur.u8()?;
    if version != CODEC_VERSION {
        return Err(DbError::WalCorrupt(format!(
            "record codec version {version}, expected {CODEC_VERSION}"
        )));
    }
    let xid = TxnId(cur.u64()?);
    let op = match cur.u8()? {
        TAG_BEGIN => LogOp::Begin(Timestamp(cur.u64()?)),
        TAG_WRITE => {
            let shard = ShardId(cur.u64()?);
            let key = cur.u64()?;
            let kind = match cur.u8()? {
                KIND_INSERT => WriteKind::Insert,
                KIND_UPDATE => WriteKind::Update,
                KIND_DELETE => WriteKind::Delete,
                KIND_LOCK => WriteKind::Lock,
                k => return Err(DbError::WalCorrupt(format!("unknown write kind {k}"))),
            };
            let len = cur.u32()? as usize;
            let value = Value::copy_from_slice(cur.bytes(len)?);
            LogOp::Write(WriteOp {
                shard,
                key,
                kind,
                value,
            })
        }
        TAG_PREPARE => LogOp::Prepare,
        TAG_COMMIT => LogOp::Commit(Timestamp(cur.u64()?)),
        TAG_ABORT => LogOp::Abort,
        TAG_COMMIT_PREPARED => LogOp::CommitPrepared(Timestamp(cur.u64()?)),
        TAG_ROLLBACK_PREPARED => LogOp::RollbackPrepared,
        t => return Err(DbError::WalCorrupt(format!("unknown op tag {t}"))),
    };
    if cur.at != buf.len() {
        return Err(DbError::WalCorrupt(format!(
            "{} trailing bytes after record",
            buf.len() - cur.at
        )));
    }
    Ok(LogRecord { xid, op })
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn bytes(&mut self, n: usize) -> DbResult<&[u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(DbError::WalCorrupt(format!(
                "record truncated: wanted {n} bytes at offset {}",
                self.at
            ))),
        }
    }

    fn u8(&mut self) -> DbResult<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
}

/// CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant) over `data`.
///
/// Table-driven, one byte at a time — plenty for the record sizes here,
/// and dependency-free for the offline build.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// The standard reflected CRC-32 table for polynomial 0xEDB88320.
static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use remus_common::NodeId;

    fn sample_ops() -> Vec<LogOp> {
        vec![
            LogOp::Begin(Timestamp(7)),
            LogOp::Write(WriteOp {
                shard: ShardId(3),
                key: 42,
                kind: WriteKind::Update,
                value: Value::copy_from_slice(b"hello"),
            }),
            LogOp::Write(WriteOp {
                shard: ShardId(0),
                key: 0,
                kind: WriteKind::Delete,
                value: Value::new(),
            }),
            LogOp::Prepare,
            LogOp::Commit(Timestamp(9)),
            LogOp::Abort,
            LogOp::CommitPrepared(Timestamp(11)),
            LogOp::RollbackPrepared,
        ]
    }

    #[test]
    fn every_op_round_trips() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let rec = LogRecord::new(TxnId::new(NodeId(2), i as u64 + 1), op);
            let bytes = encode_record_vec(&rec);
            assert_eq!(decode_record(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let rec = LogRecord::new(TxnId::new(NodeId(0), 1), LogOp::Prepare);
        let mut bytes = encode_record_vec(&rec);
        bytes[0] = 99;
        assert!(matches!(decode_record(&bytes), Err(DbError::WalCorrupt(_))));
    }

    #[test]
    fn truncated_and_padded_buffers_are_rejected() {
        let rec = LogRecord::new(
            TxnId::new(NodeId(1), 5),
            LogOp::Write(WriteOp {
                shard: ShardId(1),
                key: 9,
                kind: WriteKind::Insert,
                value: Value::copy_from_slice(b"payload"),
            }),
        );
        let bytes = encode_record_vec(&rec);
        for cut in 0..bytes.len() {
            assert!(
                decode_record(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_record(&padded).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }
}
