//! Per-transaction update cache queues (paper §3.3).
//!
//! The propagation process builds one queue per transaction it encounters
//! in the WAL, caching the transaction's changes to the migrating shards.
//! Queues of transactions that turn out to be aborted, or committed at or
//! before the snapshot timestamp, are dropped. Large write sets spill to
//! disk above a threshold; when such a transaction is finally propagated,
//! its spilled records are reloaded and sent in batches — modeled here by
//! counting spill batches so the caller can charge the configured reload
//! latency.

use crate::record::WriteOp;

/// The cached changes of one in-flight source transaction.
#[derive(Debug, Default)]
pub struct UpdateCacheQueue {
    /// In-memory records (below the spill threshold).
    resident: Vec<WriteOp>,
    /// Records spilled "to disk".
    spilled: Vec<WriteOp>,
    spill_threshold: usize,
}

impl UpdateCacheQueue {
    /// An empty queue that spills above `spill_threshold` resident records.
    pub fn new(spill_threshold: usize) -> Self {
        UpdateCacheQueue {
            resident: Vec::new(),
            spilled: Vec::new(),
            spill_threshold,
        }
    }

    /// Caches one change record.
    pub fn push(&mut self, op: WriteOp) {
        if self.resident.len() >= self.spill_threshold {
            self.spilled.push(op);
        } else {
            self.resident.push(op);
        }
    }

    /// Bulk-appends a drained batch of change records, preserving order.
    pub fn push_all(&mut self, ops: impl IntoIterator<Item = WriteOp>) {
        for op in ops {
            self.push(op);
        }
    }

    /// Total cached records.
    pub fn len(&self) -> usize {
        self.resident.len() + self.spilled.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if any records went to the spill area.
    pub fn spilled(&self) -> bool {
        !self.spilled.is_empty()
    }

    /// Number of reload batches of size `batch` needed for the spilled part
    /// (the caller charges `spill_reload_latency` per batch, §3.3).
    pub fn spill_batches(&self, batch: usize) -> usize {
        assert!(batch > 0, "batch size must be positive");
        self.spilled.len().div_ceil(batch)
    }

    /// Consumes the queue, yielding all records in original order
    /// (resident first, then reloaded spilled records).
    pub fn into_ops(self) -> Vec<WriteOp> {
        let mut out = self.resident;
        out.extend(self.spilled);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WriteKind;
    use remus_common::ShardId;
    use remus_storage::Value;

    fn op(key: u64) -> WriteOp {
        WriteOp {
            shard: ShardId(1),
            key,
            kind: WriteKind::Update,
            value: Value::new(),
        }
    }

    #[test]
    fn preserves_order() {
        let mut q = UpdateCacheQueue::new(100);
        for k in 0..5 {
            q.push(op(k));
        }
        let keys: Vec<u64> = q.into_ops().iter().map(|o| o.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn spills_above_threshold_and_keeps_order() {
        let mut q = UpdateCacheQueue::new(3);
        for k in 0..10 {
            q.push(op(k));
        }
        assert!(q.spilled());
        assert_eq!(q.len(), 10);
        assert_eq!(q.spill_batches(4), 2); // 7 spilled records / 4 per batch
        let keys: Vec<u64> = q.into_ops().iter().map(|o| o.key).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn push_all_matches_sequential_pushes_across_spill() {
        let mut bulk = UpdateCacheQueue::new(3);
        bulk.push_all((0..10).map(op));
        let mut seq = UpdateCacheQueue::new(3);
        for k in 0..10 {
            seq.push(op(k));
        }
        assert_eq!(bulk.spilled(), seq.spilled());
        let b: Vec<u64> = bulk.into_ops().iter().map(|o| o.key).collect();
        let s: Vec<u64> = seq.into_ops().iter().map(|o| o.key).collect();
        assert_eq!(b, s);
    }

    #[test]
    fn small_queue_never_spills() {
        let mut q = UpdateCacheQueue::new(100);
        q.push(op(1));
        assert!(!q.spilled());
        assert_eq!(q.spill_batches(8), 0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        UpdateCacheQueue::new(2).spill_batches(0);
    }
}
