//! The trivial in-memory durability backend (the default).

use std::sync::atomic::{AtomicU64, Ordering};

use remus_common::DbResult;

use crate::backend::WalBackend;
use crate::log::Lsn;
use crate::record::LogRecord;

/// In-memory "durability": an append is durable the moment it lands in the
/// log, no fsyncs ever happen, and a crash loses the whole log. This is the
/// pre-durability behavior every existing test and bench runs on.
#[derive(Debug, Default)]
pub struct MemBackend {
    tail: AtomicU64,
}

impl MemBackend {
    /// A fresh backend with nothing staged.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WalBackend for MemBackend {
    fn stage(&self, lsn: Lsn, _record: &LogRecord) {
        self.tail.store(lsn.0, Ordering::Release);
    }

    fn wait_durable(&self, _lsn: Lsn) -> DbResult<()> {
        Ok(())
    }

    fn durable_lsn(&self) -> Lsn {
        Lsn(self.tail.load(Ordering::Acquire))
    }

    fn fsyncs(&self) -> u64 {
        0
    }

    fn shutdown(&self) {}

    fn crash(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogOp, LogRecord};
    use remus_common::TxnId;

    #[test]
    fn everything_is_instantly_durable() {
        let b = MemBackend::new();
        assert_eq!(b.durable_lsn(), Lsn(0));
        b.stage(Lsn(1), &LogRecord::new(TxnId(1), LogOp::Prepare));
        assert_eq!(b.durable_lsn(), Lsn(1));
        b.wait_durable(Lsn(1)).unwrap();
        assert_eq!(b.fsyncs(), 0);
    }
}
