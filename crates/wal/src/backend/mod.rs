//! Durability backends for the write-ahead log.
//!
//! The in-memory [`Wal`](crate::Wal) stays the authoritative *read* path
//! for replay and propagation regardless of backend; a [`WalBackend`] is
//! purely the durability half: it sees every record as it is appended
//! (still under the log's append lock, so in LSN order), persists them,
//! and answers "is LSN n durable yet?" for group commit.
//!
//! Two implementations exist: [`MemBackend`] (the default — everything is
//! "durable" instantly and a restart loses the log) and [`FileBackend`]
//! (the on-disk segment log of DESIGN.md §10 with fsync-coalescing group
//! commit and torn-tail-tolerant reopen).

pub mod file;
pub mod mem;

use std::fmt;
use std::sync::Arc;

use remus_common::DbResult;

use crate::log::Lsn;
use crate::record::LogRecord;

pub use file::{FileBackend, FsyncData, RecoveredLog, SyncPolicy};
pub use mem::MemBackend;

/// The durability half of a [`Wal`](crate::Wal).
///
/// `stage` is invoked under the log's append mutex, so implementations
/// observe records in strictly increasing, dense LSN order and may treat
/// that as an invariant. Everything else can be called from any thread.
pub trait WalBackend: Send + Sync + fmt::Debug {
    /// Accepts the record just appended at `lsn` for persistence. Must not
    /// block on I/O (the caller holds the append lock); file backends hand
    /// the encoded frame to a background flusher.
    fn stage(&self, lsn: Lsn, record: &LogRecord);

    /// Blocks until every record with LSN ≤ `lsn` is durable — for the
    /// file backend, until the fsync of the group-commit batch containing
    /// `lsn` has completed.
    fn wait_durable(&self, lsn: Lsn) -> DbResult<()>;

    /// Highest LSN known durable.
    fn durable_lsn(&self) -> Lsn;

    /// Number of fsync calls issued so far (0 for in-memory).
    fn fsyncs(&self) -> u64;

    /// Notification that the in-memory log dropped all records ≤ `lsn`;
    /// the backend may reclaim whole segments strictly below that point.
    fn truncated_until(&self, _lsn: Lsn) {}

    /// Graceful stop: persist everything already staged, then stop
    /// background work. Idempotent.
    fn shutdown(&self);

    /// Simulated process kill: discard staged-but-unsynced records and stop
    /// background work *without* a final sync. What was already durable
    /// stays on disk; everything else is lost — exactly the prefix
    /// semantics a real crash gives. Idempotent.
    fn crash(&self);
}

/// Shared handle alias used by the log.
pub type BackendHandle = Arc<dyn WalBackend>;
