//! The file-backed segment log: frozen on-disk v1 format, group commit
//! with fsync coalescing, and a torn-tail-tolerant opener.
//!
//! # On-disk format (v1, frozen — see DESIGN.md §10)
//!
//! A node's log is a directory of segment files named
//! `wal-<first_lsn>.seg`. Each segment starts with a 20-byte header:
//!
//! ```text
//! magic "RMWAL1\0\0" (8 bytes) | version u32 LE (= 1) | first_lsn u64 LE
//! ```
//!
//! followed by length-prefixed record frames:
//!
//! ```text
//! payload_len u32 LE | crc32 u32 LE | payload
//! payload = lsn u64 LE | codec-encoded LogRecord
//! ```
//!
//! The CRC covers the payload (LSN included). LSNs must be dense and
//! monotonic within and across segments. On reopen, the first structurally
//! bad frame (short frame, CRC mismatch, LSN break) in the **newest**
//! segment is treated as a torn tail: the file is truncated at the frame
//! boundary and recovery proceeds with the prefix. The same damage in any
//! older segment is mid-log corruption and hard-fails with
//! [`DbError::WalCorrupt`].
//!
//! # Group commit
//!
//! Appends are staged (already encoded) under the log's append lock; a
//! background flusher drains the staging buffer in batches, writes the
//! frames, issues **one** fsync per batch via the [`SyncPolicy`], then
//! advances the durable LSN and wakes every committer waiting in
//! [`WalBackend::wait_durable`]. A commit therefore waits exactly for the
//! flusher batch containing its LSN, and concurrent committers share
//! fsyncs (`wal.fsyncs` ≪ `wal.appends` under load).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use remus_common::{DbError, DbResult, WalConfig};

use crate::backend::WalBackend;
use crate::codec::{self, crc32};
use crate::log::Lsn;
use crate::record::LogRecord;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"RMWAL1\0\0";
/// On-disk format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Bytes of the segment header (magic + version + first LSN).
pub const SEGMENT_HEADER_LEN: usize = 8 + 4 + 8;
/// Bytes of a frame prefix (payload length + CRC).
pub const FRAME_PREFIX_LEN: usize = 4 + 4;
/// Sanity ceiling on a single frame payload; anything larger is damage.
const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

/// How a sync is performed — the seam the group-commit fault tests mock.
///
/// The production policy is [`FsyncData`]. Tests substitute blocking or
/// failing policies to prove ordering (no commit acknowledged before its
/// batch's sync returns) and error propagation.
pub trait SyncPolicy: Send + Sync + std::fmt::Debug {
    /// Makes `file`'s written data durable.
    fn sync(&self, file: &File) -> io::Result<()>;
}

/// The production sync policy: `fdatasync`.
#[derive(Debug, Default)]
pub struct FsyncData;

impl SyncPolicy for FsyncData {
    fn sync(&self, file: &File) -> io::Result<()> {
        file.sync_data()
    }
}

/// What the opener recovered from a segment directory.
#[derive(Debug)]
pub struct RecoveredLog {
    /// LSN of the record *before* the first recovered one (0 for a log
    /// that still starts at LSN 1).
    pub base: u64,
    /// Recovered records, dense from `base + 1`.
    pub records: Vec<LogRecord>,
    /// Torn-tail truncations performed during open (0 or 1).
    pub torn_tails: u64,
}

impl RecoveredLog {
    /// LSN of the newest recovered record.
    pub fn tail(&self) -> u64 {
        self.base + self.records.len() as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Run,
    Drain,
    Abandon,
}

#[derive(Debug)]
struct Staging {
    frames: Vec<(u64, Vec<u8>)>,
    mode: Mode,
}

#[derive(Debug)]
struct DurableState {
    lsn: u64,
    error: Option<String>,
    /// Set (under `durable`) when the flusher thread returns, for any
    /// reason. Once true, no LSN beyond `lsn` can ever become durable, so
    /// waiters fail immediately instead of sleeping out their timeout.
    flusher_exited: bool,
}

#[derive(Debug)]
struct Shared {
    staged: Mutex<Staging>,
    staged_cv: Condvar,
    durable: Mutex<DurableState>,
    durable_cv: Condvar,
    fsyncs: AtomicU64,
    /// Live segments as `(first_lsn, path)`, oldest first. The flusher
    /// pushes on rotation; `truncated_until` pops reclaimed prefixes.
    segments: Mutex<Vec<(u64, PathBuf)>>,
}

/// The file-backed [`WalBackend`]. See the module docs for the format and
/// the group-commit protocol.
#[derive(Debug)]
pub struct FileBackend {
    shared: Arc<Shared>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl FileBackend {
    /// Opens (or creates) the segment directory at `dir`, recovering every
    /// intact record, truncating a torn tail in the newest segment, and
    /// hard-failing on mid-log corruption. Returns the running backend
    /// (flusher started, positioned after the recovered tail) plus the
    /// recovered records for the in-memory log to repopulate from.
    pub fn open(
        dir: &Path,
        config: &WalConfig,
        sync: Arc<dyn SyncPolicy>,
    ) -> DbResult<(FileBackend, RecoveredLog)> {
        fs::create_dir_all(dir).map_err(wal_io)?;
        let mut segs = list_segments(dir)?;
        segs.sort_by_key(|(lsn, _)| *lsn);

        let mut recovered = RecoveredLog {
            base: 0,
            records: Vec::new(),
            torn_tails: 0,
        };
        let mut live_segments: Vec<(u64, PathBuf)> = Vec::new();
        let mut expected: Option<u64> = None;
        let last_idx = segs.len().wrapping_sub(1);
        for (i, (name_lsn, path)) in segs.iter().enumerate() {
            let is_last = i == last_idx;
            match read_segment(path, *name_lsn, expected, is_last, &mut recovered)? {
                SegmentFate::Kept => live_segments.push((*name_lsn, path.clone())),
                SegmentFate::Removed => {}
            }
            expected = Some(recovered.tail() + 1);
        }

        let shared = Arc::new(Shared {
            staged: Mutex::new(Staging {
                frames: Vec::new(),
                mode: Mode::Run,
            }),
            staged_cv: Condvar::new(),
            durable: Mutex::new(DurableState {
                lsn: recovered.tail(),
                error: None,
                flusher_exited: false,
            }),
            durable_cv: Condvar::new(),
            fsyncs: AtomicU64::new(0),
            segments: Mutex::new(live_segments),
        });
        let io = FlusherIo {
            dir: dir.to_path_buf(),
            segment_bytes: config.segment_bytes.max(SEGMENT_HEADER_LEN as u64 + 1),
            batch: config.group_commit_batch.max(1),
            sync,
            cur: None,
            cur_bytes: 0,
        };
        let flusher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wal-flusher".into())
                .spawn(move || run_flusher(shared, io))
                .map_err(wal_io)?
        };
        Ok((
            FileBackend {
                shared,
                flusher: Mutex::new(Some(flusher)),
            },
            recovered,
        ))
    }

    fn stop(&self, mode: Mode) {
        let handle = self.flusher.lock().take();
        {
            let mut st = self.shared.staged.lock();
            st.mode = mode;
        }
        self.shared.staged_cv.notify_all();
        if let Some(h) = handle {
            let _ = h.join();
        }
        if mode == Mode::Abandon {
            let mut d = self.shared.durable.lock();
            if d.error.is_none() {
                d.error = Some("wal backend crashed".to_string());
            }
            drop(d);
            self.shared.durable_cv.notify_all();
        }
    }
}

impl WalBackend for FileBackend {
    fn stage(&self, lsn: Lsn, record: &LogRecord) {
        let frame = encode_frame(lsn.0, record);
        let mut st = self.shared.staged.lock();
        if st.mode != Mode::Run {
            // The flusher is stopping or gone: this frame can never become
            // durable, so dropping it (the caller's wait_durable fails
            // fast) beats buffering it unboundedly.
            return;
        }
        st.frames.push((lsn.0, frame));
        drop(st);
        self.shared.staged_cv.notify_one();
    }

    fn wait_durable(&self, lsn: Lsn) -> DbResult<()> {
        let mut d = self.shared.durable.lock();
        loop {
            if d.lsn >= lsn.0 {
                return Ok(());
            }
            if let Some(e) = &d.error {
                return Err(DbError::Internal(e.clone()));
            }
            if d.flusher_exited {
                return Err(DbError::Internal(format!(
                    "wal backend stopped before {lsn} became durable"
                )));
            }
            if self
                .shared
                .durable_cv
                .wait_for(&mut d, Duration::from_secs(10))
                .timed_out()
            {
                return Err(DbError::Timeout("wal group commit"));
            }
        }
    }

    fn durable_lsn(&self) -> Lsn {
        Lsn(self.shared.durable.lock().lsn)
    }

    fn fsyncs(&self) -> u64 {
        self.shared.fsyncs.load(Ordering::Relaxed)
    }

    fn truncated_until(&self, lsn: Lsn) {
        let mut segs = self.shared.segments.lock();
        // A segment is reclaimable once the *next* segment starts at or
        // below lsn + 1 (every record in it is then ≤ lsn). The newest
        // segment is never reclaimed: the flusher may still append to it.
        while segs.len() > 1 && segs[1].0 <= lsn.0 + 1 {
            let (_, path) = segs.remove(0);
            let _ = fs::remove_file(path);
        }
    }

    fn shutdown(&self) {
        self.stop(Mode::Drain);
    }

    fn crash(&self) {
        self.stop(Mode::Abandon);
    }
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds one on-disk frame for `record` at `lsn`.
fn encode_frame(lsn: u64, record: &LogRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(40);
    payload.extend_from_slice(&lsn.to_le_bytes());
    codec::encode_record(record, &mut payload);
    let crc = crc32(&payload);
    let mut frame = Vec::with_capacity(FRAME_PREFIX_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

struct FlusherIo {
    dir: PathBuf,
    segment_bytes: u64,
    batch: usize,
    sync: Arc<dyn SyncPolicy>,
    cur: Option<File>,
    cur_bytes: u64,
}

impl FlusherIo {
    fn write_batch(&mut self, shared: &Shared, batch: &[(u64, Vec<u8>)]) -> io::Result<()> {
        for (lsn, frame) in batch {
            if self.cur.is_none() || self.cur_bytes >= self.segment_bytes {
                self.rotate(shared, *lsn)?;
            }
            let f = self.cur.as_mut().expect("rotate opened a segment");
            f.write_all(frame)?;
            self.cur_bytes += frame.len() as u64;
        }
        let f = self.cur.as_ref().expect("batch wrote to a segment");
        self.sync.sync(f)?;
        shared.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn rotate(&mut self, shared: &Shared, first_lsn: u64) -> io::Result<()> {
        // Seal the finished segment before opening the next so that, after
        // a crash, only the newest segment can ever hold a torn tail.
        if let Some(f) = &self.cur {
            self.sync.sync(f)?;
            shared.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        let path = self.dir.join(segment_file_name(first_lsn));
        let mut f = File::create(&path)?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
        header.extend_from_slice(&SEGMENT_MAGIC);
        header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header.extend_from_slice(&first_lsn.to_le_bytes());
        f.write_all(&header)?;
        // Recovery can keep a record-less newest segment (a torn first
        // frame truncates it back to its header), which open() already
        // registered under this same first_lsn — and File::create just
        // re-created that very file. Replace the stale entry instead of
        // pushing a duplicate, or truncated_until would count the pair as
        // prefix + successor and unlink the file the flusher is writing.
        let mut segs = shared.segments.lock();
        segs.retain(|(lsn, _)| *lsn != first_lsn);
        segs.push((first_lsn, path));
        drop(segs);
        self.cur = Some(f);
        self.cur_bytes = SEGMENT_HEADER_LEN as u64;
        Ok(())
    }
}

fn run_flusher(shared: Arc<Shared>, mut io: FlusherIo) {
    loop {
        let batch = {
            let mut st = shared.staged.lock();
            while st.frames.is_empty() && st.mode == Mode::Run {
                shared.staged_cv.wait(&mut st);
            }
            if st.mode == Mode::Abandon {
                st.frames.clear();
                break;
            }
            if st.frames.is_empty() {
                break; // drain complete
            }
            let take = st.frames.len().min(io.batch);
            st.frames.drain(..take).collect::<Vec<_>>()
        };
        let last = batch.last().expect("non-empty batch").0;
        match io.write_batch(&shared, &batch) {
            Ok(()) => {
                shared.durable.lock().lsn = last;
                shared.durable_cv.notify_all();
            }
            Err(e) => {
                shared.durable.lock().error = Some(format!("wal flusher: {e}"));
                // Latch the death in the staging state too, so stage()
                // stops buffering frames that can never be synced.
                let mut st = shared.staged.lock();
                st.mode = Mode::Abandon;
                st.frames.clear();
                drop(st);
                shared.durable_cv.notify_all();
                break;
            }
        }
    }
    let mut d = shared.durable.lock();
    d.flusher_exited = true;
    drop(d);
    shared.durable_cv.notify_all();
}

/// `wal-<first_lsn>.seg`, zero-padded so lexicographic order matches LSN
/// order in directory listings.
pub fn segment_file_name(first_lsn: u64) -> String {
    format!("wal-{first_lsn:020}.seg")
}

fn list_segments(dir: &Path) -> DbResult<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).map_err(wal_io)? {
        let entry = entry.map_err(wal_io)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        else {
            continue;
        };
        let Ok(first_lsn) = stem.parse::<u64>() else {
            continue;
        };
        out.push((first_lsn, entry.path()));
    }
    Ok(out)
}

enum SegmentFate {
    Kept,
    Removed,
}

/// Parses one segment, appending recovered records. `expected` is the LSN
/// the first record of this segment must carry (None for the oldest
/// segment, which defines the base). Torn damage in the last segment
/// truncates the file at the frame boundary; anywhere else it hard-fails.
fn read_segment(
    path: &Path,
    name_lsn: u64,
    expected: Option<u64>,
    is_last: bool,
    recovered: &mut RecoveredLog,
) -> DbResult<SegmentFate> {
    let data = fs::read(path).map_err(wal_io)?;
    if data.len() < SEGMENT_HEADER_LEN {
        if is_last {
            // Crash mid-header: nothing durable in here at all.
            fs::remove_file(path).map_err(wal_io)?;
            recovered.torn_tails += 1;
            return Ok(SegmentFate::Removed);
        }
        return Err(DbError::WalCorrupt(format!(
            "segment {} shorter than its header",
            path.display()
        )));
    }
    if data[..8] != SEGMENT_MAGIC {
        return Err(DbError::WalCorrupt(format!(
            "segment {} has bad magic",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if version != SEGMENT_VERSION {
        return Err(DbError::WalCorrupt(format!(
            "segment {} has version {version}, expected {SEGMENT_VERSION}",
            path.display()
        )));
    }
    let first_lsn = u64::from_le_bytes(data[12..20].try_into().unwrap());
    if first_lsn != name_lsn {
        return Err(DbError::WalCorrupt(format!(
            "segment {} header LSN {first_lsn} disagrees with its name",
            path.display()
        )));
    }
    match expected {
        None => recovered.base = first_lsn.saturating_sub(1),
        Some(e) if e == first_lsn => {}
        Some(e) => {
            return Err(DbError::WalCorrupt(format!(
                "segment gap: {} starts at {first_lsn}, expected {e}",
                path.display()
            )))
        }
    }

    let mut off = SEGMENT_HEADER_LEN;
    let mut next_lsn = first_lsn;
    while off < data.len() {
        match parse_frame(&data, off, next_lsn, path)? {
            FrameStep::Parsed { end, record } => {
                recovered.records.push(record);
                next_lsn += 1;
                off = end;
            }
            FrameStep::Torn(what) => {
                if !is_last {
                    return Err(DbError::WalCorrupt(format!(
                        "segment {} offset {off}: {what}",
                        path.display()
                    )));
                }
                // Torn tail: cut the file at the frame boundary and stop.
                let f = OpenOptions::new().write(true).open(path).map_err(wal_io)?;
                f.set_len(off as u64).map_err(wal_io)?;
                f.sync_data().map_err(wal_io)?;
                recovered.torn_tails += 1;
                break;
            }
        }
    }
    Ok(SegmentFate::Kept)
}

/// One structural step of the segment scan.
enum FrameStep {
    /// A valid frame: its end offset and decoded record.
    Parsed { end: usize, record: LogRecord },
    /// Structurally broken at this offset — a torn write if this is the
    /// tail of the newest segment, corruption anywhere else.
    Torn(&'static str),
}

/// Parses the frame at `off`. Structural damage (short prefix, implausible
/// length, CRC mismatch, LSN break) is reported as [`FrameStep::Torn`] for
/// the caller to judge by position; a frame whose CRC passes but whose
/// record does not decode means the writer was broken, which is corruption
/// even in the tail — never a torn write — and fails outright.
fn parse_frame(data: &[u8], off: usize, next_lsn: u64, path: &Path) -> DbResult<FrameStep> {
    if off + FRAME_PREFIX_LEN > data.len() {
        return Ok(FrameStep::Torn("short frame prefix"));
    }
    let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
    if !(8..=MAX_FRAME_PAYLOAD).contains(&len) {
        return Ok(FrameStep::Torn("implausible frame length"));
    }
    let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
    let Some(end) = (off + FRAME_PREFIX_LEN).checked_add(len as usize) else {
        return Ok(FrameStep::Torn("frame length overflow"));
    };
    if end > data.len() {
        return Ok(FrameStep::Torn("frame extends past end of file"));
    }
    let payload = &data[off + FRAME_PREFIX_LEN..end];
    if crc32(payload) != crc {
        return Ok(FrameStep::Torn("CRC mismatch"));
    }
    let lsn = u64::from_le_bytes(payload[..8].try_into().unwrap());
    if lsn != next_lsn {
        return Ok(FrameStep::Torn("LSN break"));
    }
    let record = codec::decode_record(&payload[8..]).map_err(|e| {
        DbError::WalCorrupt(format!(
            "segment {} offset {off}: undecodable record with valid CRC: {e}",
            path.display()
        ))
    })?;
    Ok(FrameStep::Parsed { end, record })
}

fn wal_io(e: io::Error) -> DbError {
    DbError::Internal(format!("wal io: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogOp, LogRecord};
    use remus_common::{Timestamp, TxnId};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let pid = std::process::id();
            let n = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos();
            let p = std::env::temp_dir().join(format!("remus-wal-{tag}-{pid}-{n}"));
            fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn rec(n: u64) -> LogRecord {
        LogRecord::new(TxnId(n), LogOp::Commit(Timestamp(n)))
    }

    fn cfg(segment_bytes: u64) -> WalConfig {
        let mut c = WalConfig::file("ignored");
        c.segment_bytes = segment_bytes;
        c
    }

    #[test]
    fn write_reopen_round_trips() {
        let dir = TempDir::new("roundtrip");
        let config = cfg(1 << 20);
        {
            let (b, opened) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
            assert_eq!(opened.records.len(), 0);
            for n in 1..=20u64 {
                b.stage(Lsn(n), &rec(n));
            }
            b.wait_durable(Lsn(20)).unwrap();
            assert!(b.fsyncs() >= 1);
            b.shutdown();
        }
        let (b, opened) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
        assert_eq!(opened.base, 0);
        assert_eq!(opened.torn_tails, 0);
        assert_eq!(opened.records.len(), 20);
        for (i, r) in opened.records.iter().enumerate() {
            assert_eq!(*r, rec(i as u64 + 1));
        }
        b.shutdown();
    }

    #[test]
    fn rotation_splits_into_multiple_segments_and_reopens() {
        let dir = TempDir::new("rotate");
        let config = cfg(64); // tiny: a couple of frames per segment
        {
            let (b, _) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
            for n in 1..=50u64 {
                b.stage(Lsn(n), &rec(n));
                // Sync each record so rotation happens at deterministic
                // frame boundaries rather than batch boundaries.
                b.wait_durable(Lsn(n)).unwrap();
            }
            b.shutdown();
        }
        let segs = list_segments(&dir.0).unwrap();
        assert!(segs.len() >= 3, "expected several segments, got {segs:?}");
        let (b, opened) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
        assert_eq!(opened.records.len(), 50);
        b.shutdown();
    }

    #[test]
    fn truncated_until_drops_whole_prefix_segments() {
        let dir = TempDir::new("trunc");
        let config = cfg(64);
        let (b, _) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
        for n in 1..=50u64 {
            b.stage(Lsn(n), &rec(n));
            b.wait_durable(Lsn(n)).unwrap();
        }
        let before = list_segments(&dir.0).unwrap().len();
        assert!(before >= 3);
        b.truncated_until(Lsn(50));
        let after = list_segments(&dir.0).unwrap();
        assert_eq!(after.len(), 1, "only the newest segment survives");
        b.shutdown();
        // The survivor still opens: prefix drop moved the base forward.
        let (b, opened) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
        let first_kept = after[0].0;
        assert_eq!(opened.base, first_kept - 1);
        assert_eq!(opened.tail(), 50);
        b.shutdown();
    }

    #[test]
    fn crash_discards_staged_but_keeps_durable_prefix() {
        let dir = TempDir::new("crash");
        let config = cfg(1 << 20);
        #[derive(Debug)]
        struct Gate(Mutex<bool>, Condvar);
        impl SyncPolicy for Gate {
            fn sync(&self, file: &File) -> io::Result<()> {
                let mut open = self.0.lock();
                while !*open {
                    self.1.wait(&mut open);
                }
                file.sync_data()
            }
        }
        let gate = Arc::new(Gate(Mutex::new(true), Condvar::new()));
        let (b, _) = FileBackend::open(&dir.0, &config, gate.clone()).unwrap();
        for n in 1..=5u64 {
            b.stage(Lsn(n), &rec(n));
        }
        b.wait_durable(Lsn(5)).unwrap();
        // Close the gate, stage more, crash: the extra records must die.
        *gate.0.lock() = false;
        for n in 6..=9u64 {
            b.stage(Lsn(n), &rec(n));
        }
        *gate.0.lock() = true;
        gate.1.notify_all();
        b.crash();
        let (b2, opened) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
        assert!(opened.tail() >= 5, "durable prefix lost: {}", opened.tail());
        assert!(opened.torn_tails == 0);
        b2.shutdown();
    }

    #[test]
    fn mid_log_corruption_hard_fails() {
        let dir = TempDir::new("midcorrupt");
        let config = cfg(64);
        {
            let (b, _) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
            for n in 1..=30u64 {
                b.stage(Lsn(n), &rec(n));
                b.wait_durable(Lsn(n)).unwrap();
            }
            b.shutdown();
        }
        let mut segs = list_segments(&dir.0).unwrap();
        segs.sort_by_key(|(l, _)| *l);
        assert!(segs.len() >= 2);
        // Flip one byte in the middle of the OLDEST segment's body.
        let victim = &segs[0].1;
        let mut data = fs::read(victim).unwrap();
        let at = SEGMENT_HEADER_LEN + FRAME_PREFIX_LEN + 3;
        data[at] ^= 0x40;
        fs::write(victim, data).unwrap();
        let err = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap_err();
        assert!(matches!(err, DbError::WalCorrupt(_)), "{err:?}");
    }

    /// Review regression: a torn *first* frame leaves recovery holding a
    /// header-only newest segment. The first post-reopen rotation re-creates
    /// that same `wal-<lsn>.seg`; it must replace the recovered entry in the
    /// segment list, not duplicate it — a duplicate made `truncated_until`
    /// unlink the live segment and lose acknowledged-durable records.
    #[test]
    fn reopen_after_torn_first_frame_keeps_new_durable_records() {
        let dir = TempDir::new("hdronly");
        let config = cfg(1 << 20);
        {
            let (b, _) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
            for n in 1..=2u64 {
                b.stage(Lsn(n), &rec(n));
            }
            b.wait_durable(Lsn(2)).unwrap();
            b.shutdown();
        }
        // Tear the log inside its very first frame.
        let segs = list_segments(&dir.0).unwrap();
        assert_eq!(segs.len(), 1);
        let f = OpenOptions::new().write(true).open(&segs[0].1).unwrap();
        f.set_len(SEGMENT_HEADER_LEN as u64 + 5).unwrap();
        drop(f);
        {
            let (b, opened) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
            assert_eq!(opened.records.len(), 0);
            assert_eq!(opened.torn_tails, 1);
            for n in 1..=5u64 {
                b.stage(Lsn(n), &rec(n));
            }
            b.wait_durable(Lsn(5)).unwrap();
            assert_eq!(
                b.shared.segments.lock().len(),
                1,
                "rotation duplicated the recovered header-only segment entry"
            );
            b.truncated_until(Lsn(3));
            b.shutdown();
        }
        let (b, opened) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
        assert_eq!(opened.base, 0);
        assert_eq!(
            opened.records.len(),
            5,
            "acknowledged-durable records lost after header-only-segment reopen"
        );
        b.shutdown();
    }

    /// Once the flusher has died on a sync error, later stages must be
    /// dropped (not buffered forever) and waiters must fail immediately
    /// instead of burning the 10s group-commit timeout each.
    #[test]
    fn stage_and_wait_fail_fast_after_flusher_death() {
        #[derive(Debug)]
        struct BrokenSync;
        impl SyncPolicy for BrokenSync {
            fn sync(&self, _file: &File) -> io::Result<()> {
                Err(io::Error::other("injected sync failure"))
            }
        }
        let dir = TempDir::new("failfast");
        let config = cfg(1 << 20);
        let (b, _) = FileBackend::open(&dir.0, &config, Arc::new(BrokenSync)).unwrap();
        b.stage(Lsn(1), &rec(1));
        assert!(b.wait_durable(Lsn(1)).is_err());
        let start = std::time::Instant::now();
        for n in 2..=10u64 {
            b.stage(Lsn(n), &rec(n));
        }
        assert!(
            b.shared.staged.lock().frames.is_empty(),
            "frames buffered after flusher death"
        );
        assert!(b.wait_durable(Lsn(10)).is_err());
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "wait_durable slept out the timeout on a dead flusher"
        );
        b.shutdown();
    }

    /// After a clean shutdown, waiting on an LSN beyond the durable tail
    /// errors promptly; already-durable LSNs still report success.
    #[test]
    fn wait_after_shutdown_fails_fast() {
        let dir = TempDir::new("shutdownwait");
        let config = cfg(1 << 20);
        let (b, _) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
        b.stage(Lsn(1), &rec(1));
        b.wait_durable(Lsn(1)).unwrap();
        b.shutdown();
        let start = std::time::Instant::now();
        assert!(b.wait_durable(Lsn(2)).is_err());
        assert!(start.elapsed() < Duration::from_secs(2));
        b.wait_durable(Lsn(1)).unwrap();
    }
}
