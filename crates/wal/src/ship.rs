//! WAL shipping: LSN-prefixed frame batches and the replica-side dense
//! monotonic apply-LSN gate.
//!
//! A shipper tails a primary's WAL (the same
//! [`crate::log::WalReader::next_batch_blocking`] drain the migration
//! propagation path uses) and sends [`ShipBatch`]es — contiguous record
//! runs prefixed with the LSN of their first frame — to replicas. The
//! transport is allowed to be sloppy: batches may arrive duplicated,
//! reordered, or overlapping at arbitrary LSN boundaries (a retransmit
//! after a timeout resends frames the replica already holds).
//!
//! [`ApplyLsnGate`] restores exactly-once-in-order semantics on the
//! receive side. It tracks the highest densely-applied LSN; an arriving
//! batch is dropped if wholly below it, trimmed if it overlaps it, and
//! parked if it starts beyond the next expected LSN — parked batches drain
//! as soon as the gap fills. Everything the gate releases is a dense,
//! strictly increasing LSN run, so the applier behind it never sees a
//! frame twice and never sees a gap, no matter what the transport did.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::log::Lsn;
use crate::record::LogRecord;

/// A contiguous run of WAL frames, prefixed with the LSN of the first.
/// Frame `i` has LSN `first + i`.
#[derive(Debug, Clone)]
pub struct ShipBatch {
    /// LSN of `records[0]`.
    pub first: Lsn,
    /// The frames, in LSN order, shared with the shipper's log.
    pub records: Vec<Arc<LogRecord>>,
}

impl ShipBatch {
    /// A batch whose first frame has LSN `first`.
    pub fn new(first: Lsn, records: Vec<Arc<LogRecord>>) -> ShipBatch {
        ShipBatch { first, records }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the batch carries no frames.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// LSN of the last frame ([`Lsn::ZERO`]-adjacent nonsense for an empty
    /// batch; callers drop empties before asking).
    pub fn last(&self) -> Lsn {
        Lsn(self.first.0 + self.records.len() as u64 - 1)
    }
}

/// The dense monotonic apply-LSN gate guarding a replica's apply stream.
///
/// Feed every received [`ShipBatch`] to [`ApplyLsnGate::admit`]; apply —
/// in order — exactly the frames it returns. The gate owns duplicate
/// suppression, overlap trimming, and reorder buffering, which is what
/// makes the applier behind it idempotent by construction.
#[derive(Debug, Default)]
pub struct ApplyLsnGate {
    applied: Lsn,
    /// Out-of-order batches parked until the gap before them fills, keyed
    /// by first LSN. On key collision the longer batch wins.
    parked: BTreeMap<u64, ShipBatch>,
}

impl ApplyLsnGate {
    /// A gate that has applied nothing (next expected LSN is 1).
    pub fn new() -> ApplyLsnGate {
        ApplyLsnGate::default()
    }

    /// A gate positioned after `applied` — a backfilled replica starts its
    /// live stream here, treating everything at or below the cut as done.
    pub fn starting_after(applied: Lsn) -> ApplyLsnGate {
        ApplyLsnGate {
            applied,
            parked: BTreeMap::new(),
        }
    }

    /// Highest densely-applied LSN.
    pub fn applied(&self) -> Lsn {
        self.applied
    }

    /// Number of batches parked waiting for a gap to fill.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Admits one received batch and returns the frames now ready to
    /// apply, as a dense `(lsn, record)` run starting at `applied + 1`.
    /// Duplicates return nothing; out-of-order batches park and return
    /// nothing until the gap before them fills.
    pub fn admit(&mut self, batch: ShipBatch) -> Vec<(Lsn, Arc<LogRecord>)> {
        let mut ready = Vec::new();
        self.absorb(batch, &mut ready);
        self.drain_parked(&mut ready);
        ready
    }

    /// Applies `batch` against the current position: drop, trim, extend,
    /// or park.
    fn absorb(&mut self, batch: ShipBatch, ready: &mut Vec<(Lsn, Arc<LogRecord>)>) {
        if batch.is_empty() || batch.last().0 <= self.applied.0 {
            return; // nothing new in it
        }
        if batch.first.0 > self.applied.0 + 1 {
            // Gap before it: park, preferring the longer batch on collision.
            let slot = self
                .parked
                .entry(batch.first.0)
                .or_insert_with(|| ShipBatch::new(batch.first, Vec::new()));
            if batch.len() > slot.len() {
                *slot = batch;
            }
            return;
        }
        // Overlaps or abuts the applied prefix: trim what we already have.
        let skip = (self.applied.0 + 1).saturating_sub(batch.first.0) as usize;
        for (i, record) in batch.records.into_iter().enumerate().skip(skip) {
            let lsn = Lsn(batch.first.0 + i as u64);
            ready.push((lsn, record));
            self.applied = lsn;
        }
    }

    /// Releases parked batches that the advanced position now reaches.
    fn drain_parked(&mut self, ready: &mut Vec<(Lsn, Arc<LogRecord>)>) {
        loop {
            // The lowest-keyed parked batch is the only candidate: all
            // others start even further beyond the dense frontier.
            let Some((&first, _)) = self.parked.iter().next() else {
                return;
            };
            if first > self.applied.0 + 1 {
                return;
            }
            let batch = self.parked.remove(&first).expect("keyed by iteration");
            self.absorb(batch, ready);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogOp;
    use remus_common::{NodeId, Timestamp, TxnId};

    /// A batch of `n` marker frames starting at LSN `first`; frame at LSN
    /// `l` carries commit timestamp `l` so tests can check identity.
    fn batch(first: u64, n: u64) -> ShipBatch {
        let records = (0..n)
            .map(|i| {
                Arc::new(LogRecord::new(
                    TxnId::new(NodeId(0), first + i),
                    LogOp::Commit(Timestamp(first + i)),
                ))
            })
            .collect();
        ShipBatch::new(Lsn(first), records)
    }

    fn lsns(out: &[(Lsn, Arc<LogRecord>)]) -> Vec<u64> {
        out.iter().map(|(l, _)| l.0).collect()
    }

    /// Each released frame's payload must match its LSN (no frame applied
    /// under the wrong LSN after trimming).
    fn assert_aligned(out: &[(Lsn, Arc<LogRecord>)]) {
        for (lsn, r) in out {
            match r.op {
                LogOp::Commit(ts) => assert_eq!(ts.0, lsn.0, "frame misaligned"),
                _ => panic!("test frames are commits"),
            }
        }
    }

    #[test]
    fn in_order_batches_flow_straight_through() {
        let mut gate = ApplyLsnGate::new();
        assert_eq!(lsns(&gate.admit(batch(1, 3))), vec![1, 2, 3]);
        assert_eq!(lsns(&gate.admit(batch(4, 2))), vec![4, 5]);
        assert_eq!(gate.applied(), Lsn(5));
        assert_eq!(gate.parked(), 0);
    }

    #[test]
    fn duplicate_batch_is_dropped() {
        let mut gate = ApplyLsnGate::new();
        gate.admit(batch(1, 4));
        assert!(gate.admit(batch(1, 4)).is_empty());
        assert!(gate.admit(batch(2, 2)).is_empty());
        assert_eq!(gate.applied(), Lsn(4));
    }

    #[test]
    fn overlapping_batch_is_trimmed_to_the_new_suffix() {
        let mut gate = ApplyLsnGate::new();
        gate.admit(batch(1, 4));
        let out = gate.admit(batch(3, 5)); // 3..=7; 3,4 already applied
        assert_eq!(lsns(&out), vec![5, 6, 7]);
        assert_aligned(&out);
    }

    #[test]
    fn out_of_order_batch_parks_until_the_gap_fills() {
        let mut gate = ApplyLsnGate::new();
        assert!(gate.admit(batch(4, 2)).is_empty());
        assert_eq!(gate.parked(), 1);
        let out = gate.admit(batch(1, 3));
        assert_eq!(lsns(&out), vec![1, 2, 3, 4, 5]);
        assert_aligned(&out);
        assert_eq!(gate.parked(), 0);
    }

    #[test]
    fn chained_parked_batches_drain_together() {
        let mut gate = ApplyLsnGate::new();
        assert!(gate.admit(batch(6, 2)).is_empty());
        assert!(gate.admit(batch(3, 3)).is_empty());
        assert_eq!(gate.parked(), 2);
        let out = gate.admit(batch(1, 2));
        assert_eq!(lsns(&out), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_aligned(&out);
    }

    #[test]
    fn parked_collision_keeps_the_longer_batch() {
        let mut gate = ApplyLsnGate::new();
        assert!(gate.admit(batch(3, 1)).is_empty());
        assert!(gate.admit(batch(3, 4)).is_empty());
        assert_eq!(gate.parked(), 1);
        let out = gate.admit(batch(1, 2));
        assert_eq!(lsns(&out), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn starting_after_skips_the_backfilled_prefix() {
        let mut gate = ApplyLsnGate::starting_after(Lsn(10));
        assert!(gate.admit(batch(5, 4)).is_empty(), "wholly below the cut");
        let out = gate.admit(batch(8, 6)); // 8..=13: 8,9,10 below the cut
        assert_eq!(lsns(&out), vec![11, 12, 13]);
        assert_aligned(&out);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut gate = ApplyLsnGate::new();
        assert!(gate.admit(ShipBatch::new(Lsn(9), Vec::new())).is_empty());
        assert_eq!(gate.applied(), Lsn::ZERO);
    }
}
