#![warn(missing_docs)]

//! Write-ahead log and the update-propagation building blocks.
//!
//! Remus tracks the incremental changes of a migrating shard by traversing
//! WAL records (paper §3.3): a propagation process tails the log, builds a
//! per-transaction [`queue::UpdateCacheQueue`] of the changes relevant to
//! the migrating shards, and ships each queue when it sees the
//! transaction's commit (async mode) or validation/prepare record (sync
//! mode, MOCC).
//!
//! The log itself ([`log::Wal`]) is an in-memory append-only sequence with
//! monotonically increasing LSNs, blocking tail reads for the propagation
//! process, and truncation of fully-consumed prefixes. Durability is out of
//! scope (the paper's crash recovery is exercised through CLOG/2PC state,
//! which we retain); what matters for the protocol is record *order*.

pub mod log;
pub mod queue;
pub mod record;

pub use log::{Lsn, Wal, WalReader};
pub use queue::UpdateCacheQueue;
pub use record::{LogOp, LogRecord, WriteKind, WriteOp};
