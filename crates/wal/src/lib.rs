#![warn(missing_docs)]

//! Write-ahead log and the update-propagation building blocks.
//!
//! Remus tracks the incremental changes of a migrating shard by traversing
//! WAL records (paper §3.3): a propagation process tails the log, builds a
//! per-transaction [`queue::UpdateCacheQueue`] of the changes relevant to
//! the migrating shards, and ships each queue when it sees the
//! transaction's commit (async mode) or validation/prepare record (sync
//! mode, MOCC).
//!
//! The log itself ([`log::Wal`]) is an in-memory append-only sequence with
//! monotonically increasing LSNs, blocking tail reads for the propagation
//! process, and truncation of fully-consumed prefixes. Durability is
//! pluggable through [`backend::WalBackend`]: the default in-memory
//! backend keeps the original "order only" model, while
//! [`backend::FileBackend`] persists every record to an on-disk segment
//! log (versioned [`codec`], per-record CRC, group commit with fsync
//! coalescing) that [`log::Wal::crash_and_reopen`] can rebuild the log
//! from after a process-level crash — tolerating a torn tail, hard-failing
//! on mid-log corruption. See DESIGN.md §10.

pub mod backend;
pub mod codec;
pub mod log;
pub mod queue;
pub mod record;
pub mod ship;

pub use backend::{
    BackendHandle, FileBackend, FsyncData, MemBackend, RecoveredLog, SyncPolicy, WalBackend,
};
pub use codec::{crc32, decode_record, encode_record, encode_record_vec, CODEC_VERSION};
pub use log::{Lsn, Wal, WalReader};
pub use queue::UpdateCacheQueue;
pub use record::{LogOp, LogRecord, WriteKind, WriteOp};
pub use ship::{ApplyLsnGate, ShipBatch};
