//! The append-only log with LSNs, blocking tail reads, and truncation.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::record::LogRecord;

/// A log sequence number. The first record appended gets LSN 1; LSN 0 means
/// "before the log".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The position before any record.
    pub const ZERO: Lsn = Lsn(0);
}

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

#[derive(Debug, Default)]
struct LogInner {
    /// Records with LSN in `(base, base + records.len()]`. Stored behind
    /// `Arc` so readers (replay, propagation — often several per record
    /// during a migration) share the one flushed copy instead of
    /// deep-cloning every payload out of the log.
    records: VecDeque<Arc<LogRecord>>,
    /// LSN of the last truncated-away record (0 if nothing truncated).
    base: u64,
}

/// One node's write-ahead log.
///
/// Appends are serialized by a mutex (the real engine serializes them
/// through the WAL insert lock too); readers tail the log by LSN and can
/// block until new records arrive.
#[derive(Debug, Default)]
pub struct Wal {
    inner: Mutex<LogInner>,
    grown: Condvar,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, returning its LSN. This is the "flush to WAL"
    /// point: a record is visible to readers as soon as this returns.
    pub fn append(&self, record: LogRecord) -> Lsn {
        let mut inner = self.inner.lock();
        inner.records.push_back(Arc::new(record));
        let lsn = Lsn(inner.base + inner.records.len() as u64);
        drop(inner);
        self.grown.notify_all();
        lsn
    }

    /// The LSN of the newest record (the flush/tail position used for
    /// `LSN_unsync` in the mode-change phase, §3.4).
    pub fn flush_lsn(&self) -> Lsn {
        let inner = self.inner.lock();
        Lsn(inner.base + inner.records.len() as u64)
    }

    /// Returns the record at `lsn`, if it exists and was not truncated.
    pub fn get(&self, lsn: Lsn) -> Option<Arc<LogRecord>> {
        let inner = self.inner.lock();
        if lsn.0 <= inner.base {
            return None;
        }
        inner
            .records
            .get((lsn.0 - inner.base - 1) as usize)
            .cloned()
    }

    /// Drops all records with LSN <= `upto`. Readers must have consumed
    /// them; reading a truncated LSN is an error surfaced by [`WalReader`].
    pub fn truncate_until(&self, upto: Lsn) {
        let mut inner = self.inner.lock();
        while inner.base < upto.0 && !inner.records.is_empty() {
            inner.records.pop_front();
            inner.base += 1;
        }
    }

    /// Number of retained records.
    pub fn retained(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// A reader positioned after `from` (i.e. the first record it yields
    /// has LSN `from + 1`).
    pub fn reader_from(self: &Arc<Self>, from: Lsn) -> WalReader {
        WalReader {
            wal: Arc::clone(self),
            next: Lsn(from.0 + 1),
        }
    }

    fn wait_for(&self, lsn: Lsn, timeout: Duration) -> Option<Arc<LogRecord>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if lsn.0 <= inner.base {
                // Truncated from under the reader: a protocol bug.
                panic!("WAL read at truncated {lsn} (base {})", inner.base);
            }
            let idx = (lsn.0 - inner.base - 1) as usize;
            if let Some(r) = inner.records.get(idx) {
                return Some(Arc::clone(r));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.grown.wait_for(&mut inner, deadline - now);
        }
    }
}

/// A streaming cursor over a [`Wal`], used by the propagation process.
#[derive(Debug)]
pub struct WalReader {
    wal: Arc<Wal>,
    next: Lsn,
}

impl WalReader {
    /// The LSN of the next record this reader will yield.
    pub fn position(&self) -> Lsn {
        self.next
    }

    /// LSN of the last record already consumed.
    pub fn consumed(&self) -> Lsn {
        Lsn(self.next.0.saturating_sub(1))
    }

    /// Returns the next record if it is already in the log.
    pub fn try_next(&mut self) -> Option<(Lsn, Arc<LogRecord>)> {
        let r = self.wal.get(self.next)?;
        let lsn = self.next;
        self.next = Lsn(self.next.0 + 1);
        Some((lsn, r))
    }

    /// Blocks up to `timeout` for the next record.
    pub fn next_blocking(&mut self, timeout: Duration) -> Option<(Lsn, Arc<LogRecord>)> {
        let r = self.wal.wait_for(self.next, timeout)?;
        let lsn = self.next;
        self.next = Lsn(self.next.0 + 1);
        Some((lsn, r))
    }

    /// Blocks up to `timeout` for at least one record, then greedily drains
    /// up to `max` records that are already flushed. Returns an empty vector
    /// on timeout. This is the batched update-cache drain used by the
    /// propagation process: one blocking wait amortized over a vector of
    /// records instead of a wait per record.
    pub fn next_batch_blocking(
        &mut self,
        max: usize,
        timeout: Duration,
    ) -> Vec<(Lsn, Arc<LogRecord>)> {
        let max = max.max(1);
        let mut out = Vec::new();
        match self.next_blocking(timeout) {
            Some(pair) => out.push(pair),
            None => return out,
        }
        while out.len() < max {
            match self.try_next() {
                Some(pair) => out.push(pair),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogOp, LogRecord};
    use remus_common::{NodeId, Timestamp, TxnId};

    fn rec(n: u64) -> LogRecord {
        LogRecord::new(TxnId::new(NodeId(0), n), LogOp::Commit(Timestamp(n)))
    }

    #[test]
    fn lsns_are_dense_and_start_at_one() {
        let wal = Wal::new();
        assert_eq!(wal.append(rec(1)), Lsn(1));
        assert_eq!(wal.append(rec(2)), Lsn(2));
        assert_eq!(wal.flush_lsn(), Lsn(2));
    }

    #[test]
    fn reader_streams_in_order() {
        let wal = Arc::new(Wal::new());
        for n in 1..=5 {
            wal.append(rec(n));
        }
        let mut reader = wal.reader_from(Lsn::ZERO);
        let mut seen = Vec::new();
        while let Some((lsn, r)) = reader.try_next() {
            seen.push((lsn.0, r.xid.seq()));
        }
        assert_eq!(seen, vec![(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]);
        assert_eq!(reader.consumed(), Lsn(5));
    }

    #[test]
    fn reader_from_midpoint() {
        let wal = Arc::new(Wal::new());
        for n in 1..=5 {
            wal.append(rec(n));
        }
        let mut reader = wal.reader_from(Lsn(3));
        assert_eq!(reader.try_next().unwrap().0, Lsn(4));
    }

    #[test]
    fn blocking_read_wakes_on_append() {
        let wal = Arc::new(Wal::new());
        let mut reader = wal.reader_from(Lsn::ZERO);
        let writer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                wal.append(rec(7));
            })
        };
        let (lsn, r) = reader.next_blocking(Duration::from_secs(5)).unwrap();
        assert_eq!(lsn, Lsn(1));
        assert_eq!(r.xid.seq(), 7);
        writer.join().unwrap();
    }

    #[test]
    fn batch_read_drains_up_to_max_in_order() {
        let wal = Arc::new(Wal::new());
        for n in 1..=5 {
            wal.append(rec(n));
        }
        let mut reader = wal.reader_from(Lsn::ZERO);
        let batch = reader.next_batch_blocking(3, Duration::from_secs(1));
        assert_eq!(
            batch.iter().map(|(l, _)| l.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // The rest comes in the next batch, even with headroom to spare.
        let batch = reader.next_batch_blocking(8, Duration::from_secs(1));
        assert_eq!(
            batch.iter().map(|(l, _)| l.0).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(reader.consumed(), Lsn(5));
    }

    #[test]
    fn batch_read_times_out_empty_and_wakes_on_append() {
        let wal = Arc::new(Wal::new());
        let mut reader = wal.reader_from(Lsn::ZERO);
        assert!(reader
            .next_batch_blocking(4, Duration::from_millis(10))
            .is_empty());
        let writer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                wal.append(rec(7));
            })
        };
        let batch = reader.next_batch_blocking(4, Duration::from_secs(5));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].0, Lsn(1));
        writer.join().unwrap();
    }

    #[test]
    fn blocking_read_times_out() {
        let wal = Arc::new(Wal::new());
        let mut reader = wal.reader_from(Lsn::ZERO);
        assert!(reader.next_blocking(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn truncate_drops_prefix_only() {
        let wal = Arc::new(Wal::new());
        for n in 1..=5 {
            wal.append(rec(n));
        }
        wal.truncate_until(Lsn(3));
        assert_eq!(wal.retained(), 2);
        assert!(wal.get(Lsn(3)).is_none());
        assert_eq!(wal.get(Lsn(4)).unwrap().xid.seq(), 4);
        // Appends continue with dense LSNs.
        assert_eq!(wal.append(rec(6)), Lsn(6));
    }

    #[test]
    fn reads_share_one_flushed_copy() {
        // `get` and the reader hand out refs to the same allocation — the
        // clone-free read path (no per-reader deep copy of payloads).
        let wal = Arc::new(Wal::new());
        wal.append(rec(1));
        let a = wal.get(Lsn(1)).unwrap();
        let b = wal.get(Lsn(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let mut reader = wal.reader_from(Lsn::ZERO);
        let (_, c) = reader.try_next().unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn reading_truncated_lsn_panics() {
        let wal = Arc::new(Wal::new());
        wal.append(rec(1));
        wal.truncate_until(Lsn(1));
        let mut reader = wal.reader_from(Lsn::ZERO);
        reader.next_blocking(Duration::from_millis(5));
    }
}
