//! The append-only log with LSNs, blocking tail reads, and truncation.
//!
//! The in-memory record deque is the authoritative *read* path (replay,
//! propagation) no matter which durability backend is attached; the
//! backend ([`crate::backend::WalBackend`]) sees every record as it is
//! appended and owns persistence. [`Wal::append`] stages without waiting
//! (fine for records whose loss a crash may tolerate — begins, writes,
//! aborts, whose transactions simply roll back on recovery);
//! [`Wal::append_durable`] additionally blocks until the record's
//! group-commit batch is synced, which is what commit-path records use.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use remus_common::{DbResult, WalBackendKind, WalConfig};

use crate::backend::{BackendHandle, FileBackend, FsyncData, MemBackend, SyncPolicy};
use crate::record::LogRecord;

/// A log sequence number. The first record appended gets LSN 1; LSN 0 means
/// "before the log".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The position before any record.
    pub const ZERO: Lsn = Lsn(0);
}

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

#[derive(Debug)]
struct LogInner {
    /// Records with LSN in `(base, base + records.len()]`. Stored behind
    /// `Arc` so readers (replay, propagation — often several per record
    /// during a migration) share the one flushed copy instead of
    /// deep-cloning every payload out of the log.
    records: VecDeque<Arc<LogRecord>>,
    /// LSN of the last truncated-away record (0 if nothing truncated).
    base: u64,
    /// Bumped by [`Wal::crash_and_reopen`]: a parked reader that observes
    /// a generation change is reading across a crash, which is a protocol
    /// bug it must not sleep through.
    generation: u64,
    /// Durability backend; staged under this mutex so it observes appends
    /// in LSN order.
    backend: BackendHandle,
}

/// How a file-backed log was opened, kept so [`Wal::crash_and_reopen`] can
/// rebuild from the same directory with the same sync policy.
#[derive(Debug, Clone)]
struct FileDurability {
    dir: PathBuf,
    config: WalConfig,
    sync: Arc<dyn SyncPolicy>,
}

/// One node's write-ahead log.
///
/// Appends are serialized by a mutex (the real engine serializes them
/// through the WAL insert lock too); readers tail the log by LSN and can
/// block until new records arrive.
#[derive(Debug)]
pub struct Wal {
    inner: Mutex<LogInner>,
    grown: Condvar,
    appends: AtomicU64,
    recovered_torn_tail: AtomicU64,
    durability: Option<FileDurability>,
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

impl Wal {
    /// An empty log on the in-memory backend (no durability).
    pub fn new() -> Self {
        Wal::from_parts(Arc::new(MemBackend::new()), VecDeque::new(), 0, 0, None)
    }

    /// A log on a caller-provided backend, starting empty. Used by backend
    /// unit tests; `crash_and_reopen` on such a log falls back to a fresh
    /// in-memory backend.
    pub fn with_backend(backend: BackendHandle) -> Self {
        Wal::from_parts(backend, VecDeque::new(), 0, 0, None)
    }

    /// Opens (or creates) a file-backed log rooted at `dir`, recovering
    /// whatever intact records the directory holds.
    pub fn open_file(dir: &Path, config: &WalConfig) -> DbResult<Wal> {
        Wal::open_file_with_sync(dir, config, Arc::new(FsyncData))
    }

    /// [`Wal::open_file`] with an explicit [`SyncPolicy`] (tests inject
    /// blocking or failing policies here).
    pub fn open_file_with_sync(
        dir: &Path,
        config: &WalConfig,
        sync: Arc<dyn SyncPolicy>,
    ) -> DbResult<Wal> {
        let (backend, opened) = FileBackend::open(dir, config, Arc::clone(&sync))?;
        Ok(Wal::from_parts(
            Arc::new(backend),
            opened.records.into_iter().map(Arc::new).collect(),
            opened.base,
            opened.torn_tails,
            Some(FileDurability {
                dir: dir.to_path_buf(),
                config: config.clone(),
                sync,
            }),
        ))
    }

    /// The log for node `node` under `config`: in-memory by default, or a
    /// `node-<id>` subdirectory of the configured WAL root.
    pub fn for_node(config: &WalConfig, node: u32) -> DbResult<Wal> {
        match &config.backend {
            WalBackendKind::Memory => Ok(Wal::new()),
            WalBackendKind::File { dir } => {
                Wal::open_file(&dir.join(format!("node-{node}")), config)
            }
        }
    }

    fn from_parts(
        backend: BackendHandle,
        records: VecDeque<Arc<LogRecord>>,
        base: u64,
        torn_tails: u64,
        durability: Option<FileDurability>,
    ) -> Wal {
        Wal {
            inner: Mutex::new(LogInner {
                records,
                base,
                generation: 0,
                backend,
            }),
            grown: Condvar::new(),
            appends: AtomicU64::new(0),
            recovered_torn_tail: AtomicU64::new(torn_tails),
            durability,
        }
    }

    /// Appends a record, returning its LSN. This is the "flush to WAL"
    /// point: a record is visible to readers as soon as this returns. The
    /// record is staged with the durability backend but not waited on —
    /// commit-path records use [`Wal::append_durable`] instead.
    pub fn append(&self, record: LogRecord) -> Lsn {
        let mut inner = self.inner.lock();
        let lsn = Lsn(inner.base + inner.records.len() as u64 + 1);
        inner.backend.stage(lsn, &record);
        inner.records.push_back(Arc::new(record));
        drop(inner);
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.grown.notify_all();
        lsn
    }

    /// Appends a record and blocks until it is durable — for the file
    /// backend, until the fsync of the group-commit batch containing its
    /// LSN completes. In-memory backends return immediately, so the
    /// commit path costs nothing extra under the default config.
    ///
    /// Durability failure (sync error, stopped backend, group-commit
    /// timeout) is returned, not panicked: the record is already in the
    /// in-memory log but was never acknowledged durable, so the caller
    /// must treat its transaction as un-committed and abort it.
    pub fn append_durable(&self, record: LogRecord) -> DbResult<Lsn> {
        let (lsn, backend) = {
            let mut inner = self.inner.lock();
            let lsn = Lsn(inner.base + inner.records.len() as u64 + 1);
            inner.backend.stage(lsn, &record);
            inner.records.push_back(Arc::new(record));
            (lsn, Arc::clone(&inner.backend))
        };
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.grown.notify_all();
        backend.wait_durable(lsn)?;
        Ok(lsn)
    }

    /// The LSN of the newest record (the flush/tail position used for
    /// `LSN_unsync` in the mode-change phase, §3.4).
    pub fn flush_lsn(&self) -> Lsn {
        let inner = self.inner.lock();
        Lsn(inner.base + inner.records.len() as u64)
    }

    /// Highest LSN the backend reports durable (equals [`Wal::flush_lsn`]
    /// on the in-memory backend).
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.lock().backend.durable_lsn()
    }

    /// Lifetime count of records appended (both append flavors).
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Lifetime count of fsyncs issued by the durability backend.
    pub fn fsyncs(&self) -> u64 {
        self.inner.lock().backend.fsyncs()
    }

    /// Torn-tail truncations performed across every open/reopen of this
    /// log (the `wal.recovered_torn_tail` metric).
    pub fn recovered_torn_tail(&self) -> u64 {
        self.recovered_torn_tail.load(Ordering::Relaxed)
    }

    /// Returns the record at `lsn`, if it exists and was not truncated.
    pub fn get(&self, lsn: Lsn) -> Option<Arc<LogRecord>> {
        let inner = self.inner.lock();
        if lsn.0 <= inner.base {
            return None;
        }
        inner
            .records
            .get((lsn.0 - inner.base - 1) as usize)
            .cloned()
    }

    /// Drops all records with LSN <= `upto`. Readers must have consumed
    /// them; reading a truncated LSN is an error surfaced by [`WalReader`].
    pub fn truncate_until(&self, upto: Lsn) {
        let (backend, base) = {
            let mut inner = self.inner.lock();
            while inner.base < upto.0 && !inner.records.is_empty() {
                inner.records.pop_front();
                inner.base += 1;
            }
            (Arc::clone(&inner.backend), Lsn(inner.base))
        };
        // Segment reclamation deletes files; do that I/O off the inner
        // lock so concurrent appends and reads are not stalled behind it.
        backend.truncated_until(base);
        // Wake parked readers so one left at or below the new base
        // observes the movement (and trips the truncated-read panic)
        // instead of sleeping out its timeout.
        self.grown.notify_all();
    }

    /// Simulates a process crash and restart of this log: the in-memory
    /// state is dropped, staged-but-unsynced records are discarded, and
    /// the log is repopulated from whatever the durability backend can
    /// recover — everything for a file-backed log (modulo a torn tail),
    /// nothing for the in-memory backend.
    pub fn crash_and_reopen(&self) -> DbResult<()> {
        let mut inner = self.inner.lock();
        inner.backend.crash();
        match &self.durability {
            None => {
                inner.records.clear();
                inner.base = 0;
                inner.backend = Arc::new(MemBackend::new());
            }
            Some(d) => {
                let (backend, opened) = FileBackend::open(&d.dir, &d.config, Arc::clone(&d.sync))?;
                inner.records = opened.records.into_iter().map(Arc::new).collect();
                inner.base = opened.base;
                self.recovered_torn_tail
                    .fetch_add(opened.torn_tails, Ordering::Relaxed);
                inner.backend = Arc::new(backend);
            }
        }
        inner.generation += 1;
        drop(inner);
        self.grown.notify_all();
        Ok(())
    }

    /// Number of retained records.
    pub fn retained(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// A reader positioned after `from` (i.e. the first record it yields
    /// has LSN `from + 1`).
    pub fn reader_from(self: &Arc<Self>, from: Lsn) -> WalReader {
        WalReader {
            wal: Arc::clone(self),
            next: Lsn(from.0 + 1),
        }
    }

    fn wait_for(&self, lsn: Lsn, timeout: Duration) -> Option<Arc<LogRecord>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        let generation = inner.generation;
        loop {
            if inner.generation != generation {
                // The log was torn down and reopened from disk while this
                // reader was parked: its position is meaningless now.
                panic!("WAL crashed and reopened under a parked reader at {lsn}");
            }
            if lsn.0 <= inner.base {
                // Truncated from under the reader: a protocol bug.
                panic!("WAL read at truncated {lsn} (base {})", inner.base);
            }
            let idx = (lsn.0 - inner.base - 1) as usize;
            if let Some(r) = inner.records.get(idx) {
                return Some(Arc::clone(r));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.grown.wait_for(&mut inner, deadline - now);
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Drain and stop the flusher so segment files are complete before
        // test tempdirs are removed. Idempotent; no-op for in-memory.
        self.inner.get_mut().backend.shutdown();
    }
}

/// A streaming cursor over a [`Wal`], used by the propagation process.
#[derive(Debug)]
pub struct WalReader {
    wal: Arc<Wal>,
    next: Lsn,
}

impl WalReader {
    /// The LSN of the next record this reader will yield.
    pub fn position(&self) -> Lsn {
        self.next
    }

    /// LSN of the last record already consumed.
    pub fn consumed(&self) -> Lsn {
        Lsn(self.next.0.saturating_sub(1))
    }

    /// Returns the next record if it is already in the log.
    pub fn try_next(&mut self) -> Option<(Lsn, Arc<LogRecord>)> {
        let r = self.wal.get(self.next)?;
        let lsn = self.next;
        self.next = Lsn(self.next.0 + 1);
        Some((lsn, r))
    }

    /// Blocks up to `timeout` for the next record.
    pub fn next_blocking(&mut self, timeout: Duration) -> Option<(Lsn, Arc<LogRecord>)> {
        let r = self.wal.wait_for(self.next, timeout)?;
        let lsn = self.next;
        self.next = Lsn(self.next.0 + 1);
        Some((lsn, r))
    }

    /// Blocks up to `timeout` for at least one record, then greedily drains
    /// up to `max` records that are already flushed. Returns an empty vector
    /// on timeout. This is the batched update-cache drain used by the
    /// propagation process: one blocking wait amortized over a vector of
    /// records instead of a wait per record.
    pub fn next_batch_blocking(
        &mut self,
        max: usize,
        timeout: Duration,
    ) -> Vec<(Lsn, Arc<LogRecord>)> {
        let max = max.max(1);
        let mut out = Vec::new();
        match self.next_blocking(timeout) {
            Some(pair) => out.push(pair),
            None => return out,
        }
        while out.len() < max {
            match self.try_next() {
                Some(pair) => out.push(pair),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogOp, LogRecord};
    use remus_common::{NodeId, Timestamp, TxnId};

    fn rec(n: u64) -> LogRecord {
        LogRecord::new(TxnId::new(NodeId(0), n), LogOp::Commit(Timestamp(n)))
    }

    #[test]
    fn lsns_are_dense_and_start_at_one() {
        let wal = Wal::new();
        assert_eq!(wal.append(rec(1)), Lsn(1));
        assert_eq!(wal.append(rec(2)), Lsn(2));
        assert_eq!(wal.flush_lsn(), Lsn(2));
        assert_eq!(wal.appends(), 2);
    }

    #[test]
    fn reader_streams_in_order() {
        let wal = Arc::new(Wal::new());
        for n in 1..=5 {
            wal.append(rec(n));
        }
        let mut reader = wal.reader_from(Lsn::ZERO);
        let mut seen = Vec::new();
        while let Some((lsn, r)) = reader.try_next() {
            seen.push((lsn.0, r.xid.seq()));
        }
        assert_eq!(seen, vec![(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]);
        assert_eq!(reader.consumed(), Lsn(5));
    }

    #[test]
    fn reader_from_midpoint() {
        let wal = Arc::new(Wal::new());
        for n in 1..=5 {
            wal.append(rec(n));
        }
        let mut reader = wal.reader_from(Lsn(3));
        assert_eq!(reader.try_next().unwrap().0, Lsn(4));
    }

    #[test]
    fn blocking_read_wakes_on_append() {
        let wal = Arc::new(Wal::new());
        let mut reader = wal.reader_from(Lsn::ZERO);
        let writer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                wal.append(rec(7));
            })
        };
        let (lsn, r) = reader.next_blocking(Duration::from_secs(5)).unwrap();
        assert_eq!(lsn, Lsn(1));
        assert_eq!(r.xid.seq(), 7);
        writer.join().unwrap();
    }

    #[test]
    fn batch_read_drains_up_to_max_in_order() {
        let wal = Arc::new(Wal::new());
        for n in 1..=5 {
            wal.append(rec(n));
        }
        let mut reader = wal.reader_from(Lsn::ZERO);
        let batch = reader.next_batch_blocking(3, Duration::from_secs(1));
        assert_eq!(
            batch.iter().map(|(l, _)| l.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // The rest comes in the next batch, even with headroom to spare.
        let batch = reader.next_batch_blocking(8, Duration::from_secs(1));
        assert_eq!(
            batch.iter().map(|(l, _)| l.0).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(reader.consumed(), Lsn(5));
    }

    #[test]
    fn batch_read_times_out_empty_and_wakes_on_append() {
        let wal = Arc::new(Wal::new());
        let mut reader = wal.reader_from(Lsn::ZERO);
        assert!(reader
            .next_batch_blocking(4, Duration::from_millis(10))
            .is_empty());
        let writer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                wal.append(rec(7));
            })
        };
        let batch = reader.next_batch_blocking(4, Duration::from_secs(5));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].0, Lsn(1));
        writer.join().unwrap();
    }

    #[test]
    fn blocking_read_times_out() {
        let wal = Arc::new(Wal::new());
        let mut reader = wal.reader_from(Lsn::ZERO);
        assert!(reader.next_blocking(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn truncate_drops_prefix_only() {
        let wal = Arc::new(Wal::new());
        for n in 1..=5 {
            wal.append(rec(n));
        }
        wal.truncate_until(Lsn(3));
        assert_eq!(wal.retained(), 2);
        assert!(wal.get(Lsn(3)).is_none());
        assert_eq!(wal.get(Lsn(4)).unwrap().xid.seq(), 4);
        // Appends continue with dense LSNs.
        assert_eq!(wal.append(rec(6)), Lsn(6));
    }

    #[test]
    fn reads_share_one_flushed_copy() {
        // `get` and the reader hand out refs to the same allocation — the
        // clone-free read path (no per-reader deep copy of payloads).
        let wal = Arc::new(Wal::new());
        wal.append(rec(1));
        let a = wal.get(Lsn(1)).unwrap();
        let b = wal.get(Lsn(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let mut reader = wal.reader_from(Lsn::ZERO);
        let (_, c) = reader.try_next().unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn reading_truncated_lsn_panics() {
        let wal = Arc::new(Wal::new());
        wal.append(rec(1));
        wal.truncate_until(Lsn(1));
        let mut reader = wal.reader_from(Lsn::ZERO);
        reader.next_blocking(Duration::from_millis(5));
    }

    #[test]
    fn mem_backend_is_instantly_durable() {
        let wal = Wal::new();
        assert_eq!(wal.append_durable(rec(1)).unwrap(), Lsn(1));
        assert_eq!(wal.durable_lsn(), Lsn(1));
        assert_eq!(wal.fsyncs(), 0);
    }

    #[test]
    fn mem_crash_loses_everything() {
        let wal = Arc::new(Wal::new());
        for n in 1..=4 {
            wal.append(rec(n));
        }
        wal.crash_and_reopen().unwrap();
        assert_eq!(wal.flush_lsn(), Lsn::ZERO);
        assert_eq!(wal.retained(), 0);
        // The log restarts dense at 1.
        assert_eq!(wal.append(rec(9)), Lsn(1));
    }

    /// Satellite regression: a reader parked in `next_batch_blocking` with
    /// a long timeout must observe a crash/reopen (or a truncation that
    /// passes it) promptly — watchdog-bounded — instead of sleeping the
    /// timeout out. Before the fix, neither `truncate_until` nor reopen
    /// notified `grown`, so the reader hung.
    #[test]
    fn parked_reader_is_woken_by_reopen_not_watchdog() {
        let wal = Arc::new(Wal::new());
        wal.append(rec(1));
        let (tx, rx) = std::sync::mpsc::channel();
        let reader_wal = Arc::clone(&wal);
        let t = std::thread::spawn(move || {
            let mut reader = reader_wal.reader_from(Lsn(1));
            // Parks waiting for LSN 2 with a far-future timeout.
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                reader.next_batch_blocking(8, Duration::from_secs(30))
            }));
            tx.send(out.is_err()).unwrap();
        });
        std::thread::sleep(Duration::from_millis(50));
        wal.crash_and_reopen().unwrap();
        // Watchdog: the reader must resolve well before its own 30s wait.
        let panicked = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("parked reader hung through crash_and_reopen");
        assert!(panicked, "reader crossed a crash without noticing");
        t.join().unwrap();
    }
}
