//! Torn-tail matrix (DESIGN.md §10): write N records, truncate the
//! segment file at *every* byte offset inside the last frame, and reopen.
//! Recovery must yield exactly the first N−1 records, never panic, and
//! report the truncation through the `wal.recovered_torn_tail` counter.
//! A flip inside an earlier frame of the newest segment truncates at that
//! frame boundary instead (everything before it survives).

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use remus_common::{NodeId, Timestamp, TxnId, WalConfig};
use remus_wal::{FileBackend, FsyncData, LogOp, LogRecord, Lsn, Wal, WalBackend};

const SEGMENT_HEADER_LEN: usize = 20;
const FRAME_PREFIX_LEN: usize = 8;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let pid = std::process::id();
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let p = std::env::temp_dir().join(format!("remus-torn-{tag}-{pid}-{n}"));
        fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn rec(n: u64) -> LogRecord {
    LogRecord::new(TxnId::new(NodeId(0), n), LogOp::Commit(Timestamp(n)))
}

/// Writes `n` records into a single segment under `dir` and returns the
/// segment path plus the byte offset where each frame starts.
fn write_log(dir: &Path, n: u64) -> (PathBuf, Vec<usize>) {
    let config = WalConfig::file(dir);
    let (backend, opened) = FileBackend::open(dir, &config, Arc::new(FsyncData)).unwrap();
    assert_eq!(opened.records.len(), 0);
    for i in 1..=n {
        backend.stage(Lsn(i), &rec(i));
    }
    backend.wait_durable(Lsn(n)).unwrap();
    backend.shutdown();

    let seg = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "seg"))
        .expect("one segment file");
    let data = fs::read(&seg).unwrap();
    let mut starts = Vec::new();
    let mut off = SEGMENT_HEADER_LEN;
    while off < data.len() {
        starts.push(off);
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        off += FRAME_PREFIX_LEN + len;
    }
    assert_eq!(off, data.len(), "frame walk must cover the file exactly");
    assert_eq!(starts.len() as u64, n);
    (seg, starts)
}

/// Copies the written segment into a fresh directory truncated to `cut`
/// bytes, ready to reopen.
fn truncated_copy(seg: &Path, cut: u64, tag: &str) -> TempDir {
    let dir = TempDir::new(tag);
    let copy = dir.0.join(seg.file_name().unwrap());
    fs::copy(seg, &copy).unwrap();
    OpenOptions::new()
        .write(true)
        .open(&copy)
        .unwrap()
        .set_len(cut)
        .unwrap();
    dir
}

#[test]
fn every_truncation_offset_inside_the_last_frame_recovers_the_prefix() {
    const N: u64 = 6;
    let src = TempDir::new("src");
    let (seg, starts) = write_log(&src.0, N);
    let file_len = fs::metadata(&seg).unwrap().len() as usize;
    let last_start = *starts.last().unwrap();

    for cut in last_start..file_len {
        let dir = truncated_copy(&seg, cut as u64, "cut");
        let config = WalConfig::file(&dir.0);
        let (backend, opened) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData))
            .unwrap_or_else(|e| {
                panic!("reopen after cut at byte {cut} failed: {e:?}");
            });
        assert_eq!(
            opened.records.len() as u64,
            N - 1,
            "cut at byte {cut}: wrong record count"
        );
        for (i, r) in opened.records.iter().enumerate() {
            assert_eq!(*r, rec(i as u64 + 1), "cut at byte {cut}: record {i}");
        }
        // A cut exactly on the frame boundary is a clean end, not a tear.
        let expected_tears = u64::from(cut > last_start);
        assert_eq!(
            opened.torn_tails, expected_tears,
            "cut at byte {cut}: torn-tail count"
        );
        // The truncated file was repaired in place: reopening again is
        // clean and sees the same prefix.
        backend.shutdown();
        let (b2, again) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
        assert_eq!(again.records.len() as u64, N - 1);
        assert_eq!(again.torn_tails, 0, "second open of a repaired log");
        b2.shutdown();
    }
}

#[test]
fn torn_tail_is_reported_through_the_wal_counter() {
    const N: u64 = 6;
    let src = TempDir::new("counter-src");
    let (seg, starts) = write_log(&src.0, N);
    let cut = *starts.last().unwrap() + 3; // mid-prefix of the last frame
    let dir = truncated_copy(&seg, cut as u64, "counter");

    let wal = Wal::open_file(&dir.0, &WalConfig::file(&dir.0)).unwrap();
    assert_eq!(wal.recovered_torn_tail(), 1);
    assert_eq!(wal.flush_lsn(), Lsn(N - 1));
    assert_eq!(*wal.get(Lsn(N - 1)).expect("tail record"), rec(N - 1));
    assert!(wal.get(Lsn(N)).is_none(), "torn record must not resurface");
    // The reopened log keeps appending where the repaired tail ends.
    let lsn = wal.append_durable(rec(N)).unwrap();
    assert_eq!(lsn, Lsn(N));
}

#[test]
fn damage_before_the_tail_of_the_newest_segment_truncates_at_that_frame() {
    const N: u64 = 6;
    let src = TempDir::new("mid-src");
    let (seg, starts) = write_log(&src.0, N);

    // Flip one payload byte in the 4th frame: frames 1..=3 survive, the
    // rest of the (newest) segment is cut at the damaged frame boundary.
    let dir = TempDir::new("mid");
    let copy = dir.0.join(seg.file_name().unwrap());
    fs::copy(&seg, &copy).unwrap();
    let mut data = fs::read(&copy).unwrap();
    data[starts[3] + FRAME_PREFIX_LEN + 2] ^= 0x10;
    fs::write(&copy, data).unwrap();

    let config = WalConfig::file(&dir.0);
    let (backend, opened) = FileBackend::open(&dir.0, &config, Arc::new(FsyncData)).unwrap();
    assert_eq!(opened.records.len(), 3);
    assert_eq!(opened.torn_tails, 1);
    backend.shutdown();
}
