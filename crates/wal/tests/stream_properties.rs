//! Property and stress tests for the WAL: readers observe exactly the
//! appended sequence, truncation never loses unconsumed records, and a
//! concurrent tail keeps up with writers.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use remus_common::{NodeId, Timestamp, TxnId};
use remus_wal::{LogOp, LogRecord, Lsn, Wal};

fn rec(seq: u64) -> LogRecord {
    LogRecord::new(TxnId::new(NodeId(0), seq), LogOp::Commit(Timestamp(seq)))
}

proptest! {
    /// Interleave appends with partial reads and prefix truncations at the
    /// reader's position: the reader always sees the exact append order.
    #[test]
    fn reader_sees_exact_order_despite_truncation(
        steps in proptest::collection::vec(0u8..3, 1..200)
    ) {
        let wal = Arc::new(Wal::new());
        let mut reader = wal.reader_from(Lsn::ZERO);
        let mut appended = 0u64;
        let mut read = 0u64;
        for step in steps {
            match step {
                0 => {
                    appended += 1;
                    wal.append(rec(appended));
                }
                1 => {
                    if let Some((lsn, r)) = reader.try_next() {
                        read += 1;
                        prop_assert_eq!(lsn, Lsn(read));
                        prop_assert_eq!(r.xid.seq(), read);
                    } else {
                        prop_assert_eq!(read, appended);
                    }
                }
                _ => {
                    // Truncate everything the reader already consumed.
                    wal.truncate_until(reader.consumed());
                }
            }
        }
        // Drain the rest.
        while let Some((_, r)) = reader.try_next() {
            read += 1;
            prop_assert_eq!(r.xid.seq(), read);
        }
        prop_assert_eq!(read, appended);
    }

    /// flush_lsn always equals the number of appends, regardless of
    /// truncation.
    #[test]
    fn flush_lsn_is_append_count(appends in 0u64..300, cut in 0u64..300) {
        let wal = Wal::new();
        for i in 1..=appends {
            wal.append(rec(i));
        }
        wal.truncate_until(Lsn(cut.min(appends)));
        prop_assert_eq!(wal.flush_lsn(), Lsn(appends));
    }
}

#[test]
fn concurrent_writers_and_tail_reader() {
    let wal = Arc::new(Wal::new());
    let writers: Vec<_> = (0..3u64)
        .map(|w| {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    wal.append(LogRecord::new(
                        TxnId::new(NodeId(w as u32), i + 1),
                        LogOp::Abort,
                    ));
                }
            })
        })
        .collect();
    let tail = {
        let wal = Arc::clone(&wal);
        std::thread::spawn(move || {
            let mut reader = wal.reader_from(Lsn::ZERO);
            let mut per_writer = [0u64; 3];
            let mut total = 0;
            while total < 1500 {
                if let Some((_, r)) = reader.next_blocking(Duration::from_secs(5)) {
                    let w = r.xid.origin().raw() as usize;
                    // Each writer's own records arrive in its program order.
                    assert_eq!(r.xid.seq(), per_writer[w] + 1);
                    per_writer[w] += 1;
                    total += 1;
                } else {
                    panic!("tail starved");
                }
            }
            per_writer
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(tail.join().unwrap(), [500, 500, 500]);
    assert_eq!(wal.flush_lsn(), Lsn(1500));
}
