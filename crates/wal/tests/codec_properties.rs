//! Property tests for the `LogRecord` codec and the on-disk frame CRC
//! (satellite of DESIGN.md §10): arbitrary records round-trip byte-exactly
//! through encode/decode, and every single-bit flip of an encoded frame is
//! rejected by the CRC or a structural check — damage can never silently
//! decode into a different record.

use proptest::prelude::*;
use remus_common::{ShardId, Timestamp, TxnId};
use remus_storage::Value;
use remus_wal::{crc32, decode_record, encode_record_vec, LogOp, LogRecord, WriteKind, WriteOp};

/// Frame prefix bytes (payload length + CRC), mirroring the segment format.
const FRAME_PREFIX_LEN: usize = 8;

fn arb_record() -> impl Strategy<Value = LogRecord> {
    let write = (
        any::<u64>(),
        any::<u64>(),
        0..4u8,
        proptest::collection::vec(any::<u8>(), 0..48),
    )
        .prop_map(|(shard, key, kind, value)| {
            LogOp::Write(WriteOp {
                shard: ShardId(shard),
                key,
                kind: match kind {
                    0 => WriteKind::Insert,
                    1 => WriteKind::Update,
                    2 => WriteKind::Delete,
                    _ => WriteKind::Lock,
                },
                value: Value::copy_from_slice(&value),
            })
        });
    let op = prop_oneof![
        any::<u64>().prop_map(|t| LogOp::Begin(Timestamp(t))),
        write,
        Just(LogOp::Prepare),
        any::<u64>().prop_map(|t| LogOp::Commit(Timestamp(t))),
        Just(LogOp::Abort),
        any::<u64>().prop_map(|t| LogOp::CommitPrepared(Timestamp(t))),
        Just(LogOp::RollbackPrepared),
    ];
    (any::<u64>(), op).prop_map(|(xid, op)| LogRecord {
        xid: TxnId(xid),
        op,
    })
}

/// Builds one on-disk frame exactly as the flusher does:
/// `payload_len u32 LE | crc32 u32 LE | payload`, payload = `lsn u64 LE` +
/// codec-encoded record.
fn encode_frame(lsn: u64, record: &LogRecord) -> Vec<u8> {
    let mut payload = lsn.to_le_bytes().to_vec();
    payload.extend_from_slice(&encode_record_vec(record));
    let crc = crc32(&payload);
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes a buffer holding exactly one frame under the opener's rules:
/// plausible length, CRC over the payload, and a decodable record. Any
/// deviation is a rejection.
fn decode_frame(buf: &[u8]) -> Result<(u64, LogRecord), String> {
    if buf.len() < FRAME_PREFIX_LEN {
        return Err("short frame prefix".into());
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if !(8..=(1u32 << 24)).contains(&len) {
        return Err("implausible frame length".into());
    }
    let end = FRAME_PREFIX_LEN
        .checked_add(len as usize)
        .ok_or("frame length overflow")?;
    if end != buf.len() {
        return Err("frame does not span the buffer".into());
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let payload = &buf[FRAME_PREFIX_LEN..end];
    if crc32(payload) != crc {
        return Err("CRC mismatch".into());
    }
    let lsn = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let record = decode_record(&payload[8..]).map_err(|e| format!("{e:?}"))?;
    Ok((lsn, record))
}

proptest! {
    /// encode → decode → re-encode is the identity on bytes for every
    /// representable record.
    #[test]
    fn records_round_trip_byte_exactly(record in arb_record()) {
        let bytes = encode_record_vec(&record);
        let decoded = decode_record(&bytes).expect("decode freshly encoded record");
        prop_assert_eq!(&decoded, &record);
        prop_assert_eq!(encode_record_vec(&decoded), bytes);
    }

    /// Every single-bit flip anywhere in an encoded frame — length field,
    /// CRC field, LSN, or record body — is rejected. No flip may silently
    /// decode (CRC-32 detects all single-bit errors; length-field flips
    /// are caught structurally).
    #[test]
    fn every_single_bit_flip_is_rejected(record in arb_record(), lsn in 1u64..u64::MAX) {
        let frame = encode_frame(lsn, &record);
        decode_frame(&frame).expect("pristine frame decodes");
        for bit in 0..frame.len() * 8 {
            let mut damaged = frame.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(
                decode_frame(&damaged).is_err(),
                "bit flip at {bit} decoded silently"
            );
        }
    }

    /// Truncating a frame at any interior byte offset is rejected — the
    /// structural checks the torn-tail detector relies on.
    #[test]
    fn every_truncation_is_rejected(record in arb_record(), lsn in 1u64..u64::MAX) {
        let frame = encode_frame(lsn, &record);
        for cut in 0..frame.len() {
            prop_assert!(
                decode_frame(&frame[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
