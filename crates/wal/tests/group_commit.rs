//! Group-commit contract (DESIGN.md §10): concurrent committers share
//! fsyncs (`wal.fsyncs` ≪ `wal.appends`), and no commit is acknowledged
//! before the flusher batch containing its LSN is durable — proven with
//! blocking and fault-injecting [`SyncPolicy`] mocks.

use std::fs::{self, File};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use remus_common::{DbError, NodeId, Timestamp, TxnId, WalConfig};
use remus_wal::{FileBackend, LogOp, LogRecord, Lsn, SyncPolicy, Wal, WalBackend};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let pid = std::process::id();
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let p = std::env::temp_dir().join(format!("remus-gc-commit-{tag}-{pid}-{n}"));
        fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn rec(n: u64) -> LogRecord {
    LogRecord::new(TxnId::new(NodeId(0), n), LogOp::Commit(Timestamp(n)))
}

/// A sync that takes a fixed wall-clock slice, so concurrent committers
/// pile up behind it and must share batches.
#[derive(Debug)]
struct SlowSync(Duration);

impl SyncPolicy for SlowSync {
    fn sync(&self, file: &File) -> io::Result<()> {
        std::thread::sleep(self.0);
        file.sync_data()
    }
}

/// A sync that blocks while the gate is closed (ordering proofs).
#[derive(Debug)]
struct GatedSync {
    open: Mutex<bool>,
    cv: Condvar,
}

impl GatedSync {
    fn closed() -> Arc<GatedSync> {
        Arc::new(GatedSync {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

impl SyncPolicy for GatedSync {
    fn sync(&self, file: &File) -> io::Result<()> {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
        file.sync_data()
    }
}

/// A sync that always fails.
#[derive(Debug)]
struct BrokenSync;

impl SyncPolicy for BrokenSync {
    fn sync(&self, _file: &File) -> io::Result<()> {
        Err(io::Error::other("injected sync failure"))
    }
}

#[test]
fn concurrent_committers_coalesce_fsyncs() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 16;
    let dir = TempDir::new("coalesce");
    let wal = Arc::new(
        Wal::open_file_with_sync(
            &dir.0,
            &WalConfig::file(&dir.0),
            Arc::new(SlowSync(Duration::from_millis(2))),
        )
        .unwrap(),
    );
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    wal.append_durable(rec(t * PER_THREAD + i + 1)).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let appends = wal.appends();
    let fsyncs = wal.fsyncs();
    assert_eq!(appends, THREADS * PER_THREAD);
    assert!(fsyncs >= 1);
    // Committers blocked behind a slow sync must share the next batch:
    // well under one fsync per append, or group commit is not grouping.
    assert!(
        fsyncs * 2 < appends,
        "no coalescing: {fsyncs} fsyncs for {appends} appends"
    );
    assert_eq!(wal.durable_lsn(), Lsn(appends));
}

#[test]
fn a_held_sync_batches_everything_staged_behind_it() {
    const N: u64 = 100;
    let dir = TempDir::new("held");
    let gate = GatedSync::closed();
    let (backend, _) = FileBackend::open(
        &dir.0,
        &WalConfig::file(&dir.0),
        Arc::clone(&gate) as Arc<dyn SyncPolicy>,
    )
    .unwrap();
    for n in 1..=N {
        backend.stage(Lsn(n), &rec(n));
    }
    gate.open();
    backend.wait_durable(Lsn(N)).unwrap();
    // At most one sync for whatever slipped into the first batch plus one
    // for the rest: ≥50 appends per fsync on average.
    let fsyncs = backend.fsyncs();
    assert!(
        (1..=2).contains(&fsyncs),
        "{fsyncs} fsyncs for {N} staged records"
    );
    backend.shutdown();
}

#[test]
fn no_commit_is_acknowledged_before_its_batch_is_durable() {
    let dir = TempDir::new("ordering");
    let gate = GatedSync::closed();
    let wal = Arc::new(
        Wal::open_file_with_sync(
            &dir.0,
            &WalConfig::file(&dir.0),
            Arc::clone(&gate) as Arc<dyn SyncPolicy>,
        )
        .unwrap(),
    );
    let acked = Arc::new(AtomicBool::new(false));
    let committer = {
        let wal = Arc::clone(&wal);
        let acked = Arc::clone(&acked);
        std::thread::spawn(move || {
            let lsn = wal.append_durable(rec(1)).unwrap();
            acked.store(true, Ordering::SeqCst);
            lsn
        })
    };
    // The record is staged and the flusher is inside the blocked sync:
    // the committer must still be waiting and nothing may be durable.
    std::thread::sleep(Duration::from_millis(150));
    assert!(
        !acked.load(Ordering::SeqCst),
        "commit acknowledged before its batch was synced"
    );
    assert_eq!(wal.durable_lsn(), Lsn(0));
    gate.open();
    assert_eq!(committer.join().unwrap(), Lsn(1));
    assert!(acked.load(Ordering::SeqCst));
    assert_eq!(wal.durable_lsn(), Lsn(1));
}

#[test]
fn a_failed_sync_rejects_the_waiting_commit() {
    let dir = TempDir::new("broken");
    let (backend, _) =
        FileBackend::open(&dir.0, &WalConfig::file(&dir.0), Arc::new(BrokenSync)).unwrap();
    backend.stage(Lsn(1), &rec(1));
    let err = backend.wait_durable(Lsn(1)).unwrap_err();
    match err {
        DbError::Internal(msg) => assert!(msg.contains("wal flusher"), "{msg}"),
        other => panic!("expected Internal sync-failure error, got {other:?}"),
    }
    // Nothing was ever acknowledged as durable.
    assert_eq!(backend.durable_lsn(), Lsn(0));
    backend.shutdown();
}

/// The full commit path: `Wal::append_durable` returns the durability
/// failure to the committer (who aborts the transaction) instead of
/// panicking the process.
#[test]
fn append_durable_surfaces_sync_failure_as_an_error() {
    let dir = TempDir::new("surface");
    let wal =
        Wal::open_file_with_sync(&dir.0, &WalConfig::file(&dir.0), Arc::new(BrokenSync)).unwrap();
    let err = wal.append_durable(rec(1)).unwrap_err();
    match err {
        DbError::Internal(msg) => assert!(msg.contains("wal flusher"), "{msg}"),
        other => panic!("expected Internal sync-failure error, got {other:?}"),
    }
    assert_eq!(wal.durable_lsn(), Lsn(0));
}
