//! The timestamp representation shared by GTS and DTS.
//!
//! Both oracles produce a totally ordered 64-bit [`Timestamp`]. The
//! centralized GTS hands out consecutive integers; the decentralized DTS
//! packs a hybrid logical clock as `(physical_millis << LOGICAL_BITS) |
//! logical_counter`. Every consumer (MVCC visibility, ordered diversion,
//! MOCC) only relies on the total order, so the two schemes are
//! interchangeable — exactly the property the paper's MOCC "piggybacks" on.

use std::fmt;

/// Number of low bits reserved for the HLC logical counter.
pub const LOGICAL_BITS: u32 = 16;

/// A totally ordered commit/start timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// "Before all snapshots": the reserved minimal commit timestamp used to
    /// install migrated snapshot tuples on the destination node so that they
    /// are visible to every transaction that starts after the snapshot
    /// (paper §3.2).
    pub const SNAPSHOT_MIN: Timestamp = Timestamp(1);

    /// Invalid / unset timestamp.
    pub const INVALID: Timestamp = Timestamp(0);

    /// Largest representable timestamp; used as an "infinity" bound.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Builds an HLC timestamp from physical milliseconds and a logical
    /// counter.
    ///
    /// Saturates the logical component; callers (the HLC) guarantee it stays
    /// far below 2^16 in practice by advancing physical time.
    #[inline]
    pub const fn from_hlc(physical_ms: u64, logical: u16) -> Self {
        Timestamp((physical_ms << LOGICAL_BITS) | logical as u64)
    }

    /// The physical component of an HLC timestamp, in milliseconds.
    #[inline]
    pub const fn physical_ms(self) -> u64 {
        self.0 >> LOGICAL_BITS
    }

    /// The logical component of an HLC timestamp.
    #[inline]
    pub const fn logical(self) -> u16 {
        (self.0 & ((1 << LOGICAL_BITS) - 1)) as u16
    }

    /// True unless this is [`Timestamp::INVALID`].
    #[inline]
    pub const fn is_valid(self) -> bool {
        self.0 != 0
    }

    /// The immediately following timestamp.
    #[inline]
    pub const fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

impl From<u64> for Timestamp {
    #[inline]
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hlc_roundtrip() {
        let ts = Timestamp::from_hlc(1_234_567, 42);
        assert_eq!(ts.physical_ms(), 1_234_567);
        assert_eq!(ts.logical(), 42);
    }

    #[test]
    fn snapshot_min_precedes_everything_valid() {
        assert!(Timestamp::SNAPSHOT_MIN > Timestamp::INVALID);
        assert!(Timestamp::SNAPSHOT_MIN < Timestamp::from_hlc(1, 0));
    }

    #[test]
    fn next_is_strictly_increasing() {
        let ts = Timestamp(100);
        assert!(ts.next() > ts);
        assert_eq!(ts.next(), Timestamp(101));
    }

    proptest! {
        #[test]
        fn hlc_order_is_lexicographic(p1 in 0u64..1 << 40, l1 in 0u16.., p2 in 0u64..1 << 40, l2 in 0u16..) {
            let a = Timestamp::from_hlc(p1, l1);
            let b = Timestamp::from_hlc(p2, l2);
            prop_assert_eq!(a.cmp(&b), (p1, l1).cmp(&(p2, l2)));
        }

        #[test]
        fn hlc_components_roundtrip(p in 0u64..1 << 40, l in 0u16..) {
            let ts = Timestamp::from_hlc(p, l);
            prop_assert_eq!(ts.physical_ms(), p);
            prop_assert_eq!(ts.logical(), l);
        }
    }
}
