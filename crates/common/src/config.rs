//! Simulation configuration.
//!
//! One [`SimConfig`] is threaded through the cluster at construction time.
//! Defaults are tuned so the full figure harnesses run on a laptop in
//! seconds-to-minutes while keeping the *relative* costs from the paper's
//! testbed (10 Gbps network, NVMe SSD) intact — see DESIGN.md §1 for each
//! substitution.

use std::time::Duration;

/// Tunables for the simulated cluster and the migration engines.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// One-way latency added to every cross-node message (2PC rounds,
    /// propagation sends, pulls). The paper's 10 Gbps LAN gives RTTs in the
    /// tens-to-hundreds of microseconds.
    pub network_latency: Duration,
    /// Latency of one Squall chunk pull (paper: ~8 MB over the network plus
    /// destination write, "tens of milliseconds", §4.4.1).
    pub squall_pull_latency: Duration,
    /// Number of keys per Squall pull chunk (stands in for the 8 MB chunk).
    pub squall_chunk_keys: u64,
    /// Parallel apply workers on the destination node (paper §4.1 uses 18).
    pub replay_parallelism: usize,
    /// The migration enters the mode-change phase when the number of
    /// propagated-but-unapplied changes drops below this threshold
    /// (paper §3.4 "drops below a threshold").
    pub catchup_threshold: usize,
    /// Per-transaction update cache queues spill to disk above this many
    /// records (paper §3.3 "allows their change records being spilled to
    /// disk"). We model the spill with batched reload latency.
    pub spill_threshold: usize,
    /// Latency charged when reloading one spilled batch.
    pub spill_reload_latency: Duration,
    /// Maximum simulated physical clock skew between nodes under DTS
    /// (paper §2.2: NTP/PTP-synchronized clocks; DTS tolerates skew).
    pub max_clock_skew: Duration,
    /// Simulated cost of copying one tuple during snapshot copy; models the
    /// streaming scan + network + install path.
    pub snapshot_copy_per_tuple: Duration,
    /// How long a transaction waits on a row lock or prepare-wait before the
    /// deadlock/timeout guard trips. Generous: only failure-injection tests
    /// should ever hit it.
    pub lock_wait_timeout: Duration,
}

impl SimConfig {
    /// A configuration with all simulated latencies set to zero: protocol
    /// logic only. Unit and property tests use this to stay fast and
    /// deterministic.
    pub fn instant() -> Self {
        SimConfig {
            network_latency: Duration::ZERO,
            squall_pull_latency: Duration::ZERO,
            squall_chunk_keys: 512,
            replay_parallelism: 4,
            catchup_threshold: 64,
            spill_threshold: 4096,
            spill_reload_latency: Duration::ZERO,
            max_clock_skew: Duration::ZERO,
            snapshot_copy_per_tuple: Duration::ZERO,
            lock_wait_timeout: Duration::from_secs(10),
        }
    }

    /// The default "paper-shaped" configuration used by the figure
    /// harnesses: relative costs mirror the testbed in §4.1.
    pub fn paper_shaped() -> Self {
        SimConfig {
            network_latency: Duration::from_micros(100),
            squall_pull_latency: Duration::from_millis(25),
            squall_chunk_keys: 512,
            replay_parallelism: 18,
            catchup_threshold: 64,
            spill_threshold: 4096,
            spill_reload_latency: Duration::from_micros(200),
            max_clock_skew: Duration::from_millis(1),
            snapshot_copy_per_tuple: Duration::from_nanos(800),
            lock_wait_timeout: Duration::from_secs(30),
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::instant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_config_has_no_latency() {
        let c = SimConfig::instant();
        assert_eq!(c.network_latency, Duration::ZERO);
        assert_eq!(c.squall_pull_latency, Duration::ZERO);
    }

    #[test]
    fn paper_shaped_orders_costs_like_the_testbed() {
        let c = SimConfig::paper_shaped();
        // A chunk pull must dwarf a network hop, which must dwarf a tuple
        // copy — this ordering is what produces the paper's Squall collapse.
        assert!(c.squall_pull_latency > 10 * c.network_latency);
        assert!(c.network_latency > c.snapshot_copy_per_tuple);
        assert_eq!(c.replay_parallelism, 18);
    }
}
