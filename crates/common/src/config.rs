//! Simulation configuration.
//!
//! One [`SimConfig`] is threaded through the cluster at construction time.
//! Defaults are tuned so the full figure harnesses run on a laptop in
//! seconds-to-minutes while keeping the *relative* costs from the paper's
//! testbed (10 Gbps network, NVMe SSD) intact — see DESIGN.md §1 for each
//! substitution.

use std::path::PathBuf;
use std::time::Duration;

/// Which durability backend each node's write-ahead log runs on.
///
/// The default is [`WalBackendKind::Memory`]: appends are "durable" the
/// moment they land in the in-memory log, restart loses everything, and
/// every existing test keeps its exact timing. [`WalBackendKind::File`]
/// adds the on-disk segment log (DESIGN.md §10): each node writes
/// length-prefixed, CRC-protected records under `dir/node-<id>/`, commits
/// wait on the group-commit flusher, and `Cluster::restart_node` can
/// rebuild the node from the segments it left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalBackendKind {
    /// In-memory only; a restart loses the log (the pre-durability model).
    Memory,
    /// File-backed segment log rooted at `dir` (one `node-<id>` subdirectory
    /// per node).
    File {
        /// Base directory for the cluster's WAL segments.
        dir: PathBuf,
    },
}

/// Write-ahead-log durability configuration, embedded in [`SimConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Durability backend; [`WalBackendKind::Memory`] by default.
    pub backend: WalBackendKind,
    /// Rotate to a new segment file once the current one holds at least this
    /// many payload bytes. Small values exercise rotation in tests.
    pub segment_bytes: u64,
    /// Maximum records the group-commit flusher writes per fsync batch.
    pub group_commit_batch: usize,
}

impl WalConfig {
    /// The in-memory default: no files, no fsyncs, restart loses the log.
    pub fn memory() -> Self {
        WalConfig {
            backend: WalBackendKind::Memory,
            segment_bytes: 4 * 1024 * 1024,
            group_commit_batch: 256,
        }
    }

    /// A file-backed log rooted at `dir` with group commit on.
    pub fn file(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            backend: WalBackendKind::File { dir: dir.into() },
            ..WalConfig::memory()
        }
    }

    /// True when the backend persists across restarts.
    pub fn is_durable(&self) -> bool {
        matches!(self.backend, WalBackendKind::File { .. })
    }
}

impl Default for WalConfig {
    fn default() -> Self {
        Self::memory()
    }
}

/// Transaction isolation level the cluster runs at.
///
/// [`IsolationLevel::SnapshotIsolation`] is the paper's model and the
/// default: every existing test, bench, and chaos scenario runs under it
/// unchanged. [`IsolationLevel::Serializable`] layers SSI (Cahill-style
/// serializable snapshot isolation, per Ports & Grittner) on top: each
/// node keeps a SIREAD lock table, transactions carry in/out
/// rw-antidependency flags, and a transaction whose commit would complete
/// a dangerous structure (two consecutive rw-edges through it) aborts
/// with [`crate::DbError::SsiAbort`]. See DESIGN.md §14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationLevel {
    /// Plain snapshot isolation (the paper's model; admits write skew).
    #[default]
    SnapshotIsolation,
    /// Serializable snapshot isolation: SI plus SIREAD locks and
    /// dangerous-structure aborts.
    Serializable,
}

/// Worker-pool shape of the migration data plane.
///
/// One value is embedded in [`SimConfig`] and read by every engine:
/// snapshot copy splits each shard into `chunk_size`-key ranges processed
/// by `copy_workers` threads, catch-up replay fans disjoint transactions
/// out over `replay_workers` threads, and the propagation process drains
/// the WAL in `drain_batch`-record reads instead of one record at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelismConfig {
    /// Snapshot-copy worker threads per migration (chunks fan out over
    /// these; 1 reproduces the sequential copy byte for byte).
    pub copy_workers: usize,
    /// Parallel apply workers on the destination node (paper §4.1 uses 18).
    pub replay_workers: usize,
    /// Keys per snapshot-copy chunk. Each chunk carries its own copy-LSN
    /// watermark so replay can begin on finished chunks while others copy.
    pub chunk_size: u64,
    /// Maximum WAL records pulled per propagation drain.
    pub drain_batch: usize,
}

impl ParallelismConfig {
    /// A fully sequential data plane: one copy worker, one replay worker,
    /// single-record drains. Used by equivalence tests and as the baseline
    /// leg of the sequential-vs-parallel bench comparison.
    pub fn sequential() -> Self {
        ParallelismConfig {
            copy_workers: 1,
            replay_workers: 1,
            chunk_size: u64::MAX,
            drain_batch: 1,
        }
    }
}

/// Foreground hot-path shape: storage-index striping, version-chain GC
/// cadence, and GTS lease size.
///
/// One value is embedded in [`SimConfig`]. `index_stripes` controls how many
/// lock stripes each versioned table's key index is split into;
/// `gc_interval` is the cadence at which the maintenance thread prunes
/// version-chain suffixes below the safe-ts watermark (zero disables GC);
/// `gts_lease` is how many timestamps a node takes from the central
/// sequencer per fetch.
///
/// `gts_lease > 1` keeps the oracle contract (per-node monotonicity,
/// global uniqueness, causality via `observe`) but gives up the *real-time*
/// recency the single-counter GTS provides for free: a snapshot taken on
/// one node may be older than a commit that already finished on another.
/// That is exactly the DTS trust model, so leases are opt-in — every preset
/// keeps `gts_lease: 1`, and the chaos checker's strict GTS mode assumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotPathConfig {
    /// Lock stripes per versioned-table key index (1 = the original single
    /// `RwLock<BTreeMap>`).
    pub index_stripes: usize,
    /// Cadence of incremental version-chain GC in the maintenance thread.
    /// `Duration::ZERO` disables GC entirely.
    pub gc_interval: Duration,
    /// Timestamps leased from the central GTS sequencer per fetch. 1
    /// reproduces the unbatched oracle byte for byte.
    pub gts_lease: u64,
}

impl HotPathConfig {
    /// Today's behavior, byte for byte: one index stripe, no GC, unbatched
    /// timestamps. Baseline leg of the foreground bench and the equivalence
    /// tests.
    pub fn sequential() -> Self {
        HotPathConfig {
            index_stripes: 1,
            gc_interval: Duration::ZERO,
            gts_lease: 1,
        }
    }

    /// The optimized foreground path: striped index, frequent incremental
    /// GC, batched timestamp leases. Used by the optimized leg of
    /// `bench_foreground` and the dedicated concurrency suites.
    pub fn tuned() -> Self {
        HotPathConfig {
            index_stripes: 8,
            gc_interval: Duration::from_millis(2),
            gts_lease: 64,
        }
    }
}

/// Tunables of the elasticity autopilot (`remus-planner`).
///
/// One value parameterizes the whole loop: when the imbalance detector
/// trips, how migrations are costed and capped, how the foreground-latency
/// throttle behaves, and the RNG seed that makes a planning run replayable.
/// The planner is tick-driven and never reads the wall clock, so every
/// "window" here is one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Plan migrations when `max node load / mean node load` exceeds this.
    /// Use a huge value to disable the balancer and leave only co-location.
    pub imbalance_ratio: f64,
    /// Ticks a shard stays immune to re-migration after it moves.
    pub cooldown_ticks: u64,
    /// Maximum migrations emitted per planner tick.
    pub max_moves_per_tick: usize,
    /// Maximum in-flight migrations any single node may participate in
    /// (as source or destination) within one plan.
    pub node_concurrency: usize,
    /// EWMA weight of the newest load window (0..=1; 1 = no smoothing).
    pub ewma_alpha: f64,
    /// Estimated cost per live version in a candidate shard (stand-in for
    /// bytes to copy). Zero ignores version counts.
    pub cost_weight_versions: f64,
    /// Estimated cost per WAL record appended on the source node in the
    /// last window (stand-in for catch-up replay traffic). Zero ignores
    /// the WAL rate.
    pub cost_weight_wal: f64,
    /// Lion-style co-location: consider moves that reunite shard pairs
    /// frequently written by the same transaction, cutting `txn.2pc_hops`.
    pub colocation: bool,
    /// Minimum cross-shard commits between a pair in the last window
    /// before a co-location move is considered.
    pub colocation_min_cross: u64,
    /// Foreground p99 budget: while the windowed commit p99 exceeds this,
    /// the autopilot pauses between migrations. `Duration::ZERO` disables
    /// the throttle.
    pub latency_budget: Duration,
    /// Retries per failed migration (capped backoff between attempts).
    pub max_retries: u32,
    /// Seed for the planner's tie-breaking RNG; two planners with equal
    /// seeds fed equal observations make identical decisions.
    pub seed: u64,
    /// Lion-style replicate-or-migrate: when a hot node's load is
    /// read-mostly, consider provisioning a WAL-shipped replica on a spare
    /// node instead of migrating shards off the hot node.
    pub replication: bool,
    /// Minimum read fraction (reads / (reads + writes), replica-served
    /// reads included) of the hot node's window before replication is
    /// priced at all; below it the balancer migrates as before.
    pub replica_read_ratio: f64,
    /// Estimated ongoing cost per WAL record shipped to a replica in one
    /// window (the replica applies *every* primary's stream, so this
    /// prices total write traffic). Zero ignores ship bandwidth.
    pub cost_weight_ship: f64,
    /// Maximum replicas the planner will keep provisioned at once.
    pub max_replicas: usize,
    /// Decommission floor: when the cluster-wide windowed read demand
    /// (primary-served + replica-served) falls below this, a provisioned
    /// replica is no longer earning its ship bandwidth and is torn down.
    pub replica_min_reads: f64,
}

impl PlannerConfig {
    /// General-purpose defaults: balance at 1.5x mean load, co-location
    /// on, one move per node per tick, moderate smoothing.
    pub fn balanced() -> Self {
        PlannerConfig {
            imbalance_ratio: 1.5,
            cooldown_ticks: 8,
            max_moves_per_tick: 4,
            node_concurrency: 1,
            ewma_alpha: 0.5,
            cost_weight_versions: 1.0,
            cost_weight_wal: 1.0,
            colocation: true,
            colocation_min_cross: 4,
            latency_budget: Duration::ZERO,
            max_retries: 3,
            seed: 0,
            replication: false,
            replica_read_ratio: 0.8,
            cost_weight_ship: 1.0,
            max_replicas: 1,
            replica_min_reads: 1.0,
        }
    }

    /// `balanced()` with the replicate-or-migrate decision core enabled.
    /// Kept as a separate preset so every existing balanced() user keeps
    /// the migrate-only behavior byte-for-byte.
    pub fn adaptive() -> Self {
        PlannerConfig {
            replication: true,
            ..Self::balanced()
        }
    }

    /// Chaos-replay defaults: imbalance trigger only, cost weights zeroed
    /// (version counts and WAL rates vary with fault timing and would
    /// break decision replay), no throttle, generous cooldown so each
    /// shard moves at most once per scenario.
    pub fn chaos_mode(seed: u64) -> Self {
        PlannerConfig {
            imbalance_ratio: 1.2,
            cooldown_ticks: u64::MAX,
            max_moves_per_tick: 2,
            node_concurrency: 1,
            ewma_alpha: 1.0,
            cost_weight_versions: 0.0,
            cost_weight_wal: 0.0,
            colocation: false,
            colocation_min_cross: u64::MAX,
            latency_budget: Duration::ZERO,
            max_retries: 0,
            seed,
            replication: false,
            replica_read_ratio: 0.8,
            cost_weight_ship: 0.0,
            max_replicas: 1,
            replica_min_reads: 1.0,
        }
    }

    /// `chaos_mode()` with replica actions on: ship cost stays zeroed
    /// (write counts race fault timing), so replicate-vs-migrate and
    /// decommission decisions reduce to the read-fraction trigger and the
    /// absolute read floor — both pure functions of the measured batch.
    pub fn chaos_replica_mode(seed: u64) -> Self {
        PlannerConfig {
            replication: true,
            replica_read_ratio: 0.75,
            ..Self::chaos_mode(seed)
        }
    }
}

/// Tunables for the simulated cluster and the migration engines.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// One-way latency added to every cross-node message (2PC rounds,
    /// propagation sends, pulls). The paper's 10 Gbps LAN gives RTTs in the
    /// tens-to-hundreds of microseconds.
    pub network_latency: Duration,
    /// Latency of one Squall chunk pull (paper: ~8 MB over the network plus
    /// destination write, "tens of milliseconds", §4.4.1).
    pub squall_pull_latency: Duration,
    /// Number of keys per Squall pull chunk (stands in for the 8 MB chunk).
    pub squall_chunk_keys: u64,
    /// Worker-pool shape of the migration data plane (copy/replay workers,
    /// chunk size, drain batch).
    pub parallelism: ParallelismConfig,
    /// Foreground hot-path shape (index stripes, GC cadence, GTS lease).
    pub hot_path: HotPathConfig,
    /// The migration enters the mode-change phase when the number of
    /// propagated-but-unapplied changes drops below this threshold
    /// (paper §3.4 "drops below a threshold").
    pub catchup_threshold: usize,
    /// Per-transaction update cache queues spill to disk above this many
    /// records (paper §3.3 "allows their change records being spilled to
    /// disk"). We model the spill with batched reload latency.
    pub spill_threshold: usize,
    /// Latency charged when reloading one spilled batch.
    pub spill_reload_latency: Duration,
    /// Maximum simulated physical clock skew between nodes under DTS
    /// (paper §2.2: NTP/PTP-synchronized clocks; DTS tolerates skew).
    pub max_clock_skew: Duration,
    /// Simulated cost of copying one tuple during snapshot copy; models the
    /// streaming scan + network + install path.
    pub snapshot_copy_per_tuple: Duration,
    /// How long a transaction waits on a row lock or prepare-wait before the
    /// deadlock/timeout guard trips. Generous: only failure-injection tests
    /// should ever hit it.
    pub lock_wait_timeout: Duration,
    /// WAL durability backend (in-memory by default; file-backed segments
    /// with group commit when pointed at a directory).
    pub wal: WalConfig,
    /// Transaction isolation level. Snapshot isolation by default; the
    /// serializable mode is opt-in because SIREAD tracking costs memory
    /// and aborts transactions SI would admit.
    pub isolation: IsolationLevel,
}

impl SimConfig {
    /// A configuration with all simulated latencies set to zero: protocol
    /// logic only. Unit and property tests use this to stay fast and
    /// deterministic.
    pub fn instant() -> Self {
        SimConfig {
            network_latency: Duration::ZERO,
            squall_pull_latency: Duration::ZERO,
            squall_chunk_keys: 512,
            parallelism: ParallelismConfig {
                copy_workers: 4,
                replay_workers: 4,
                chunk_size: 128,
                drain_batch: 32,
            },
            hot_path: HotPathConfig {
                index_stripes: 8,
                gc_interval: Duration::ZERO,
                gts_lease: 1,
            },
            catchup_threshold: 64,
            spill_threshold: 4096,
            spill_reload_latency: Duration::ZERO,
            max_clock_skew: Duration::ZERO,
            snapshot_copy_per_tuple: Duration::ZERO,
            lock_wait_timeout: Duration::from_secs(10),
            wal: WalConfig::memory(),
            isolation: IsolationLevel::SnapshotIsolation,
        }
    }

    /// The default "paper-shaped" configuration used by the figure
    /// harnesses: relative costs mirror the testbed in §4.1.
    pub fn paper_shaped() -> Self {
        SimConfig {
            network_latency: Duration::from_micros(100),
            squall_pull_latency: Duration::from_millis(25),
            squall_chunk_keys: 512,
            parallelism: ParallelismConfig {
                copy_workers: 8,
                replay_workers: 18,
                chunk_size: 1024,
                drain_batch: 64,
            },
            hot_path: HotPathConfig {
                index_stripes: 8,
                gc_interval: Duration::ZERO,
                gts_lease: 1,
            },
            catchup_threshold: 64,
            spill_threshold: 4096,
            spill_reload_latency: Duration::from_micros(200),
            max_clock_skew: Duration::from_millis(1),
            snapshot_copy_per_tuple: Duration::from_nanos(800),
            lock_wait_timeout: Duration::from_secs(30),
            wal: WalConfig::memory(),
            isolation: IsolationLevel::SnapshotIsolation,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::instant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_config_has_no_latency() {
        let c = SimConfig::instant();
        assert_eq!(c.network_latency, Duration::ZERO);
        assert_eq!(c.squall_pull_latency, Duration::ZERO);
    }

    #[test]
    fn paper_shaped_orders_costs_like_the_testbed() {
        let c = SimConfig::paper_shaped();
        // A chunk pull must dwarf a network hop, which must dwarf a tuple
        // copy — this ordering is what produces the paper's Squall collapse.
        assert!(c.squall_pull_latency > 10 * c.network_latency);
        assert!(c.network_latency > c.snapshot_copy_per_tuple);
        assert_eq!(c.parallelism.replay_workers, 18);
    }

    #[test]
    fn sequential_parallelism_is_single_threaded_everywhere() {
        let p = ParallelismConfig::sequential();
        assert_eq!(p.copy_workers, 1);
        assert_eq!(p.replay_workers, 1);
        assert_eq!(p.drain_batch, 1);
        // A maximal chunk keeps every shard in one chunk: the copy is the
        // exact sequential scan.
        assert_eq!(p.chunk_size, u64::MAX);
    }

    #[test]
    fn sequential_hot_path_is_todays_behavior() {
        let h = HotPathConfig::sequential();
        assert_eq!(h.index_stripes, 1);
        assert_eq!(h.gc_interval, Duration::ZERO);
        assert_eq!(h.gts_lease, 1);
    }

    #[test]
    fn planner_presets_are_self_consistent() {
        let b = PlannerConfig::balanced();
        assert!(b.imbalance_ratio > 1.0);
        assert!(b.ewma_alpha > 0.0 && b.ewma_alpha <= 1.0);
        assert!(b.colocation);

        let c = PlannerConfig::chaos_mode(42);
        assert_eq!(c.seed, 42);
        // Decision replay: no timing-polluted signals, no wall-clock throttle.
        assert_eq!(c.cost_weight_versions, 0.0);
        assert_eq!(c.cost_weight_wal, 0.0);
        assert_eq!(c.latency_budget, Duration::ZERO);
        assert!(!c.colocation);
        // Replication is opt-in everywhere: balanced() and chaos_mode()
        // users keep migrate-only planning unchanged.
        assert!(!b.replication);
        assert!(!c.replication);

        let a = PlannerConfig::adaptive();
        assert!(a.replication);
        assert!(a.replica_read_ratio > 0.5 && a.replica_read_ratio <= 1.0);
        assert!(a.max_replicas >= 1);

        let r = PlannerConfig::chaos_replica_mode(42);
        assert!(r.replication);
        // Replay safety: replica decisions must not price timing-polluted
        // signals either.
        assert_eq!(r.cost_weight_ship, 0.0);
        assert_eq!(r.cost_weight_versions, 0.0);
        assert_eq!(r.cooldown_ticks, u64::MAX);
    }

    #[test]
    fn presets_keep_gc_and_leases_opt_in() {
        // GC cadence and GTS leases change timing-visible behavior (GC) or
        // the real-time recency model (leases), so every preset keeps them
        // off; only the striping — semantically invisible — is on by
        // default.
        for c in [SimConfig::instant(), SimConfig::paper_shaped()] {
            assert_eq!(c.hot_path.gc_interval, Duration::ZERO);
            assert_eq!(c.hot_path.gts_lease, 1);
            assert!(c.hot_path.index_stripes >= 1);
        }
    }

    #[test]
    fn wal_defaults_to_memory_in_every_preset() {
        // Durability is opt-in: existing tests and benches keep the exact
        // in-memory timing unless a config points the WAL at a directory.
        for c in [SimConfig::instant(), SimConfig::paper_shaped()] {
            assert_eq!(c.wal.backend, WalBackendKind::Memory);
            assert!(!c.wal.is_durable());
        }
        let file = WalConfig::file("/tmp/wal");
        assert!(file.is_durable());
        assert!(file.segment_bytes > 0);
        assert!(file.group_commit_batch >= 1);
    }

    #[test]
    fn isolation_defaults_to_snapshot_in_every_preset() {
        // Serializable mode is opt-in: SIREAD tracking and
        // dangerous-structure aborts change both memory use and which
        // transactions survive, so no preset may turn it on.
        assert_eq!(IsolationLevel::default(), IsolationLevel::SnapshotIsolation);
        for c in [SimConfig::instant(), SimConfig::paper_shaped()] {
            assert_eq!(c.isolation, IsolationLevel::SnapshotIsolation);
        }
    }
}
