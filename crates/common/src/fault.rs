//! Fault-injection seams shared by every crate.
//!
//! Production code calls [`FaultInjector::decide`] at a handful of named
//! [`InjectionPoint`]s (2PC steps of the diverting transaction `T_m`,
//! destination-side MOCC validation, replay apply, propagation shipping, the
//! sync-mode barrier, snapshot copy). With no injector installed every call
//! resolves to [`FaultAction::Continue`] and the hot path costs one relaxed
//! read-lock acquisition.
//!
//! The chaos harness (`remus-chaos`) installs a seeded, deterministic
//! injector; unit tests install hand-built ones. Injectors must not consult
//! wall-clock time to make decisions — determinism of a chaos run relies on
//! every decision being a pure function of (point, node, occurrence count).

use std::fmt;
use std::time::Duration;

use crate::ids::NodeId;

/// A named seam in the migration/commit pipeline where a fault can fire.
///
/// The set is deliberately small and stable: each variant corresponds to one
/// call site in `remus-core` (or `remus-txn` by way of the chaos T_m driver),
/// documented on the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionPoint {
    /// Before the bulk snapshot copy of the migrating shards starts
    /// (`remus.rs`). `Fail` exercises the engine's unwind path.
    SnapshotCopy,
    /// In a snapshot-copy worker, before streaming one key-range chunk
    /// (`snapshot.rs`). `Delay` staggers the pool; `Fail`/`Crash` kill the
    /// worker mid-chunk — the chunk is retried by the pool (the frozen
    /// install is idempotent), so the migration still completes.
    CopyChunk,
    /// In the propagation worker, before shipping one change batch to the
    /// destination (`propagation.rs`). `Delay` models propagation lag.
    PropagationShip,
    /// In a destination replay worker, before applying one committed change
    /// set (`replay.rs`). `Delay` models a stalled replay worker.
    ReplayApply,
    /// Immediately after sync commit mode is enabled, before waiting for
    /// unsynchronized timestamps to drain (`remus.rs`). `Delay` widens the
    /// mode-change window.
    SyncBarrier,
    /// In a destination replay worker, on receipt of a `Validate` message —
    /// i.e. during destination-side MOCC validation of a sync-mode shadow
    /// (`replay.rs`). `Crash` models the destination crashing after the
    /// shadow prepared but before the ack reaches the source; `Fail` forces
    /// a validation failure.
    MoccValidation,
    /// In the chaos T_m driver, before any participant prepared.
    TmBeforePrepare,
    /// In the chaos T_m driver, after every participant prepared but before
    /// a commit timestamp was chosen.
    TmAfterPrepare,
    /// In the chaos T_m driver, after the commit timestamp was chosen but
    /// before any participant committed.
    TmBeforeCommit,
    /// In the chaos T_m driver, after exactly one (non-coordinator)
    /// participant committed. `Crash` here must roll forward on recovery.
    TmAfterFirstCommit,
    /// In the chaos restart driver: a node's process-level state is dropped
    /// at a seeded stage of the migration and the node is rebuilt from its
    /// on-disk WAL via `Cluster::restart_node`. Only meaningful with the
    /// file-backed WAL; `Crash` marks the seeded kill.
    CrashRestart,
    /// In a WAL shipper, before sending one LSN-prefixed frame batch to a
    /// replica (`replication.rs`). `Delay` models ship lag; `Fail` defers
    /// the batch so it arrives after its successor (reorder, then
    /// retransmit); `Crash` duplicates the send.
    ShipBatch,
    /// In a replica applier, before applying one shipped batch behind the
    /// apply-LSN gate (`replication.rs`). `Delay` models a stalled replica.
    ReplicaApply,
}

impl InjectionPoint {
    /// Every injection point, in pipeline order.
    pub const ALL: [InjectionPoint; 13] = [
        InjectionPoint::SnapshotCopy,
        InjectionPoint::CopyChunk,
        InjectionPoint::PropagationShip,
        InjectionPoint::ReplayApply,
        InjectionPoint::SyncBarrier,
        InjectionPoint::MoccValidation,
        InjectionPoint::TmBeforePrepare,
        InjectionPoint::TmAfterPrepare,
        InjectionPoint::TmBeforeCommit,
        InjectionPoint::TmAfterFirstCommit,
        InjectionPoint::CrashRestart,
        InjectionPoint::ShipBatch,
        InjectionPoint::ReplicaApply,
    ];
}

impl fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InjectionPoint::SnapshotCopy => "snapshot-copy",
            InjectionPoint::CopyChunk => "copy-chunk",
            InjectionPoint::PropagationShip => "propagation-ship",
            InjectionPoint::ReplayApply => "replay-apply",
            InjectionPoint::SyncBarrier => "sync-barrier",
            InjectionPoint::MoccValidation => "mocc-validation",
            InjectionPoint::TmBeforePrepare => "tm-before-prepare",
            InjectionPoint::TmAfterPrepare => "tm-after-prepare",
            InjectionPoint::TmBeforeCommit => "tm-before-commit",
            InjectionPoint::TmAfterFirstCommit => "tm-after-first-commit",
            InjectionPoint::CrashRestart => "crash-restart",
            InjectionPoint::ShipBatch => "ship-batch",
            InjectionPoint::ReplicaApply => "replica-apply",
        };
        f.write_str(name)
    }
}

/// What the code at an injection point should do.
///
/// Not every point honors every action; the per-variant docs on
/// [`InjectionPoint`] say which are meaningful. Points ignore actions they
/// cannot express (e.g. `Crash` at a pure-delay seam degrades to `Continue`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: proceed normally.
    Continue,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
    /// Fail the operation with an error (clean, recoverable failure).
    Fail,
    /// Simulate a process crash at this point: abandon the in-flight state
    /// without running any cleanup, leaving recovery to sort it out.
    Crash,
}

/// Decides the fault action for each visit to an injection point.
///
/// `decide` is called once per *visit*; implementations that want
/// "the 3rd propagation batch" semantics count occurrences internally.
/// Implementations must be deterministic given the visit sequence and must
/// not read wall-clock time.
pub trait FaultInjector: Send + Sync {
    /// Returns the action for this visit of `point` on `node`.
    fn decide(&self, point: InjectionPoint, node: NodeId) -> FaultAction;
}

/// The no-op injector: every decision is [`FaultAction::Continue`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn decide(&self, _point: InjectionPoint, _node: NodeId) -> FaultAction {
        FaultAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_always_continues() {
        for point in InjectionPoint::ALL {
            assert_eq!(NoFaults.decide(point, NodeId(0)), FaultAction::Continue);
        }
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<String> = InjectionPoint::ALL.iter().map(|p| p.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), InjectionPoint::ALL.len());
    }
}
