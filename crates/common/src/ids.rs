//! Strongly-typed identifiers.
//!
//! The simulation moves many small integers around (node ids, shard ids,
//! transaction ids). Newtypes keep them from being mixed up at compile time
//! while compiling down to plain integers.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifies one elastic node in the cluster.
    NodeId,
    u32
);

id_type!(
    /// Identifies a shard. Shards are the unit of migration: each shard of a
    /// user table is managed as a regular table on exactly one node.
    ShardId,
    u64
);

id_type!(
    /// Identifies a user table (sharded across nodes by consistent hashing).
    TableId,
    u32
);

id_type!(
    /// Identifies a benchmark client session.
    ClientId,
    u32
);

/// A globally unique transaction id (the paper's `xid`).
///
/// In PolarDB-PG each node assigns xids locally; we keep them globally unique
/// by packing the originating node id into the high bits, which lets a
/// destination node record CLOG entries for shadow transactions of source
/// transactions without collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Sentinel meaning "no transaction" (analogous to `InvalidTransactionId`).
    pub const INVALID: TxnId = TxnId(0);

    /// Builds an xid from the originating node and a per-node sequence number.
    #[inline]
    pub const fn new(node: NodeId, seq: u64) -> Self {
        // 16 bits of node, 48 bits of sequence. 48 bits of per-node
        // transactions is far beyond anything the simulation produces.
        TxnId(((node.0 as u64) << 48) | (seq & ((1 << 48) - 1)))
    }

    /// The node on which this transaction originated.
    #[inline]
    pub const fn origin(self) -> NodeId {
        NodeId((self.0 >> 48) as u32)
    }

    /// The per-node sequence number.
    #[inline]
    pub const fn seq(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }

    /// True unless this is [`TxnId::INVALID`].
    #[inline]
    pub const fn is_valid(self) -> bool {
        self.0 != 0
    }

    /// Bit flagging a shadow transaction id (the top bit of the sequence
    /// part; real per-node sequences stay far below it).
    const SHADOW_BIT: u64 = 1 << 47;

    /// The shadow-transaction id for this source transaction. A shadow
    /// re-executes a source transaction's changes on the migration
    /// destination under the same start/commit timestamps, but it must be
    /// a *distinct* transaction: the source transaction may itself be a
    /// 2PC participant on the destination node for its writes to
    /// non-migrating shards there.
    #[inline]
    pub const fn shadow(self) -> TxnId {
        TxnId(self.0 | Self::SHADOW_BIT)
    }

    /// True if this id names a shadow transaction.
    #[inline]
    pub const fn is_shadow(self) -> bool {
        self.0 & Self::SHADOW_BIT != 0
    }

    /// The source transaction a shadow id was derived from.
    #[inline]
    pub const fn unshadow(self) -> TxnId {
        TxnId(self.0 & !Self::SHADOW_BIT)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TxnId(n{}:{})", self.origin().0, self.seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let n = NodeId(3);
        assert_eq!(n.raw(), 3);
        assert_eq!(n.to_string(), "NodeId(3)");
        assert_eq!(NodeId::from(7), NodeId(7));
    }

    #[test]
    fn txn_id_packs_node_and_seq() {
        let id = TxnId::new(NodeId(5), 123_456);
        assert_eq!(id.origin(), NodeId(5));
        assert_eq!(id.seq(), 123_456);
        assert!(id.is_valid());
    }

    #[test]
    fn txn_id_invalid_sentinel() {
        assert!(!TxnId::INVALID.is_valid());
        // A node-0 seq-0 id is the invalid sentinel by construction: real
        // sequences start at 1.
        assert_eq!(TxnId::new(NodeId(0), 0), TxnId::INVALID);
    }

    #[test]
    fn txn_ids_from_different_nodes_never_collide() {
        let a = TxnId::new(NodeId(1), 42);
        let b = TxnId::new(NodeId(2), 42);
        assert_ne!(a, b);
    }

    #[test]
    fn shadow_ids_are_distinct_and_reversible() {
        let x = TxnId::new(NodeId(3), 12_345);
        let s = x.shadow();
        assert_ne!(s, x);
        assert!(s.is_shadow());
        assert!(!x.is_shadow());
        assert_eq!(s.unshadow(), x);
        assert_eq!(s.origin(), NodeId(3));
        // Idempotent.
        assert_eq!(s.shadow(), s);
    }

    #[test]
    fn txn_id_orders_by_node_then_seq() {
        let a = TxnId::new(NodeId(1), u64::MAX >> 20);
        let b = TxnId::new(NodeId(2), 1);
        assert!(a < b);
    }
}
