#![warn(missing_docs)]

//! Shared foundation types for the Remus reproduction.
//!
//! This crate holds the vocabulary that every other crate speaks:
//! strongly-typed identifiers ([`ids`]), the timestamp representation used by
//! both the centralized and decentralized oracles ([`ts`]), the common error
//! type ([`error`]), simulation configuration ([`config`]), and lightweight
//! metrics primitives used by the workload driver and benchmark harnesses
//! ([`metrics`]).
//!
//! Nothing in this crate knows about storage, transactions, or migration; it
//! is the bottom of the dependency stack.

pub mod config;
pub mod error;
pub mod fault;
pub mod ids;
pub mod json;
pub mod metrics;
pub mod ts;

pub use config::{
    HotPathConfig, IsolationLevel, ParallelismConfig, PlannerConfig, SimConfig, WalBackendKind,
    WalConfig,
};
pub use error::{DbError, DbResult};
pub use fault::{FaultAction, FaultInjector, InjectionPoint, NoFaults};
pub use ids::{ClientId, NodeId, ShardId, TableId, TxnId};
pub use json::Json;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramWindow, MetricSample, MetricsDelta, MetricsRegistry,
};
pub use ts::Timestamp;
