//! The error type shared across the database and migration engines.

use std::fmt;

use crate::ids::{NodeId, ShardId, TxnId};

/// Why a transaction or migration operation failed.
///
/// The distinction between [`DbError::WwConflict`] and
/// [`DbError::MigrationAbort`] matters for the evaluation: the paper counts
/// *migration-induced* aborts separately from ordinary write-write conflict
/// aborts (e.g. Table 2 and §4.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// First-committer-wins SI write-write conflict with another transaction.
    WwConflict {
        /// The transaction that lost the conflict.
        txn: TxnId,
        /// The transaction it conflicted with, when known.
        other: TxnId,
    },
    /// The transaction was aborted by a migration engine (lock-and-abort
    /// terminating lock holders, Squall aborting access to migrated chunks,
    /// or a MOCC validation failure cascading to the source transaction).
    MigrationAbort {
        /// The victim transaction.
        txn: TxnId,
        /// Human-readable reason recorded for the evaluation report.
        reason: &'static str,
    },
    /// The transaction was explicitly rolled back (client abort, or 2PC
    /// participant failure).
    Aborted(TxnId),
    /// Serializable-mode (SSI) dangerous-structure abort: committing this
    /// transaction could complete a rw-antidependency cycle, so it was
    /// aborted to preserve serializability. Not migration-induced — the
    /// SSI tax is accounted separately from engine-caused aborts.
    SsiAbort {
        /// The transaction aborted as (or against) the unsafe pivot.
        txn: TxnId,
    },
    /// The shard is not owned by the node the request landed on; the caller
    /// should refresh its shard map and retry (Squall retries on the
    /// destination).
    NotOwner {
        /// Shard that was addressed.
        shard: ShardId,
        /// Node that rejected the request.
        node: NodeId,
    },
    /// A key expected to exist was not found.
    KeyNotFound,
    /// A unique-constraint violation during insert or replay.
    DuplicateKey,
    /// The migration controller rejected or failed an operation.
    Migration(String),
    /// A node is unreachable / crashed in the failure-injection harness.
    NodeUnavailable(NodeId),
    /// Waited too long (lock wait or prepare-wait in tests with injected
    /// failures).
    Timeout(&'static str),
    /// The on-disk WAL failed a structural check on reopen: bad header,
    /// CRC mismatch, or an LSN break *before* the final segment's tail
    /// (a torn tail is tolerated by truncation and never surfaces here).
    WalCorrupt(String),
    /// Internal invariant violation; always a bug.
    Internal(String),
}

impl DbError {
    /// True if the error is counted as a migration-induced interruption in
    /// the evaluation (paper: "zero migration-induced transaction aborts").
    pub fn is_migration_induced(&self) -> bool {
        matches!(
            self,
            DbError::MigrationAbort { .. } | DbError::NotOwner { .. }
        )
    }

    /// True for errors that a client retry loop should treat as transient.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DbError::WwConflict { .. }
                | DbError::MigrationAbort { .. }
                | DbError::NotOwner { .. }
                | DbError::Aborted(_)
                | DbError::SsiAbort { .. }
        )
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::WwConflict { txn, other } => {
                write!(f, "write-write conflict: {txn} lost to {other}")
            }
            DbError::MigrationAbort { txn, reason } => {
                write!(f, "migration aborted {txn}: {reason}")
            }
            DbError::Aborted(txn) => write!(f, "transaction {txn} aborted"),
            DbError::SsiAbort { txn } => {
                write!(f, "serialization failure: {txn} aborted by SSI")
            }
            DbError::NotOwner { shard, node } => {
                write!(f, "{shard} is not owned by {node}")
            }
            DbError::KeyNotFound => write!(f, "key not found"),
            DbError::DuplicateKey => write!(f, "duplicate key violates unique constraint"),
            DbError::Migration(msg) => write!(f, "migration error: {msg}"),
            DbError::NodeUnavailable(n) => write!(f, "{n} unavailable"),
            DbError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            DbError::WalCorrupt(msg) => write!(f, "WAL corrupt: {msg}"),
            DbError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias used throughout the workspace.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_induced_classification() {
        let ww = DbError::WwConflict {
            txn: TxnId(1),
            other: TxnId(2),
        };
        let mig = DbError::MigrationAbort {
            txn: TxnId(1),
            reason: "lock-and-abort",
        };
        let owner = DbError::NotOwner {
            shard: ShardId(3),
            node: NodeId(0),
        };
        assert!(!ww.is_migration_induced());
        assert!(mig.is_migration_induced());
        assert!(owner.is_migration_induced());
    }

    #[test]
    fn retryable_classification() {
        assert!(DbError::WwConflict {
            txn: TxnId(1),
            other: TxnId::INVALID
        }
        .is_retryable());
        assert!(DbError::NotOwner {
            shard: ShardId(0),
            node: NodeId(0)
        }
        .is_retryable());
        assert!(!DbError::DuplicateKey.is_retryable());
        assert!(!DbError::Internal("x".into()).is_retryable());
        // An SSI serialization failure is transient (retry with a fresh
        // snapshot) but must not count as migration-induced.
        let ssi = DbError::SsiAbort { txn: TxnId(1) };
        assert!(ssi.is_retryable());
        assert!(!ssi.is_migration_induced());
    }

    #[test]
    fn display_is_informative() {
        let e = DbError::NotOwner {
            shard: ShardId(9),
            node: NodeId(2),
        };
        assert_eq!(e.to_string(), "ShardId(9) is not owned by NodeId(2)");
    }
}
