//! Minimal JSON value type, serializer, and parser.
//!
//! The build environment is fully offline, so `serde`/`serde_json` are not
//! available; this module provides exactly the surface the bench report
//! pipeline needs: an ordered object model (deterministic output for
//! golden-file tests and CI diffs), pretty serialization, and a strict
//! recursive-descent parser for round-tripping.
//!
//! Numbers are stored as `f64` but serialized without a fractional part
//! when they are exact integers, so `u64` counters round-trip textually as
//! long as they stay within `2^53` (every counter the bench pipeline emits
//! does).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact up to 2^53).
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// A float value.
    pub fn float(f: f64) -> Json {
        Json::Num(f)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` (must be a non-negative exact integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields as an ordered map (for schema checks).
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Json::Obj(pairs) => Some(pairs.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// stable output for golden files and CI artifact diffs.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(p.pos, "trailing garbage"));
        }
        Ok(value)
    }

    /// Deep sort of object keys — used by tests to compare semantically.
    pub fn normalized(&self) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.iter().map(Json::normalized).collect()),
            Json::Obj(pairs) => {
                let sorted: BTreeMap<String, Json> = pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.normalized()))
                    .collect();
                Json::Obj(sorted.into_iter().collect())
            }
            other => other.clone(),
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; clamp to null (never produced by the
        // report pipeline, but don't emit invalid documents).
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl JsonError {
    fn at(pos: usize, message: &'static str) -> JsonError {
        JsonError { pos, message }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, "unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, "invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at(self.pos, "expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(JsonError::at(self.pos, "truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| JsonError::at(self.pos, "bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::at(self.pos, "bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // output; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or(JsonError::at(self.pos, "non-scalar \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| JsonError::at(start, "invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::at(start, "invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(v.to_pretty().trim()).unwrap(), v);
        }
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::num(42).to_pretty().trim(), "42");
        assert_eq!(Json::float(2.5).to_pretty().trim(), "2.5");
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::obj(vec![
            ("name", Json::str("remus")),
            ("n", Json::num(123456789)),
            (
                "list",
                Json::Arr(vec![Json::num(1), Json::Null, Json::Bool(true)]),
            ),
            ("nested", Json::obj(vec![("f", Json::float(0.25))])),
            ("escaped", Json::str("a\"b\\c\nd\te")),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn object_order_is_preserved() {
        let parsed = Json::parse(r#"{"b": 1, "a": 2}"#).unwrap();
        assert_eq!(parsed.keys().unwrap(), vec!["b", "a"]);
        assert_eq!(parsed.get("a").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s": "x", "n": 7, "f": 1.5, "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_and_raw_utf8_decode() {
        let v = Json::parse("\"A\\u00e9 caf\u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9} caf\u{e9}"));
    }

    #[test]
    fn normalized_sorts_keys_recursively() {
        let a = Json::parse(r#"{"b": {"y": 1, "x": 2}, "a": 3}"#).unwrap();
        let b = Json::parse(r#"{"a": 3, "b": {"x": 2, "y": 1}}"#).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.normalized(), b.normalized());
    }
}
