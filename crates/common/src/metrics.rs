//! Lightweight metrics used by the workload driver and figure harnesses.
//!
//! The paper's figures are per-second throughput timelines with migration
//! events overlaid; its tables report abort ratios and average latency
//! deltas. [`Timeline`] produces the former, [`LatencyStat`] and
//! [`AbortCounters`] the latter. [`MetricsRegistry`] unifies the
//! primitives behind named, labeled series with per-node / per-migration
//! scopes, so the bench pipeline can snapshot everything into one
//! machine-readable report. Everything here is thread-safe and cheap
//! enough to call on every transaction from hundreds of client threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

/// A per-bucket throughput timeline anchored at a start instant.
///
/// Client threads call [`Timeline::record`] once per committed transaction;
/// the harness calls [`Timeline::buckets`] at the end to get
/// transactions-per-bucket, which it prints as the figure's series.
#[derive(Debug)]
pub struct Timeline {
    start: Instant,
    bucket: Duration,
    counts: Mutex<Vec<u64>>,
}

impl Timeline {
    /// Creates a timeline whose clock starts now, aggregating into buckets
    /// of the given width.
    pub fn new(bucket: Duration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        Timeline {
            start: Instant::now(),
            bucket,
            counts: Mutex::new(Vec::new()),
        }
    }

    /// Seconds-per-bucket convenience constructor.
    pub fn per_second() -> Self {
        Self::new(Duration::from_secs(1))
    }

    /// Records `n` events at the current instant.
    pub fn record_n(&self, n: u64) {
        let idx = (self.start.elapsed().as_nanos() / self.bucket.as_nanos()) as usize;
        let mut counts = self.counts.lock();
        if counts.len() <= idx {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += n;
    }

    /// Records one event at the current instant.
    pub fn record(&self) {
        self.record_n(1);
    }

    /// Elapsed time since the timeline started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The instant the timeline was anchored at.
    pub fn start_instant(&self) -> Instant {
        self.start
    }

    /// Snapshot of the per-bucket counts.
    pub fn buckets(&self) -> Vec<u64> {
        self.counts.lock().clone()
    }

    /// Events per second for each bucket (counts scaled by bucket width).
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let scale = 1.0 / self.bucket.as_secs_f64();
        self.buckets().iter().map(|&c| c as f64 * scale).collect()
    }
}

/// A run clock: elapsed time since the recorder was anchored. Lets
/// [`EventMarks`] (and other overlay consumers) accept either the plain
/// [`Timeline`] or the striped one.
pub trait TimelineClock {
    /// Elapsed time since the clock started.
    fn elapsed(&self) -> Duration;
}

impl TimelineClock for Timeline {
    fn elapsed(&self) -> Duration {
        Timeline::elapsed(self)
    }
}

impl TimelineClock for StripedTimeline {
    fn elapsed(&self) -> Duration {
        StripedTimeline::elapsed(self)
    }
}

/// Marks points in time relative to a [`Timeline`], used to overlay
/// migration start/end and workload phase boundaries on the figures.
#[derive(Debug, Default)]
pub struct EventMarks {
    marks: Mutex<Vec<(String, Duration)>>,
}

impl EventMarks {
    /// Creates an empty set of marks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a named mark at offset `at` from the timeline start.
    pub fn mark_at(&self, label: impl Into<String>, at: Duration) {
        self.marks.lock().push((label.into(), at));
    }

    /// Records a named mark at the timeline's current elapsed time.
    /// Accepts anything with a run clock ([`Timeline`] or
    /// [`StripedTimeline`]).
    pub fn mark(&self, label: impl Into<String>, timeline: &impl TimelineClock) {
        self.mark_at(label, timeline.elapsed());
    }

    /// All marks recorded so far, in insertion order.
    pub fn all(&self) -> Vec<(String, Duration)> {
        self.marks.lock().clone()
    }
}

/// A fixed-boundary exponential histogram over microsecond magnitudes.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` microseconds; bucket 0 additionally
/// absorbs sub-microsecond (including zero) samples, and the last bucket
/// absorbs everything `>= 2^31` µs. Lock-free: one atomic per bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 32],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index a sample of `micros` microseconds lands in.
    /// Zero and sub-microsecond samples land in bucket 0; values at an
    /// exact power-of-two boundary open the higher bucket (`2^i` µs is the
    /// *inclusive* lower bound of bucket `i`).
    pub fn bucket_of(micros: u64) -> usize {
        let m = micros.max(1);
        ((63 - m.leading_zeros()) as usize).min(31)
    }

    /// Records one sample of `micros` microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Snapshot of the per-bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Approximate percentile (`p` clamped to `0.0..=1.0`) as a duration
    /// at power-of-two-microsecond resolution, reported as the upper
    /// boundary of the bucket holding the target sample. Zero when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        // Clamp and never target fewer than one sample: p = 0.0 means
        // "the smallest recorded sample", not "before any sample".
        let target = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        // Unreachable (seen == total >= target by then), but stay safe.
        Duration::from_micros(1u64 << 32)
    }
}

/// Streaming latency statistics (count / mean / max, plus a fixed-boundary
/// [`Histogram`] for percentiles).
///
/// Lock-free on the hot path: everything is atomics.
#[derive(Debug)]
pub struct LatencyStat {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    hist: Histogram,
}

impl Default for LatencyStat {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStat {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyStat {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            hist: Histogram::new(),
        }
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.hist
            .record_micros(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero when no samples were recorded.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed) / n)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// Sum of all recorded samples in nanoseconds (exact-mean merging for
    /// the striped recorder).
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos.load(Ordering::Relaxed)
    }

    /// Approximate percentile (0.0..=1.0) from the exponential histogram;
    /// resolution is one power of two in microseconds, capped by the true
    /// maximum so single-sample percentiles never exceed the real sample.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count() == 0 {
            return Duration::ZERO;
        }
        self.hist.percentile(p).min(self.max())
    }

    /// The underlying histogram (bucket counts for reports).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// Commit/abort accounting broken down the way the paper reports it.
#[derive(Debug, Default)]
pub struct AbortCounters {
    commits: AtomicU64,
    ww_aborts: AtomicU64,
    migration_aborts: AtomicU64,
    other_aborts: AtomicU64,
}

impl AbortCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one committed transaction.
    pub fn commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one write-write-conflict abort.
    pub fn ww_abort(&self) {
        self.ww_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one migration-induced abort.
    pub fn migration_abort(&self) {
        self.migration_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one abort of any other kind.
    pub fn other_abort(&self) {
        self.other_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Committed transactions so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// WW-conflict aborts so far.
    pub fn ww_aborts(&self) -> u64 {
        self.ww_aborts.load(Ordering::Relaxed)
    }

    /// Migration-induced aborts so far.
    pub fn migration_aborts(&self) -> u64 {
        self.migration_aborts.load(Ordering::Relaxed)
    }

    /// Other aborts so far.
    pub fn other_aborts(&self) -> u64 {
        self.other_aborts.load(Ordering::Relaxed)
    }

    /// Fraction of attempts that aborted for migration reasons
    /// (Table 2's "Abort Ratio During Consolidation").
    pub fn migration_abort_ratio(&self) -> f64 {
        let aborts = self.migration_aborts() as f64;
        let attempts = aborts + self.commits() as f64;
        if attempts == 0.0 {
            0.0
        } else {
            aborts / attempts
        }
    }
}

// ---------------------------------------------------------------------------
// Striped hot-path recorders
//
// With hundreds of logical clients multiplexed over a worker pool, every
// commit hitting one `Mutex<Vec<u64>>` (Timeline) or one set of contended
// atomics (LatencyStat / AbortCounters) serializes the recorders. The
// striped variants spread recording over cache-line-padded cells — each
// thread sticks to one stripe — and merge at snapshot time. Readers see
// exactly the same totals; only the write-side contention changes.
// ---------------------------------------------------------------------------

/// Default stripe count for the striped recorders. Sized for "a worker pool,
/// not a thread per client": more stripes than workers is harmless (idle
/// cells), fewer just means some sharing.
pub const DEFAULT_STRIPES: usize = 16;

/// Cache-line-sized cell so adjacent stripes never share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CacheLine<T>(T);

/// The calling thread's stripe slot in `0..stripes`.
///
/// Threads are assigned slots round-robin on first use (process-wide
/// counter, cached in a thread-local), so a fixed worker pool spreads
/// evenly over the stripes regardless of the stripe count.
pub fn thread_stripe(stripes: usize) -> usize {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static SLOT: Cell<u64> = const { Cell::new(u64::MAX) };
    }
    let slot = SLOT.with(|s| {
        if s.get() == u64::MAX {
            s.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        s.get()
    });
    (slot as usize) % stripes.max(1)
}

/// A [`Timeline`] sharded into striped cells merged at snapshot time.
///
/// Same read API (`buckets`, `rates_per_sec`, `elapsed`); `record` takes
/// the calling thread's stripe lock instead of the global one.
#[derive(Debug)]
pub struct StripedTimeline {
    start: Instant,
    bucket: Duration,
    stripes: Box<[CacheLine<Mutex<Vec<u64>>>]>,
}

impl StripedTimeline {
    /// A striped timeline anchored now with the given bucket width.
    pub fn new(bucket: Duration, stripes: usize) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        StripedTimeline {
            start: Instant::now(),
            bucket,
            stripes: (0..stripes.max(1))
                .map(|_| CacheLine(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    /// Seconds-per-bucket convenience constructor with default striping.
    pub fn per_second() -> Self {
        Self::new(Duration::from_secs(1), DEFAULT_STRIPES)
    }

    /// Records `n` events at the current instant on this thread's stripe.
    pub fn record_n(&self, n: u64) {
        let idx = (self.start.elapsed().as_nanos() / self.bucket.as_nanos()) as usize;
        let mut counts = self.stripes[thread_stripe(self.stripes.len())].0.lock();
        if counts.len() <= idx {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += n;
    }

    /// Records one event at the current instant.
    pub fn record(&self) {
        self.record_n(1);
    }

    /// Elapsed time since the timeline started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The instant the timeline was anchored at.
    pub fn start_instant(&self) -> Instant {
        self.start
    }

    /// Merged snapshot of the per-bucket counts across all stripes.
    pub fn buckets(&self) -> Vec<u64> {
        let mut merged: Vec<u64> = Vec::new();
        for stripe in self.stripes.iter() {
            let counts = stripe.0.lock();
            if counts.len() > merged.len() {
                merged.resize(counts.len(), 0);
            }
            for (m, &c) in merged.iter_mut().zip(counts.iter()) {
                *m += c;
            }
        }
        merged
    }

    /// Events per second for each bucket (counts scaled by bucket width).
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let scale = 1.0 / self.bucket.as_secs_f64();
        self.buckets().iter().map(|&c| c as f64 * scale).collect()
    }
}

/// A [`LatencyStat`] sharded into striped cells merged at read time.
///
/// Counts, sums, and histogram buckets add across stripes exactly; `max`
/// is the max of stripe maxima; percentiles run over the merged histogram
/// capped at the true merged max — identical answers to the flat recorder.
#[derive(Debug)]
pub struct StripedLatencyStat {
    stripes: Box<[CacheLine<LatencyStat>]>,
}

impl Default for StripedLatencyStat {
    fn default() -> Self {
        Self::new()
    }
}

impl StripedLatencyStat {
    /// An empty recorder with default striping.
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }

    /// An empty recorder with `stripes` cells.
    pub fn with_stripes(stripes: usize) -> Self {
        StripedLatencyStat {
            stripes: (0..stripes.max(1))
                .map(|_| CacheLine(LatencyStat::new()))
                .collect(),
        }
    }

    /// Records one sample on the calling thread's stripe.
    pub fn record(&self, latency: Duration) {
        self.stripes[thread_stripe(self.stripes.len())]
            .0
            .record(latency);
    }

    /// Total samples across all stripes.
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.count()).sum()
    }

    /// Exact merged mean, or zero when empty.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let total: u64 = self.stripes.iter().map(|s| s.0.total_nanos()).sum();
        Duration::from_nanos(total / n)
    }

    /// Largest sample across all stripes.
    pub fn max(&self) -> Duration {
        self.stripes
            .iter()
            .map(|s| s.0.max())
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Merged per-bucket histogram counts (same boundaries as
    /// [`Histogram`]).
    pub fn bucket_counts(&self) -> Vec<u64> {
        let mut merged = vec![0u64; 32];
        for stripe in self.stripes.iter() {
            for (m, c) in merged.iter_mut().zip(stripe.0.histogram().bucket_counts()) {
                *m += c;
            }
        }
        merged
    }

    /// Approximate percentile over the merged histogram, capped at the
    /// true merged maximum. Zero when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Duration::from_micros(1u64 << (i + 1)).min(self.max());
            }
        }
        self.max()
    }
}

/// [`AbortCounters`] sharded into striped cells summed at read time.
#[derive(Debug)]
pub struct StripedAbortCounters {
    stripes: Box<[CacheLine<AbortCounters>]>,
}

impl Default for StripedAbortCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl StripedAbortCounters {
    /// Zeroed counters with default striping.
    pub fn new() -> Self {
        StripedAbortCounters {
            stripes: (0..DEFAULT_STRIPES)
                .map(|_| CacheLine(AbortCounters::new()))
                .collect(),
        }
    }

    fn stripe(&self) -> &AbortCounters {
        &self.stripes[thread_stripe(self.stripes.len())].0
    }

    /// Counts one committed transaction.
    pub fn commit(&self) {
        self.stripe().commit();
    }

    /// Counts one write-write-conflict abort.
    pub fn ww_abort(&self) {
        self.stripe().ww_abort();
    }

    /// Counts one migration-induced abort.
    pub fn migration_abort(&self) {
        self.stripe().migration_abort();
    }

    /// Counts one abort of any other kind.
    pub fn other_abort(&self) {
        self.stripe().other_abort();
    }

    /// Committed transactions so far (all stripes).
    pub fn commits(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.commits()).sum()
    }

    /// WW-conflict aborts so far (all stripes).
    pub fn ww_aborts(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.ww_aborts()).sum()
    }

    /// Migration-induced aborts so far (all stripes).
    pub fn migration_aborts(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.migration_aborts()).sum()
    }

    /// Other aborts so far (all stripes).
    pub fn other_aborts(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.other_aborts()).sum()
    }

    /// Fraction of attempts that aborted for migration reasons
    /// (Table 2's "Abort Ratio During Consolidation").
    pub fn migration_abort_ratio(&self) -> f64 {
        let aborts = self.migration_aborts() as f64;
        let attempts = aborts + self.commits() as f64;
        if attempts == 0.0 {
            0.0
        } else {
            aborts / attempts
        }
    }
}

/// Work-unit accounting standing in for OS CPU sampling (Figure 10).
///
/// Nodes charge themselves units for replay, propagation, and snapshot-copy
/// work; the harness samples per-second deltas to draw the "CPU usage"
/// series.
#[derive(Debug, Default)]
pub struct WorkMeter {
    units: AtomicU64,
}

impl WorkMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` units of work.
    pub fn charge(&self, n: u64) {
        self.units.fetch_add(n, Ordering::Relaxed);
    }

    /// Total units charged so far.
    pub fn total(&self) -> u64 {
        self.units.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing counter handle.
///
/// Handles are shared `Arc`s resolved once from the registry; increments
/// are single relaxed atomics — cheap enough for every commit/abort/hop.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed, unregistered counter (hot-path structs can own one and
    /// surface it through a registry snapshot later).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger (high-water marks).
    pub fn raise(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Identity of one series: metric name plus sorted label pairs.
type SeriesKey = (String, Vec<(String, String)>);

/// One exported sample of a registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (e.g. `txn_2pc_hops`).
    pub name: String,
    /// Label pairs, sorted by key (e.g. `[("node", "2")]`).
    pub labels: Vec<(String, String)>,
    /// Series kind: `"counter"`, `"gauge"`, or `"latency"`.
    pub kind: &'static str,
    /// Scalar value: the count for counters/gauges, the sample count for
    /// latency series.
    pub value: u64,
    /// Latency summary `(mean, p50, p99, max)`, present for latency series.
    pub latency: Option<(Duration, Duration, Duration, Duration)>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<HashMap<SeriesKey, Arc<Counter>>>,
    gauges: RwLock<HashMap<SeriesKey, Arc<Gauge>>>,
    latencies: RwLock<HashMap<SeriesKey, Arc<LatencyStat>>>,
}

/// Named, labeled metric series with cheap scoping.
///
/// A registry value is a *scope*: a shared store plus the label set every
/// series resolved through it inherits. [`MetricsRegistry::scoped`] derives
/// child scopes (`node=3`, `migration=7`) that write into the same store,
/// so one snapshot sees the whole cluster. Resolution takes a short-lived
/// map lock; the returned handles are lock-free — resolve once per site,
/// not per increment.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    labels: Vec<(String, String)>,
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// A fresh, unlabeled registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A child scope with `key=value` appended to the label set, sharing
    /// this registry's store.
    pub fn scoped(&self, key: impl Into<String>, value: impl ToString) -> MetricsRegistry {
        let mut labels = self.labels.clone();
        labels.push((key.into(), value.to_string()));
        labels.sort();
        labels.dedup();
        MetricsRegistry {
            labels,
            inner: Arc::clone(&self.inner),
        }
    }

    /// This scope's label set (sorted).
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    fn key(&self, name: &str) -> SeriesKey {
        (name.to_string(), self.labels.clone())
    }

    /// Resolves (or creates) the counter `name` under this scope's labels.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let key = self.key(name);
        if let Some(c) = self.inner.counters.read().get(&key) {
            return Arc::clone(c);
        }
        Arc::clone(self.inner.counters.write().entry(key).or_default())
    }

    /// Resolves (or creates) the gauge `name` under this scope's labels.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let key = self.key(name);
        if let Some(g) = self.inner.gauges.read().get(&key) {
            return Arc::clone(g);
        }
        Arc::clone(self.inner.gauges.write().entry(key).or_default())
    }

    /// Resolves (or creates) the latency series `name` under this scope's
    /// labels.
    pub fn latency(&self, name: &str) -> Arc<LatencyStat> {
        let key = self.key(name);
        if let Some(l) = self.inner.latencies.read().get(&key) {
            return Arc::clone(l);
        }
        Arc::clone(
            self.inner
                .latencies
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(LatencyStat::new())),
        )
    }

    /// Snapshot of every series in the shared store (all scopes), sorted
    /// by `(name, labels)` for deterministic reports.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut out = Vec::new();
        for ((name, labels), c) in self.inner.counters.read().iter() {
            out.push(MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                kind: "counter",
                value: c.get(),
                latency: None,
            });
        }
        for ((name, labels), g) in self.inner.gauges.read().iter() {
            out.push(MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                kind: "gauge",
                value: g.get(),
                latency: None,
            });
        }
        for ((name, labels), l) in self.inner.latencies.read().iter() {
            out.push(MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                kind: "latency",
                value: l.count(),
                latency: Some((l.mean(), l.percentile(0.5), l.percentile(0.99), l.max())),
            });
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }
}

/// Windowed delta reader over registry snapshots.
///
/// Counters and latency sample counts in a [`MetricsRegistry`] are lifetime
/// totals; consumers that need *rates* (the planner's WAL-append and
/// cross-shard signals) diff two snapshots. A `MetricsDelta` remembers the
/// previous snapshot per series and returns, for each counter/latency
/// series, the increment since the last call. Gauges are levels, not
/// totals, so they pass through unchanged.
///
/// A series whose new value is *smaller* than the remembered one (the
/// source was reset or replaced) reports the new value as the whole delta
/// rather than a wrapped negative.
#[derive(Debug, Default)]
pub struct MetricsDelta {
    last: HashMap<SeriesKey, u64>,
}

impl MetricsDelta {
    /// A reader with an empty baseline: the first [`MetricsDelta::advance`]
    /// reports every series' full lifetime value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Diffs `samples` against the remembered baseline and advances it.
    /// Counter and latency values become per-window increments; gauges keep
    /// their level. Series absent from `samples` are dropped from the
    /// baseline (a re-appearing series starts over from zero).
    pub fn advance(&mut self, samples: &[MetricSample]) -> Vec<MetricSample> {
        let mut next = HashMap::with_capacity(samples.len());
        let out = samples
            .iter()
            .map(|s| {
                let mut windowed = s.clone();
                if s.kind != "gauge" {
                    let key = (s.name.clone(), s.labels.clone());
                    let prev = self.last.get(&key).copied().unwrap_or(0);
                    // Reset/wraparound: a shrinking total means the source
                    // restarted, so the new total is the window's delta.
                    windowed.value = if s.value < prev {
                        s.value
                    } else {
                        s.value - prev
                    };
                    next.insert(key, s.value);
                }
                windowed
            })
            .collect();
        self.last = next;
        out
    }

    /// Convenience: the windowed value of one series from an
    /// already-diffed snapshot (`0` when the series is absent).
    pub fn value_of(samples: &[MetricSample], name: &str, labels: &[(String, String)]) -> u64 {
        samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| s.value)
            .unwrap_or(0)
    }
}

/// Windowed percentile reader over a [`Histogram`].
///
/// Remembers the previous bucket counts and answers percentiles over only
/// the samples recorded since the last advance — the foreground-p99 signal
/// the planner's latency throttle consumes. An empty window answers `None`
/// instead of a stale or fabricated value.
#[derive(Debug, Default)]
pub struct HistogramWindow {
    last: Vec<u64>,
}

impl HistogramWindow {
    /// A window anchored at zero samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-bucket increments since the previous call; advances the window.
    /// A shrinking bucket (source reset) contributes its new count whole.
    pub fn advance(&mut self, hist: &Histogram) -> Vec<u64> {
        let now = hist.bucket_counts();
        let deltas = now
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let prev = self.last.get(i).copied().unwrap_or(0);
                if n < prev {
                    n
                } else {
                    n - prev
                }
            })
            .collect();
        self.last = now;
        deltas
    }

    /// Windowed percentile (`p` clamped to `0.0..=1.0`) at the histogram's
    /// power-of-two resolution, reported as the holding bucket's upper
    /// bound; advances the window. `None` when no samples landed since the
    /// previous call.
    pub fn percentile_since(&mut self, hist: &Histogram, p: f64) -> Option<Duration> {
        let deltas = self.advance(hist);
        let total: u64 = deltas.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in deltas.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(Duration::from_micros(1u64 << (i + 1)));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_buckets_accumulate() {
        let t = Timeline::new(Duration::from_secs(3600)); // everything lands in bucket 0
        t.record();
        t.record_n(4);
        assert_eq!(t.buckets(), vec![5]);
    }

    #[test]
    fn timeline_rates_scale_by_bucket_width() {
        let t = Timeline::new(Duration::from_millis(500));
        t.record_n(10);
        let rates = t.rates_per_sec();
        assert_eq!(rates[0], 20.0);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn timeline_rejects_zero_bucket() {
        let _ = Timeline::new(Duration::ZERO);
    }

    #[test]
    fn latency_stat_mean_and_max() {
        let s = LatencyStat::new();
        s.record(Duration::from_micros(10));
        s.record(Duration::from_micros(30));
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Duration::from_micros(20));
        assert_eq!(s.max(), Duration::from_micros(30));
    }

    #[test]
    fn latency_stat_empty_is_zero() {
        let s = LatencyStat::new();
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.percentile(0.99), Duration::ZERO);
    }

    #[test]
    fn latency_percentile_is_monotone() {
        let s = LatencyStat::new();
        for i in 1..=1000u64 {
            s.record(Duration::from_micros(i));
        }
        assert!(s.percentile(0.5) <= s.percentile(0.99));
        // p50 of 1..1000 µs should land near 512 µs at power-of-two resolution.
        assert!(s.percentile(0.5) >= Duration::from_micros(256));
        assert!(s.percentile(0.5) <= Duration::from_micros(1024));
    }

    #[test]
    fn abort_ratio_matches_table2_definition() {
        let c = AbortCounters::new();
        for _ in 0..97 {
            c.migration_abort();
        }
        for _ in 0..3 {
            c.commit();
        }
        assert!((c.migration_abort_ratio() - 0.97).abs() < 1e-9);
    }

    #[test]
    fn abort_ratio_empty_is_zero() {
        assert_eq!(AbortCounters::new().migration_abort_ratio(), 0.0);
    }

    #[test]
    fn event_marks_preserve_order() {
        let marks = EventMarks::new();
        marks.mark_at("a", Duration::from_secs(1));
        marks.mark_at("b", Duration::from_secs(2));
        let all = marks.all();
        assert_eq!(all[0].0, "a");
        assert_eq!(all[1].0, "b");
    }

    #[test]
    fn work_meter_accumulates() {
        let m = WorkMeter::new();
        m.charge(3);
        m.charge(4);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries_open_the_higher_bucket() {
        // 2^i µs is the inclusive lower bound of bucket i.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(1025), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 31);
    }

    #[test]
    fn histogram_zero_duration_samples_count() {
        let h = Histogram::new();
        h.record_micros(0);
        h.record_micros(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts()[0], 2);
        // Percentile of all-zero samples reports the smallest bucket bound,
        // not garbage from an empty scan.
        assert_eq!(h.percentile(0.5), Duration::from_micros(2));
    }

    #[test]
    fn latency_percentile_zero_returns_smallest_sample_bucket() {
        // Regression: p = 0.0 used to satisfy `seen >= 0` at bucket 0 and
        // always answer 2 µs regardless of the data.
        let s = LatencyStat::new();
        s.record(Duration::from_micros(5000));
        s.record(Duration::from_micros(6000));
        assert!(s.percentile(0.0) >= Duration::from_micros(4096));
    }

    #[test]
    fn latency_single_sample_percentiles_do_not_overshoot_max() {
        // Regression: a lone 10 µs sample used to report p99 = 16 µs (the
        // bucket's upper bound); percentiles are now capped at the true max.
        let s = LatencyStat::new();
        s.record(Duration::from_micros(10));
        assert_eq!(s.percentile(0.5), Duration::from_micros(10));
        assert_eq!(s.percentile(0.99), Duration::from_micros(10));
        assert_eq!(s.percentile(1.0), Duration::from_micros(10));
    }

    #[test]
    fn latency_percentile_out_of_range_p_is_clamped() {
        let s = LatencyStat::new();
        s.record(Duration::from_micros(100));
        assert_eq!(s.percentile(-1.0), s.percentile(0.0));
        assert_eq!(s.percentile(2.0), s.percentile(1.0));
    }

    #[test]
    fn latency_zero_duration_records() {
        let s = LatencyStat::new();
        s.record(Duration::ZERO);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        // Percentile is capped at max, so all-zero data answers zero.
        assert_eq!(s.percentile(0.99), Duration::ZERO);
    }

    #[test]
    fn timeline_event_exactly_on_bucket_boundary() {
        // An event at elapsed == k * bucket lands in bucket k (half-open
        // buckets [k*w, (k+1)*w)); exercised via the index arithmetic.
        let t = Timeline::new(Duration::from_nanos(1)); // every nanosecond is a new bucket
        t.record();
        let buckets = t.buckets();
        assert_eq!(buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn timeline_empty_has_no_buckets() {
        let t = Timeline::per_second();
        assert!(t.buckets().is_empty());
        assert!(t.rates_per_sec().is_empty());
    }

    #[test]
    fn registry_scoping_isolates_series() {
        let root = MetricsRegistry::new();
        let n1 = root.scoped("node", 1);
        let n2 = root.scoped("node", 2);
        n1.counter("commits").add(3);
        n2.counter("commits").add(5);
        root.counter("commits").inc();
        let snap = root.snapshot();
        let values: Vec<(Vec<(String, String)>, u64)> = snap
            .iter()
            .filter(|s| s.name == "commits")
            .map(|s| (s.labels.clone(), s.value))
            .collect();
        assert_eq!(values.len(), 3);
        assert!(values.contains(&(vec![], 1)));
        assert!(values.contains(&(vec![("node".into(), "1".into())], 3)));
        assert!(values.contains(&(vec![("node".into(), "2".into())], 5)));
    }

    #[test]
    fn registry_same_series_resolves_to_same_handle() {
        let reg = MetricsRegistry::new().scoped("migration", 7);
        let a = reg.counter("hops");
        let b = reg.counter("hops");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("hops").get(), 2);
    }

    #[test]
    fn registry_gauge_raise_keeps_high_water_mark() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("queue_depth");
        g.set(10);
        g.raise(4);
        assert_eq!(g.get(), 10);
        g.raise(25);
        assert_eq!(g.get(), 25);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.scoped("node", 2).counter("z").inc();
        reg.scoped("node", 1).counter("z").inc();
        reg.counter("a").inc();
        reg.latency("lat").record(Duration::from_micros(50));
        let snap = reg.snapshot();
        let keys: Vec<(String, Vec<(String, String)>)> = snap
            .iter()
            .map(|s| (s.name.clone(), s.labels.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let lat = snap.iter().find(|s| s.name == "lat").unwrap();
        assert_eq!(lat.kind, "latency");
        assert_eq!(lat.value, 1);
        assert!(lat.latency.is_some());
    }

    #[test]
    fn metrics_delta_reports_per_window_increments() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("wal.appends");
        let mut delta = MetricsDelta::new();

        c.add(10);
        let w1 = delta.advance(&reg.snapshot());
        assert_eq!(MetricsDelta::value_of(&w1, "wal.appends", &[]), 10);

        c.add(7);
        let w2 = delta.advance(&reg.snapshot());
        assert_eq!(MetricsDelta::value_of(&w2, "wal.appends", &[]), 7);
    }

    #[test]
    fn metrics_delta_empty_window_is_zero_not_stale() {
        let reg = MetricsRegistry::new();
        reg.counter("txn.commits").add(5);
        let mut delta = MetricsDelta::new();
        delta.advance(&reg.snapshot());
        // Nothing happened since: the window must read 0, not repeat 5.
        let w = delta.advance(&reg.snapshot());
        assert_eq!(MetricsDelta::value_of(&w, "txn.commits", &[]), 0);
    }

    #[test]
    fn metrics_delta_handles_reset_as_fresh_total() {
        // A shrinking total (source restarted) must not wrap negative: the
        // new total is the whole window.
        let mut delta = MetricsDelta::new();
        let sample = |v: u64| MetricSample {
            name: "x".to_string(),
            labels: vec![],
            kind: "counter",
            value: v,
            latency: None,
        };
        delta.advance(&[sample(100)]);
        let w = delta.advance(&[sample(3)]);
        assert_eq!(w[0].value, 3);
    }

    #[test]
    fn metrics_delta_gauges_pass_through_as_levels() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("chain_len");
        let mut delta = MetricsDelta::new();
        g.set(40);
        delta.advance(&reg.snapshot());
        g.set(42);
        let w = delta.advance(&reg.snapshot());
        let s = w.iter().find(|s| s.name == "chain_len").unwrap();
        assert_eq!(s.value, 42, "gauges are levels, not totals");
    }

    #[test]
    fn metrics_delta_missing_value_is_zero() {
        assert_eq!(MetricsDelta::value_of(&[], "absent", &[]), 0);
    }

    #[test]
    fn histogram_window_empty_window_is_none() {
        let h = Histogram::new();
        let mut w = HistogramWindow::new();
        assert_eq!(w.percentile_since(&h, 0.99), None);
        h.record_micros(100);
        assert!(w.percentile_since(&h, 0.99).is_some());
        // No new samples: None again, not the previous window's answer.
        assert_eq!(w.percentile_since(&h, 0.99), None);
    }

    #[test]
    fn histogram_window_percentile_sees_only_the_window() {
        let h = Histogram::new();
        let mut w = HistogramWindow::new();
        // First window: a thousand fast samples.
        for _ in 0..1000 {
            h.record_micros(10);
        }
        let p99 = w.percentile_since(&h, 0.99).unwrap();
        assert!(p99 <= Duration::from_micros(16), "fast window, got {p99:?}");
        // Second window: only slow samples. A lifetime percentile would
        // still answer ~16 µs; the window must see the spike.
        for _ in 0..10 {
            h.record_micros(50_000);
        }
        let p99 = w.percentile_since(&h, 0.99).unwrap();
        assert!(
            p99 >= Duration::from_micros(32_768),
            "slow window, got {p99:?}"
        );
    }

    #[test]
    fn histogram_window_shrinking_bucket_does_not_wrap() {
        let h1 = Histogram::new();
        for _ in 0..50 {
            h1.record_micros(8);
        }
        let mut w = HistogramWindow::new();
        w.advance(&h1);
        // Same window object pointed at a fresh histogram (reset source).
        let h2 = Histogram::new();
        h2.record_micros(8);
        let deltas = w.advance(&h2);
        assert_eq!(deltas[Histogram::bucket_of(8)], 1);
        assert!(deltas.iter().all(|&d| d <= 1));
    }

    #[test]
    fn striped_cells_are_cache_line_aligned() {
        assert!(std::mem::align_of::<CacheLine<AtomicU64>>() >= 64);
        assert!(std::mem::size_of::<CacheLine<AtomicU64>>() >= 64);
    }

    #[test]
    fn thread_stripe_is_stable_and_in_range() {
        let a = thread_stripe(16);
        assert_eq!(a, thread_stripe(16), "same thread, same slot");
        assert!(a < 16);
        assert_eq!(thread_stripe(1), 0);
        // Degenerate stripe count must not divide by zero.
        assert_eq!(thread_stripe(0), 0);
    }

    #[test]
    fn striped_timeline_merges_across_threads() {
        let t = Arc::new(StripedTimeline::new(Duration::from_secs(3600), 4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.record();
                    }
                    t.record_n(5);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Everything lands in bucket 0; merged counts add exactly.
        assert_eq!(t.buckets().iter().sum::<u64>(), 4 * 105);
        assert_eq!(t.rates_per_sec().len(), t.buckets().len());
    }

    #[test]
    fn striped_timeline_empty_has_no_buckets() {
        let t = StripedTimeline::per_second();
        assert!(t.buckets().is_empty());
        assert!(t.rates_per_sec().is_empty());
    }

    #[test]
    fn striped_latency_merges_exactly() {
        let s = Arc::new(StripedLatencyStat::with_stripes(4));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for k in 0..50u64 {
                        s.record(Duration::from_micros(10 + i * 100 + k));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.count(), 200);
        assert_eq!(s.bucket_counts().iter().sum::<u64>(), 200);
        assert!(s.max() >= Duration::from_micros(349));
        assert!(s.mean() > Duration::ZERO);
        assert!(s.percentile(0.5) <= s.percentile(0.99));
        assert!(s.percentile(1.0) <= s.max());
    }

    #[test]
    fn striped_latency_single_sample_does_not_overshoot_max() {
        let s = StripedLatencyStat::new();
        s.record(Duration::from_micros(10));
        assert_eq!(s.percentile(0.99), Duration::from_micros(10));
        assert_eq!(s.mean(), Duration::from_micros(10));
    }

    #[test]
    fn striped_latency_empty_is_zero() {
        let s = StripedLatencyStat::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.percentile(0.99), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
    }

    #[test]
    fn striped_abort_counters_sum_across_threads() {
        let c = Arc::new(StripedAbortCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        c.commit();
                    }
                    c.ww_abort();
                    c.migration_abort();
                    c.other_abort();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.commits(), 100);
        assert_eq!(c.ww_aborts(), 4);
        assert_eq!(c.migration_aborts(), 4);
        assert_eq!(c.other_aborts(), 4);
        let expected = 4.0 / 104.0;
        assert!((c.migration_abort_ratio() - expected).abs() < 1e-9);
    }

    #[test]
    fn event_marks_accept_striped_timeline() {
        let marks = EventMarks::new();
        let t = StripedTimeline::per_second();
        marks.mark("striped", &t);
        assert_eq!(marks.all().len(), 1);
    }

    #[test]
    fn registry_scoped_labels_are_sorted_and_deduped() {
        let reg = MetricsRegistry::new()
            .scoped("node", 3)
            .scoped("migration", 1)
            .scoped("node", 3);
        assert_eq!(
            reg.labels(),
            &[
                ("migration".to_string(), "1".to_string()),
                ("node".to_string(), "3".to_string())
            ]
        );
    }
}
