//! Lightweight metrics used by the workload driver and figure harnesses.
//!
//! The paper's figures are per-second throughput timelines with migration
//! events overlaid; its tables report abort ratios and average latency
//! deltas. [`Timeline`] produces the former, [`LatencyStat`] and
//! [`AbortCounters`] the latter. Everything here is thread-safe and cheap
//! enough to call on every transaction from hundreds of client threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A per-bucket throughput timeline anchored at a start instant.
///
/// Client threads call [`Timeline::record`] once per committed transaction;
/// the harness calls [`Timeline::buckets`] at the end to get
/// transactions-per-bucket, which it prints as the figure's series.
#[derive(Debug)]
pub struct Timeline {
    start: Instant,
    bucket: Duration,
    counts: Mutex<Vec<u64>>,
}

impl Timeline {
    /// Creates a timeline whose clock starts now, aggregating into buckets
    /// of the given width.
    pub fn new(bucket: Duration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        Timeline {
            start: Instant::now(),
            bucket,
            counts: Mutex::new(Vec::new()),
        }
    }

    /// Seconds-per-bucket convenience constructor.
    pub fn per_second() -> Self {
        Self::new(Duration::from_secs(1))
    }

    /// Records `n` events at the current instant.
    pub fn record_n(&self, n: u64) {
        let idx = (self.start.elapsed().as_nanos() / self.bucket.as_nanos()) as usize;
        let mut counts = self.counts.lock();
        if counts.len() <= idx {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += n;
    }

    /// Records one event at the current instant.
    pub fn record(&self) {
        self.record_n(1);
    }

    /// Elapsed time since the timeline started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The instant the timeline was anchored at.
    pub fn start_instant(&self) -> Instant {
        self.start
    }

    /// Snapshot of the per-bucket counts.
    pub fn buckets(&self) -> Vec<u64> {
        self.counts.lock().clone()
    }

    /// Events per second for each bucket (counts scaled by bucket width).
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let scale = 1.0 / self.bucket.as_secs_f64();
        self.buckets().iter().map(|&c| c as f64 * scale).collect()
    }
}

/// Marks points in time relative to a [`Timeline`], used to overlay
/// migration start/end and workload phase boundaries on the figures.
#[derive(Debug, Default)]
pub struct EventMarks {
    marks: Mutex<Vec<(String, Duration)>>,
}

impl EventMarks {
    /// Creates an empty set of marks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a named mark at offset `at` from the timeline start.
    pub fn mark_at(&self, label: impl Into<String>, at: Duration) {
        self.marks.lock().push((label.into(), at));
    }

    /// Records a named mark at the timeline's current elapsed time.
    pub fn mark(&self, label: impl Into<String>, timeline: &Timeline) {
        self.mark_at(label, timeline.elapsed());
    }

    /// All marks recorded so far, in insertion order.
    pub fn all(&self) -> Vec<(String, Duration)> {
        self.marks.lock().clone()
    }
}

/// Streaming latency statistics (count / mean / max, plus a fixed-boundary
/// histogram for percentiles).
///
/// Lock-free on the hot path: everything is atomics.
#[derive(Debug)]
pub struct LatencyStat {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    /// Histogram over exponential boundaries: bucket i covers
    /// [2^i, 2^(i+1)) microseconds; bucket 0 covers < 2 µs.
    hist: [AtomicU64; 32],
}

impl Default for LatencyStat {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStat {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyStat {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        let micros = latency.as_micros().max(1) as u64;
        let bucket = (63 - micros.leading_zeros()).min(31) as usize;
        self.hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero when no samples were recorded.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed) / n)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// Approximate percentile (0.0..=1.0) from the exponential histogram;
    /// resolution is one power of two in microseconds.
    pub fn percentile(&self, p: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64) * p).ceil() as u64;
        let mut seen = 0;
        for (i, bucket) in self.hist.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        self.max()
    }
}

/// Commit/abort accounting broken down the way the paper reports it.
#[derive(Debug, Default)]
pub struct AbortCounters {
    commits: AtomicU64,
    ww_aborts: AtomicU64,
    migration_aborts: AtomicU64,
    other_aborts: AtomicU64,
}

impl AbortCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one committed transaction.
    pub fn commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one write-write-conflict abort.
    pub fn ww_abort(&self) {
        self.ww_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one migration-induced abort.
    pub fn migration_abort(&self) {
        self.migration_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one abort of any other kind.
    pub fn other_abort(&self) {
        self.other_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Committed transactions so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// WW-conflict aborts so far.
    pub fn ww_aborts(&self) -> u64 {
        self.ww_aborts.load(Ordering::Relaxed)
    }

    /// Migration-induced aborts so far.
    pub fn migration_aborts(&self) -> u64 {
        self.migration_aborts.load(Ordering::Relaxed)
    }

    /// Other aborts so far.
    pub fn other_aborts(&self) -> u64 {
        self.other_aborts.load(Ordering::Relaxed)
    }

    /// Fraction of attempts that aborted for migration reasons
    /// (Table 2's "Abort Ratio During Consolidation").
    pub fn migration_abort_ratio(&self) -> f64 {
        let aborts = self.migration_aborts() as f64;
        let attempts = aborts + self.commits() as f64;
        if attempts == 0.0 {
            0.0
        } else {
            aborts / attempts
        }
    }
}

/// Work-unit accounting standing in for OS CPU sampling (Figure 10).
///
/// Nodes charge themselves units for replay, propagation, and snapshot-copy
/// work; the harness samples per-second deltas to draw the "CPU usage"
/// series.
#[derive(Debug, Default)]
pub struct WorkMeter {
    units: AtomicU64,
}

impl WorkMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` units of work.
    pub fn charge(&self, n: u64) {
        self.units.fetch_add(n, Ordering::Relaxed);
    }

    /// Total units charged so far.
    pub fn total(&self) -> u64 {
        self.units.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_buckets_accumulate() {
        let t = Timeline::new(Duration::from_secs(3600)); // everything lands in bucket 0
        t.record();
        t.record_n(4);
        assert_eq!(t.buckets(), vec![5]);
    }

    #[test]
    fn timeline_rates_scale_by_bucket_width() {
        let t = Timeline::new(Duration::from_millis(500));
        t.record_n(10);
        let rates = t.rates_per_sec();
        assert_eq!(rates[0], 20.0);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn timeline_rejects_zero_bucket() {
        let _ = Timeline::new(Duration::ZERO);
    }

    #[test]
    fn latency_stat_mean_and_max() {
        let s = LatencyStat::new();
        s.record(Duration::from_micros(10));
        s.record(Duration::from_micros(30));
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Duration::from_micros(20));
        assert_eq!(s.max(), Duration::from_micros(30));
    }

    #[test]
    fn latency_stat_empty_is_zero() {
        let s = LatencyStat::new();
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.percentile(0.99), Duration::ZERO);
    }

    #[test]
    fn latency_percentile_is_monotone() {
        let s = LatencyStat::new();
        for i in 1..=1000u64 {
            s.record(Duration::from_micros(i));
        }
        assert!(s.percentile(0.5) <= s.percentile(0.99));
        // p50 of 1..1000 µs should land near 512 µs at power-of-two resolution.
        assert!(s.percentile(0.5) >= Duration::from_micros(256));
        assert!(s.percentile(0.5) <= Duration::from_micros(1024));
    }

    #[test]
    fn abort_ratio_matches_table2_definition() {
        let c = AbortCounters::new();
        for _ in 0..97 {
            c.migration_abort();
        }
        for _ in 0..3 {
            c.commit();
        }
        assert!((c.migration_abort_ratio() - 0.97).abs() < 1e-9);
    }

    #[test]
    fn abort_ratio_empty_is_zero() {
        assert_eq!(AbortCounters::new().migration_abort_ratio(), 0.0);
    }

    #[test]
    fn event_marks_preserve_order() {
        let marks = EventMarks::new();
        marks.mark_at("a", Duration::from_secs(1));
        marks.mark_at("b", Duration::from_secs(2));
        let all = marks.all();
        assert_eq!(all[0].0, "a");
        assert_eq!(all[1].0, "b");
    }

    #[test]
    fn work_meter_accumulates() {
        let m = WorkMeter::new();
        m.charge(3);
        m.charge(4);
        assert_eq!(m.total(), 7);
    }
}
