//! Satellite test: N threads hammering shared registry series must sum
//! exactly, and concurrently-created scopes must never produce torn or
//! interleaved label sets.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use remus_common::metrics::MetricsRegistry;

const THREADS: usize = 8;
const ITERS: u64 = 10_000;

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let reg = MetricsRegistry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = reg.clone();
            thread::spawn(move || {
                let c = reg.counter("shared");
                for _ in 0..ITERS {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(reg.counter("shared").get(), THREADS as u64 * ITERS);
}

#[test]
fn concurrent_scoped_series_stay_isolated() {
    // Each thread writes only to its own node scope; cross-talk would show
    // up as a wrong per-scope sum.
    let reg = MetricsRegistry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|node| {
            let reg = reg.clone();
            thread::spawn(move || {
                let scope = reg.scoped("node", node);
                let c = scope.counter("work");
                for _ in 0..ITERS {
                    c.add(node as u64 + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for node in 0..THREADS {
        assert_eq!(
            reg.scoped("node", node).counter("work").get(),
            ITERS * (node as u64 + 1),
            "node {node} scope leaked increments"
        );
    }
}

#[test]
fn concurrent_mixed_series_creation_has_no_torn_labels() {
    // Threads race to create counters, gauges, and latency series under
    // distinct migration scopes; every label set in the final snapshot must
    // be one of the exact sets some thread requested.
    let reg = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let scope = reg.scoped("migration", i % 4).scoped("node", i);
                for _ in 0..1000 {
                    scope.counter("c").inc();
                    scope.gauge("g").raise(i as u64);
                    scope.latency("l").record(Duration::from_micros(10));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for sample in reg.snapshot() {
        assert_eq!(
            sample.labels.len(),
            2,
            "torn label set: {:?}",
            sample.labels
        );
        let (mig_key, mig_val) = &sample.labels[0];
        let (node_key, node_val) = &sample.labels[1];
        assert_eq!(mig_key, "migration");
        assert_eq!(node_key, "node");
        let node: usize = node_val.parse().unwrap();
        assert!(node < THREADS);
        assert_eq!(mig_val, &(node % 4).to_string());
        match sample.name.as_str() {
            "c" => assert_eq!(sample.value, 1000),
            "g" => assert_eq!(sample.value, node as u64),
            "l" => assert_eq!(sample.value, 1000),
            other => panic!("unexpected series {other}"),
        }
    }
}
