//! Criterion micro-benchmarks for the hot paths under the migration
//! engines: timestamp oracles, MVCC visibility, table reads/writes,
//! shard-map routing, WAL append, and the Zipfian generator.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use remus_clock::{Dts, Gts, TimestampOracle};
use remus_common::{NodeId, TableId, Timestamp, TxnId};
use remus_shard::{ShardMapCache, TableLayout};
use remus_storage::{Clog, Value, VersionedTable};
use remus_wal::{LogOp, LogRecord, Wal};

fn bench_oracles(c: &mut Criterion) {
    let gts = Gts::new();
    c.bench_function("gts_start_ts", |b| b.iter(|| gts.start_ts(NodeId(0))));
    let dts = Dts::new(6, Duration::from_millis(1));
    c.bench_function("dts_start_ts", |b| b.iter(|| dts.start_ts(NodeId(2))));
    c.bench_function("dts_observe", |b| {
        b.iter(|| dts.observe(NodeId(1), Timestamp::from_hlc(123_456, 7)))
    });
}

fn bench_storage(c: &mut Criterion) {
    let table = VersionedTable::new();
    let clog = Clog::new();
    let timeout = Duration::from_secs(1);
    // Preload 10k keys with 4 versions each.
    for round in 0..4u64 {
        for key in 0..10_000u64 {
            let xid = TxnId::new(NodeId(0), round * 10_000 + key + 1);
            clog.begin(xid);
            if round == 0 {
                table
                    .insert(
                        key,
                        Value::from(vec![1u8; 32]),
                        xid,
                        Timestamp(1),
                        &clog,
                        timeout,
                    )
                    .unwrap();
            } else {
                table
                    .update(
                        key,
                        Value::from(vec![1u8; 32]),
                        xid,
                        Timestamp(round * 10 + 1),
                        &clog,
                        timeout,
                    )
                    .unwrap();
            }
            clog.set_committed(xid, Timestamp(round * 10 + 2)).unwrap();
        }
    }
    let reader = TxnId::new(NodeId(1), 1);
    c.bench_function("mvcc_read_latest", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 7) % 10_000;
            table
                .read(key, Timestamp(100), reader, &clog, timeout)
                .unwrap()
        })
    });
    c.bench_function("mvcc_read_old_snapshot", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 7) % 10_000;
            table
                .read(key, Timestamp(3), reader, &clog, timeout)
                .unwrap()
        })
    });
    // Criterion re-invokes the routine across warmup and sampling: the xid
    // sequence must be global or begins would collide with resolved xids.
    let seq = std::sync::atomic::AtomicU64::new(1_000_000);
    c.bench_function("mvcc_update_commit", |b| {
        b.iter(|| {
            let s = seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let xid = TxnId::new(NodeId(2), s);
            clog.begin(xid);
            table
                .update(
                    s % 10_000,
                    Value::from(vec![2u8; 32]),
                    xid,
                    Timestamp(100 + s),
                    &clog,
                    timeout,
                )
                .unwrap();
            clog.set_committed(xid, Timestamp(101 + s)).unwrap();
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let layout = TableLayout::new(TableId(1), 0, 360);
    c.bench_function("shard_for_key", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key += 1;
            layout.shard_for(key)
        })
    });
    let mut cache = ShardMapCache::new();
    cache.refresh(
        layout
            .shard_ids()
            .map(|s| (s, NodeId((s.0 % 6) as u32), Timestamp(1))),
        1,
    );
    c.bench_function("cache_lookup", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key += 1;
            cache.lookup(layout.shard_for(key), Timestamp(50))
        })
    });
}

fn bench_wal(c: &mut Criterion) {
    let wal = Arc::new(Wal::new());
    c.bench_function("wal_append", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            wal.append(LogRecord::new(
                TxnId::new(NodeId(0), seq),
                LogOp::Commit(Timestamp(seq)),
            ))
        })
    });
    // Keep the bench from growing the log unboundedly between samples.
    wal.truncate_until(wal.flush_lsn());
}

fn bench_zipfian(c: &mut Criterion) {
    use rand::SeedableRng;
    let zipf = remus_workload::ycsb::Zipfian::new(100_000_000, 0.99);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    c.bench_function("zipfian_sample", |b| b.iter(|| zipf.sample(&mut rng)));
}

criterion_group!(
    benches,
    bench_oracles,
    bench_storage,
    bench_routing,
    bench_wal,
    bench_zipfian
);
criterion_main!(benches);
