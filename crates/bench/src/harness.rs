//! Shared scenario runners behind the figure/table binaries.
//!
//! Each runner builds a fresh six-node cluster, loads the workload, starts
//! the closed-loop clients, executes the scenario's migration plan with
//! the requested engine, and returns the per-second series plus the
//! counters the paper's artifacts report.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use remus_cluster::{CcMode, Cluster, ClusterBuilder, Session};
use remus_common::metrics::{MetricSample, Timeline};
use remus_common::{NodeId, ParallelismConfig, ShardId, SimConfig};
use remus_core::{
    LockAndAbort, MigrationController, MigrationEngine, MigrationPlan, MigrationReport,
    MigrationTask, RemusEngine, SquallEngine, WaitAndRemaster,
};
use remus_workload::driver::{Driver, RunMetrics, Workload};
use remus_workload::engine::{EngineConfig, EngineReport, OpenLoopEngine, Pacing};
use remus_workload::hybrid::{AnalyticalClient, BatchIngest, BatchIngestReport};
use remus_workload::tpcc::{Tpcc, TpccConfig};
use remus_workload::ycsb::{HotSpot, KeyDistribution, Ycsb, YcsbConfig};

use crate::scale::Scale;

/// The migration approaches under comparison (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's contribution.
    Remus,
    /// Lock-and-abort push baseline.
    LockAbort,
    /// Wait-and-remaster push baseline.
    Remaster,
    /// Squall pull baseline (runs under shard-lock concurrency control).
    Squall,
}

impl EngineKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Remus => "remus",
            EngineKind::LockAbort => "lock-and-abort",
            EngineKind::Remaster => "wait-and-remaster",
            EngineKind::Squall => "squall",
        }
    }

    /// The concurrency-control regime this engine is evaluated under.
    pub fn cc_mode(self) -> CcMode {
        match self {
            EngineKind::Squall => CcMode::ShardLock,
            _ => CcMode::Mvcc,
        }
    }

    /// Instantiates the engine.
    pub fn engine(self) -> Arc<dyn MigrationEngine> {
        match self {
            EngineKind::Remus => Arc::new(RemusEngine::new()),
            EngineKind::LockAbort => Arc::new(LockAndAbort::new()),
            EngineKind::Remaster => Arc::new(WaitAndRemaster::new()),
            EngineKind::Squall => Arc::new(SquallEngine::new()),
        }
    }

    /// All four approaches (figures 6–8).
    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::Remus,
            EngineKind::LockAbort,
            EngineKind::Remaster,
            EngineKind::Squall,
        ]
    }

    /// The push approaches (figure 9 — the Squall implementation does not
    /// support TPC-C's multi-key range partitioning, §4.6).
    pub fn push_engines() -> [EngineKind; 3] {
        [
            EngineKind::Remus,
            EngineKind::LockAbort,
            EngineKind::Remaster,
        ]
    }

    /// Parses a `--engine` style argument.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "remus" => Some(EngineKind::Remus),
            "lock-and-abort" | "lock" => Some(EngineKind::LockAbort),
            "wait-and-remaster" | "remaster" => Some(EngineKind::Remaster),
            "squall" => Some(EngineKind::Squall),
            _ => None,
        }
    }
}

/// The simulation config used by the harnesses (relative costs per
/// DESIGN.md; zero network latency because the host is single-core and
/// thread sleeps would distort more than they model).
pub fn sim_config(scale: &Scale) -> SimConfig {
    SimConfig {
        network_latency: Duration::ZERO,
        squall_pull_latency: Duration::from_millis(20),
        squall_chunk_keys: 64,
        parallelism: ParallelismConfig {
            copy_workers: 4,
            replay_workers: 4,
            chunk_size: 256,
            drain_batch: 32,
        },
        hot_path: remus_common::HotPathConfig {
            index_stripes: 8,
            gc_interval: Duration::ZERO,
            gts_lease: 1,
        },
        catchup_threshold: 64,
        spill_threshold: 4096,
        spill_reload_latency: Duration::from_micros(100),
        max_clock_skew: Duration::from_millis(1),
        snapshot_copy_per_tuple: scale.copy_per_tuple,
        lock_wait_timeout: Duration::from_secs(60),
        wal: remus_common::WalConfig::memory(),
        isolation: remus_common::IsolationLevel::SnapshotIsolation,
    }
}

/// How a bench [`ClientFleet`] runs its clients.
///
/// One spec replaces the copy-pasted `std::thread::spawn` session loops
/// the bins used to carry (foreground sessions, replica writers, planner
/// writers, ablation writers): pick a pacing, optionally a fixed per-client
/// workload, and let the open-loop engine own threads, sessions, seeding,
/// and recording.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Logical clients (routed to coordinator `client % nodes`).
    pub clients: usize,
    /// Worker threads multiplexing them (defaults to one per client).
    pub workers: usize,
    /// Arrival pacing.
    pub pacing: Pacing,
    /// Stop after this many transactions per client (`None`: run until
    /// stopped).
    pub max_txns_per_client: Option<u64>,
    /// Run seed for client rngs and open-loop schedules.
    pub seed: u64,
}

impl FleetSpec {
    /// Closed-loop clients pausing `think` between transactions — the
    /// shape of every background-writer loop in the bins.
    pub fn closed_loop(clients: usize, think: Duration) -> FleetSpec {
        FleetSpec {
            clients,
            workers: clients,
            pacing: Pacing::ClosedLoop { think },
            max_txns_per_client: None,
            seed: 0x5EED,
        }
    }

    /// Closed-loop clients that each run exactly `txns` transactions
    /// back-to-back (fixed-work bench legs).
    pub fn fixed_work(clients: usize, txns: u64) -> FleetSpec {
        FleetSpec {
            max_txns_per_client: Some(txns),
            ..FleetSpec::closed_loop(clients, Duration::ZERO)
        }
    }
}

/// A running background client fleet over the open-loop engine.
pub struct ClientFleet {
    engine: OpenLoopEngine,
}

/// Starts `spec.clients` clients driving `workload`.
pub fn spawn_fleet(
    cluster: &Arc<Cluster>,
    spec: FleetSpec,
    workload: Arc<dyn Workload>,
) -> ClientFleet {
    let config = EngineConfig {
        clients: spec.clients,
        workers: spec.workers.max(1),
        pacing: spec.pacing,
        seed: spec.seed,
        queue_bound: 64,
        horizon: None,
        max_txns_per_client: spec.max_txns_per_client,
    };
    ClientFleet {
        engine: OpenLoopEngine::start(cluster, config, workload),
    }
}

impl ClientFleet {
    /// The live shared metrics (latency buckets, timeline, aborts).
    pub fn metrics(&self) -> &Arc<RunMetrics> {
        &self.engine.metrics
    }

    /// Signals the fleet to stop and collects the report.
    pub fn stop(self) -> EngineReport {
        self.engine.stop()
    }

    /// Waits for a fixed-work fleet to finish its budget.
    pub fn join(self) -> EngineReport {
        self.engine.join()
    }
}

/// What a scenario run produced.
#[derive(Debug, Clone, Default)]
pub struct ScenarioResult {
    /// Engine name.
    pub engine: &'static str,
    /// Committed transactions per second, one entry per second.
    pub tps: Vec<f64>,
    /// Overlay events (seconds from series start).
    pub events: Vec<(String, f64)>,
    /// Total commits.
    pub commits: u64,
    /// Migration-induced aborts.
    pub migration_aborts: u64,
    /// Write-write conflict aborts.
    pub ww_aborts: u64,
    /// Other aborts.
    pub other_aborts: u64,
    /// Mean commit latency outside migrations.
    pub base_latency: Duration,
    /// Average latency increase while migrating (Table 3).
    pub latency_increase: Duration,
    /// Aggregate migration report of the whole plan.
    pub migration: MigrationReport,
    /// Batch ingestion report (hybrid A).
    pub batch: Option<BatchIngestReport>,
    /// Mean ingested tuples/s before the consolidation window (Table 2).
    pub batch_tps_before: f64,
    /// Mean ingested tuples/s during the consolidation window (Table 2).
    pub batch_tps_during: f64,
    /// Whether the hybrid-B duplicate-key check passed.
    pub consistency_ok: Option<bool>,
    /// Cluster metric samples taken after the run (2PC hops, WW aborts,
    /// prepare-wait blocks, queue spills, replay jobs, …).
    pub counters: Vec<MetricSample>,
}

fn mean_rate(timeline_buckets: &[u64], from: f64, to: f64) -> f64 {
    if to <= from {
        return 0.0;
    }
    let lo = from.floor().max(0.0) as usize;
    let hi = (to.ceil() as usize).min(timeline_buckets.len());
    if hi <= lo {
        return 0.0;
    }
    let sum: u64 = timeline_buckets[lo..hi].iter().sum();
    sum as f64 / (hi - lo) as f64
}

fn event_time(events: &[(String, f64)], name: &str) -> Option<f64> {
    events.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
}

fn finish(
    engine: EngineKind,
    metrics: &RunMetrics,
    migration: MigrationReport,
    cluster: &Cluster,
) -> ScenarioResult {
    ScenarioResult {
        engine: engine.name(),
        tps: metrics.timeline.rates_per_sec(),
        events: metrics
            .marks
            .all()
            .into_iter()
            .map(|(n, d)| (n, d.as_secs_f64()))
            .collect(),
        commits: metrics.counters.commits(),
        migration_aborts: metrics.counters.migration_aborts(),
        ww_aborts: metrics.counters.ww_aborts(),
        other_aborts: metrics.counters.other_aborts(),
        base_latency: metrics.latency_normal.mean(),
        latency_increase: metrics.latency_increase(),
        migration,
        counters: cluster.metrics_snapshot(),
        ..Default::default()
    }
}

fn build_cluster(kind: EngineKind, scale: &Scale) -> Arc<Cluster> {
    let cluster = ClusterBuilder::new(scale.nodes)
        .cc_mode(kind.cc_mode())
        .config(sim_config(scale))
        .build();
    cluster.start_maintenance(Duration::from_millis(500));
    cluster
}

fn ycsb_config(scale: &Scale, distribution: KeyDistribution) -> YcsbConfig {
    YcsbConfig {
        shards: scale.ycsb_shards,
        keys: scale.ycsb_keys,
        value_len: scale.value_len,
        distribution,
        ..YcsbConfig::default()
    }
}

/// Hybrid workload A during cluster consolidation (Figure 6 / Table 2).
pub fn run_hybrid_a(kind: EngineKind, scale: &Scale) -> ScenarioResult {
    let cluster = build_cluster(kind, scale);
    let ycsb = Arc::new(Ycsb::setup(
        &cluster,
        ycsb_config(scale, KeyDistribution::Uniform),
    ));
    let layout = ycsb.layout;
    let driver =
        Driver::start_with_think(&cluster, scale.clients, scale.think, Arc::clone(&ycsb) as _);
    let metrics = Arc::clone(&driver.metrics);
    let batch_tl = Arc::new(Timeline::per_second());

    driver.run_for(scale.warmup);

    // The ingestion client starts, runs through the consolidation, and is
    // retried on migration-induced aborts.
    metrics.marks.mark("batch start", &metrics.timeline);
    let batch_handle = {
        let cluster = Arc::clone(&cluster);
        let metrics = Arc::clone(&metrics);
        let batch_tl = Arc::clone(&batch_tl);
        let (size, n, len, pause) = (
            scale.batch_size,
            scale.batches,
            scale.value_len,
            scale.batch_pause,
        );
        let keys = scale.ycsb_keys;
        std::thread::spawn(move || {
            let ingest = BatchIngest::new(layout, keys, size, n, len).with_pause(pause);
            let report = ingest.run(&cluster, NodeId(0), Some(&batch_tl));
            metrics.marks.mark("batch end", &metrics.timeline);
            report
        })
    };

    std::thread::sleep(Duration::from_millis(600));
    metrics.marks.mark("consolidation start", &metrics.timeline);
    metrics.set_migration_active(true);
    let plan = MigrationPlan::consolidate(&cluster, NodeId(0), scale.consolidation_group);
    let controller = MigrationController::new(Arc::clone(&cluster), kind.engine());
    let mut migration = MigrationReport::new(kind.name());
    for report in controller
        .run_plan(&plan, |_, _| {})
        .expect("consolidation failed")
    {
        migration.absorb(&report);
    }
    metrics.set_migration_active(false);
    metrics.marks.mark("consolidation end", &metrics.timeline);

    let batch_report = batch_handle.join().expect("batch client panicked");
    driver.run_for(scale.cooldown);
    let metrics = driver.stop();

    let mut result = finish(kind, &metrics, migration, &cluster);
    let buckets = batch_tl.buckets();
    let c_start = event_time(&result.events, "consolidation start").unwrap_or(0.0);
    let c_end = event_time(&result.events, "consolidation end").unwrap_or(c_start);
    let b_start = event_time(&result.events, "batch start").unwrap_or(0.0);
    result.batch_tps_before = mean_rate(&buckets, b_start, c_start);
    result.batch_tps_during = mean_rate(&buckets, c_start, c_end);
    result.batch = Some(batch_report);
    result
}

/// Hybrid workload B during cluster consolidation (Figure 7).
pub fn run_hybrid_b(kind: EngineKind, scale: &Scale) -> ScenarioResult {
    let cluster = build_cluster(kind, scale);
    let ycsb = Arc::new(Ycsb::setup(
        &cluster,
        ycsb_config(scale, KeyDistribution::Uniform),
    ));
    let layout = ycsb.layout;
    let driver =
        Driver::start_with_think(&cluster, scale.clients, scale.think, Arc::clone(&ycsb) as _);
    let metrics = Arc::clone(&driver.metrics);

    driver.run_for(scale.warmup);

    // The long-lived analytical transaction: one snapshot, repeated full
    // scans with the duplicate-primary-key consistency check.
    metrics.marks.mark("analytic start", &metrics.timeline);
    let consistent = Arc::new(AtomicBool::new(true));
    let analytic_handle = {
        let cluster = Arc::clone(&cluster);
        let metrics = Arc::clone(&metrics);
        let consistent = Arc::clone(&consistent);
        let hold = scale.analytic_hold;
        let last = NodeId((scale.nodes - 1) as u32);
        std::thread::spawn(move || {
            let session = Session::connect(&cluster, last);
            let started = Instant::now();
            let mut txn = session.begin();
            while started.elapsed() < hold {
                match txn.scan_table(&layout) {
                    Ok(rows) => {
                        let mut keys: Vec<u64> = rows.into_iter().map(|(k, _)| k).collect();
                        let total = keys.len();
                        keys.sort_unstable();
                        keys.dedup();
                        if keys.len() != total {
                            consistent.store(false, Ordering::SeqCst);
                        }
                    }
                    Err(_) => {
                        // The baseline aborted the analytical transaction
                        // (Squall/lock-and-abort may); give up the snapshot.
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(200));
            }
            let _ = txn.commit();
            metrics.marks.mark("analytic end", &metrics.timeline);
        })
    };

    std::thread::sleep(Duration::from_millis(400));
    metrics.marks.mark("consolidation start", &metrics.timeline);
    metrics.set_migration_active(true);
    // Figure 7: four shards per migration.
    let plan = MigrationPlan::consolidate(&cluster, NodeId(0), scale.consolidation_group * 2);
    let controller = MigrationController::new(Arc::clone(&cluster), kind.engine());
    let mut migration = MigrationReport::new(kind.name());
    for report in controller
        .run_plan(&plan, |_, _| {})
        .expect("consolidation failed")
    {
        migration.absorb(&report);
    }
    metrics.set_migration_active(false);
    metrics.marks.mark("consolidation end", &metrics.timeline);

    analytic_handle.join().expect("analytic client panicked");
    driver.run_for(scale.cooldown);
    let metrics = driver.stop();

    // Post-consolidation consistency probe from a fresh snapshot.
    let analytical = AnalyticalClient { layout };
    let post_ok = analytical.check_consistency(&cluster, NodeId(1)).is_ok();

    let mut result = finish(kind, &metrics, migration, &cluster);
    result.consistency_ok = Some(consistent.load(Ordering::SeqCst) && post_ok);
    result
}

/// Skewed-YCSB load balancing (Figure 8).
pub fn run_load_balance(kind: EngineKind, scale: &Scale) -> ScenarioResult {
    let cluster = build_cluster(kind, scale);
    // Find the hot shards of the Zipfian access pattern and pile them onto
    // node 0, as the paper's skewed workload does.
    let config = ycsb_config(scale, KeyDistribution::Zipfian(0.99));
    let probe = {
        use rand::SeedableRng;
        let layout = remus_shard::TableLayout::new(config.table, config.base_shard, config.shards);
        let zipf = remus_workload::ycsb::Zipfian::new(config.keys, 0.99);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let mut hits = vec![0u64; config.shards as usize];
        for _ in 0..200_000 {
            let rank = zipf.sample(&mut rng);
            let key = remus_shard::key_hash(rank) % config.keys;
            hits[(layout.shard_for(key).0 - config.base_shard) as usize] += 1;
        }
        let mut order: Vec<u32> = (0..config.shards).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(hits[i as usize]));
        order
    };
    let hot_count = (scale.ycsb_shards / 3).clamp(5, 50) as usize;
    let hot: Vec<u32> = probe[..hot_count].to_vec();
    let nodes = scale.nodes as u32;
    let ycsb = Arc::new(Ycsb::setup_with_placement(&cluster, config, |i| {
        if hot.contains(&i) {
            NodeId(0)
        } else {
            NodeId(1 + i % (nodes - 1))
        }
    }));

    let driver =
        Driver::start_with_think(&cluster, scale.clients, scale.think, Arc::clone(&ycsb) as _);
    let metrics = Arc::clone(&driver.metrics);
    driver.run_for(scale.warmup);

    // Migrate 4/5 of the hot shards to the other nodes, four at a time.
    let migrate_n = hot_count * 4 / 5;
    let shards: Vec<ShardId> = hot[..migrate_n]
        .iter()
        .map(|&i| ShardId(ycsb.layout.base + i as u64))
        .collect();
    let dests: Vec<NodeId> = (1..nodes).map(NodeId).collect();
    metrics.marks.mark("balancing start", &metrics.timeline);
    metrics.set_migration_active(true);
    let plan = MigrationPlan::move_shards(&shards, NodeId(0), &dests, 4);
    let controller = MigrationController::new(Arc::clone(&cluster), kind.engine());
    let mut migration = MigrationReport::new(kind.name());
    for report in controller
        .run_plan(&plan, |_, _| {})
        .expect("load balancing failed")
    {
        migration.absorb(&report);
    }
    metrics.set_migration_active(false);
    metrics.marks.mark("balancing end", &metrics.timeline);

    driver.run_for(scale.cooldown);
    let metrics = driver.stop();
    finish(kind, &metrics, migration, &cluster)
}

/// TPC-C scale-out (Figure 9): the last node starts empty; half of the
/// overloaded first node's warehouses move onto it.
pub fn run_scale_out(kind: EngineKind, scale: &Scale) -> ScenarioResult {
    // TPC-C keeps inserting order rows, so the per-tuple copy pacing that
    // suits the fixed-size YCSB tables would stretch each warehouse move
    // into minutes; scale it down while keeping the windows visible.
    let mut config = sim_config(scale);
    config.snapshot_copy_per_tuple = scale.copy_per_tuple / 10;
    let cluster = ClusterBuilder::new(scale.nodes)
        .cc_mode(kind.cc_mode())
        .config(config)
        .build();
    cluster.start_maintenance(Duration::from_millis(500));
    let w = scale.warehouses;
    let nodes = scale.nodes as u32;
    let old_nodes = nodes - 1;
    // Node 0 is overloaded with twice the share; the last node is new.
    let share = w / (old_nodes + 1); // e.g. 24 warehouses, 6 "shares" of 4
    let tpcc = Arc::new(Tpcc::setup(
        &cluster,
        TpccConfig {
            warehouses: w,
            ..TpccConfig::default()
        },
        |wh| {
            if wh < 2 * share {
                NodeId(0)
            } else {
                NodeId(1 + (wh - 2 * share) / share.max(1) % (old_nodes - 1))
            }
        },
    ));
    let driver = Driver::start_with_think(
        &cluster,
        scale.tpcc_clients,
        scale.think,
        Arc::clone(&tpcc) as _,
    );
    let metrics = Arc::clone(&driver.metrics);
    driver.run_for(scale.warmup);

    // Move half of node 0's warehouses (all 8 collocated shards each) to
    // the new node, one warehouse per migration.
    metrics.marks.mark("scale-out start", &metrics.timeline);
    metrics.set_migration_active(true);
    let controller = MigrationController::new(Arc::clone(&cluster), kind.engine());
    let mut migration = MigrationReport::new(kind.name());
    for wh in 0..share {
        let task = MigrationTask {
            shards: tpcc.warehouse_shards(wh),
            source: NodeId(0),
            dest: NodeId(nodes - 1),
        };
        let report = controller
            .run_task(&task)
            .expect("scale-out migration failed");
        migration.absorb(&report);
    }
    metrics.set_migration_active(false);
    metrics.marks.mark("scale-out end", &metrics.timeline);

    driver.run_for(scale.cooldown);
    let metrics = driver.stop();
    finish(kind, &metrics, migration, &cluster)
}

/// One sample of the high-contention run (Figure 10).
#[derive(Debug, Clone, Copy)]
pub struct ContentionSample {
    /// Seconds since the run started.
    pub t: f64,
    /// Work units per second on the source node (the "CPU" stand-in).
    pub src_work: u64,
    /// Work units per second on the destination node.
    pub dst_work: u64,
    /// Longest version chain in the hot shard.
    pub max_chain: usize,
}

/// Result of the high-contention scenario.
#[derive(Debug, Clone)]
pub struct HighContentionResult {
    /// Committed transactions per second.
    pub tps: Vec<f64>,
    /// Per-second node work and version-chain samples.
    pub samples: Vec<ContentionSample>,
    /// Overlay events.
    pub events: Vec<(String, f64)>,
    /// WW conflicts between client transactions.
    pub ww_aborts: u64,
    /// WW conflicts between shadow and destination transactions during
    /// dual execution (paper: 8 in five minutes).
    pub shadow_conflicts: u64,
    /// The migration report.
    pub migration: MigrationReport,
}

/// High-contention YCSB on one hot shard, migrated with Remus (Figure 10,
/// §4.8).
pub fn run_high_contention(scale: &Scale) -> HighContentionResult {
    let mut config = sim_config(scale);
    // Stretch the snapshot copy so the long-lived copy snapshot visibly
    // holds back vacuum (the version-chain effect of §4.8).
    config.snapshot_copy_per_tuple = config.snapshot_copy_per_tuple.max(Duration::from_millis(2));
    let cluster = ClusterBuilder::new(scale.nodes).config(config).build();
    cluster.start_maintenance(Duration::from_millis(200));
    let ycsb = Arc::new(Ycsb::setup(
        &cluster,
        ycsb_config(scale, KeyDistribution::Uniform),
    ));
    // Hot tuples: 100 keys of one shard owned by node 0.
    let shard = cluster.node(NodeId(0)).data_shards()[0];
    let hot_keys = Arc::new(ycsb.keys_on_shard(shard, 100));
    assert!(!hot_keys.is_empty(), "hot shard has no keys");
    let workload = Arc::new(HotSpot {
        layout: ycsb.layout,
        keys: Arc::clone(&hot_keys),
        value_len: scale.value_len,
    });
    let driver = Driver::start_with_think(&cluster, scale.clients * 2, scale.think, workload as _);
    let metrics = Arc::clone(&driver.metrics);

    // Sampler: per-second node work deltas and chain length.
    let stop_sampler = Arc::new(AtomicBool::new(false));
    let sampler = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop_sampler);
        let started = Instant::now();
        std::thread::spawn(move || {
            let (src, dst) = (
                cluster.node(NodeId(0)).clone(),
                cluster.node(NodeId(1)).clone(),
            );
            let mut samples = Vec::new();
            let (mut last_src, mut last_dst) = (src.work.total(), dst.work.total());
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_secs(1));
                let (s, d) = (src.work.total(), dst.work.total());
                let chain = src
                    .storage
                    .table(shard)
                    .or_else(|| dst.storage.table(shard))
                    .map(|t| t.stats().max_chain)
                    .unwrap_or(0);
                samples.push(ContentionSample {
                    t: started.elapsed().as_secs_f64(),
                    src_work: s - last_src,
                    dst_work: d - last_dst,
                    max_chain: chain,
                });
                last_src = s;
                last_dst = d;
            }
            samples
        })
    };

    driver.run_for(scale.warmup);
    metrics.marks.mark("migration start", &metrics.timeline);
    metrics.set_migration_active(true);
    let task = MigrationTask::single(shard, NodeId(0), NodeId(1));
    let report = RemusEngine::new()
        .migrate(&cluster, &task)
        .expect("migration failed");
    metrics.set_migration_active(false);
    metrics.marks.mark("migration end", &metrics.timeline);
    driver.run_for(scale.cooldown);

    stop_sampler.store(true, Ordering::Relaxed);
    let samples = sampler.join().expect("sampler panicked");
    let metrics = driver.stop();
    HighContentionResult {
        tps: metrics.timeline.rates_per_sec(),
        samples,
        events: metrics
            .marks
            .all()
            .into_iter()
            .map(|(n, d)| (n, d.as_secs_f64()))
            .collect(),
        ww_aborts: metrics.counters.ww_aborts(),
        shadow_conflicts: report.validation_conflicts,
        migration: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kinds_roundtrip_names() {
        for kind in EngineKind::all() {
            assert_eq!(EngineKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.engine().name(), kind.name());
        }
        assert_eq!(EngineKind::parse("lock"), Some(EngineKind::LockAbort));
        assert_eq!(EngineKind::parse("nope"), None);
    }

    #[test]
    fn squall_runs_under_shard_locks_only() {
        assert_eq!(EngineKind::Squall.cc_mode(), CcMode::ShardLock);
        for kind in EngineKind::push_engines() {
            assert_eq!(kind.cc_mode(), CcMode::Mvcc);
        }
    }

    #[test]
    fn mean_rate_windows() {
        let buckets = [10u64, 20, 30, 40];
        assert_eq!(mean_rate(&buckets, 0.0, 4.0), 25.0);
        assert_eq!(mean_rate(&buckets, 1.0, 3.0), 25.0);
        assert_eq!(mean_rate(&buckets, 3.0, 3.0), 0.0);
        assert_eq!(mean_rate(&buckets, 10.0, 12.0), 0.0);
    }

    #[test]
    fn sim_config_orders_costs() {
        let c = sim_config(&Scale::quick());
        assert!(c.squall_pull_latency > c.spill_reload_latency);
        assert!(c.lock_wait_timeout > Duration::from_secs(10));
    }

    /// The smallest end-to-end smoke: one Remus consolidation of a tiny
    /// hybrid-A scenario completes with zero migration aborts.
    #[test]
    fn hybrid_a_smoke_remus() {
        let scale = Scale {
            ycsb_shards: 12,
            ycsb_keys: 600,
            clients: 2,
            batch_size: 200,
            batches: 1,
            warmup: Duration::from_millis(100),
            cooldown: Duration::from_millis(100),
            batch_pause: Duration::ZERO,
            copy_per_tuple: Duration::ZERO,
            ..Scale::quick()
        };
        let result = run_hybrid_a(EngineKind::Remus, &scale);
        assert_eq!(result.engine, "remus");
        assert_eq!(result.migration_aborts, 0);
        assert!(result.commits > 0);
        assert_eq!(result.batch.as_ref().unwrap().aborted_attempts, 0);
    }
}
