#![warn(missing_docs)]

//! Benchmark harnesses that regenerate every table and figure of the
//! paper's evaluation (§4).
//!
//! One binary per artifact (see `src/bin/`): `fig6` … `fig10`, `table2`,
//! `table3`. Each prints the same rows/series the paper reports — per-
//! second throughput with migration events overlaid for the figures,
//! abort ratios and latency deltas for the tables. Absolute numbers come
//! from a laptop-scale simulation (see DESIGN.md §1); the *shape* — which
//! engine wins, where throughput collapses, who aborts — is the
//! reproduction target.
//!
//! Scales are read from the `REMUS_SCALE` environment variable:
//! `quick` (CI smoke), `default`, or `full` (closest to the paper's
//! dimensions; takes correspondingly longer).
//!
//! Every binary also accepts `--json <path>` and then additionally writes
//! the machine-readable [`report::BenchReport`] document (phase span
//! trees, cluster counters, captured tables) that `bench_check` diffs in
//! CI.

pub mod gate;
pub mod harness;
pub mod print;
pub mod report;
pub mod scale;

pub use gate::{parse_ratio_cell, two_tier, GateTier};
pub use harness::{
    run_high_contention, run_hybrid_a, run_hybrid_b, run_load_balance, run_scale_out, sim_config,
    spawn_fleet, ClientFleet, EngineKind, FleetSpec, HighContentionResult, ScenarioResult,
};
pub use print::{print_events, print_scenario, print_series, print_table};
pub use report::{json_path_arg, BenchReport, ScenarioReport, TableSection};

/// Alias kept for the binaries' readability.
pub use print::print_scenario as print_scenario_for;
pub use scale::Scale;
