//! Machine-readable bench reports.
//!
//! Every figure/table/ablation binary can emit the same JSON document via
//! `--json <path>`: a [`BenchReport`] holding scenario runs (throughput
//! series, abort counters, the migration summary with its phase span
//! trees, and the cluster metric samples) plus any printed tables. The
//! schema is versioned and round-trips through
//! [`remus_common::Json`], so CI can archive the artifact, diff two runs,
//! and gate on regressions without scraping stdout.

use std::path::PathBuf;
use std::time::Duration;

use remus_common::metrics::MetricSample;
use remus_common::Json;
use remus_core::trace::MigrationTrace;
use remus_core::MigrationReport;

use crate::harness::ScenarioResult;

/// Version of the JSON layout. Bump on breaking changes.
pub const SCHEMA_VERSION: u64 = 1;

/// The `schema` marker string embedded in every document.
pub const SCHEMA_NAME: &str = "remus-bench/v1";

/// One phase (or sub-step) span, microsecond offsets from the migration
/// start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReport {
    /// Span id (index within the trace).
    pub id: u64,
    /// Parent span id; `None` for root phases.
    pub parent: Option<u64>,
    /// Phase name.
    pub name: String,
    /// Start offset in microseconds.
    pub start_us: u64,
    /// End offset in microseconds.
    pub end_us: u64,
    /// Numeric attributes (work counts, LSNs, lag samples).
    pub attrs: Vec<(String, u64)>,
}

/// The span tree of one migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Engine that recorded it.
    pub engine: String,
    /// Spans in start order.
    pub spans: Vec<SpanReport>,
}

impl TraceReport {
    /// Converts a recorded trace.
    pub fn from_trace(trace: &MigrationTrace) -> TraceReport {
        TraceReport {
            engine: trace.engine.to_string(),
            spans: trace
                .spans
                .iter()
                .map(|s| SpanReport {
                    id: u64::from(s.id),
                    parent: s.parent.map(u64::from),
                    name: s.name.to_string(),
                    start_us: s.start.as_micros() as u64,
                    end_us: s.end.unwrap_or(s.start).as_micros() as u64,
                    attrs: s.attrs.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
                })
                .collect(),
        }
    }

    /// Root phase names in start order — the sequence CI diffs.
    pub fn root_phases(&self) -> Vec<&str> {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.name.as_str())
            .collect()
    }
}

/// Aggregate migration outcome: the report counters plus all span trees.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MigrationSummary {
    /// Engine name.
    pub engine: String,
    /// End-to-end microseconds.
    pub total_us: u64,
    /// Snapshot-copy phase microseconds.
    pub snapshot_us: u64,
    /// Catch-up phase microseconds.
    pub catchup_us: u64,
    /// Ownership-transfer phase microseconds.
    pub transfer_us: u64,
    /// Dual-execution phase microseconds.
    pub dual_us: u64,
    /// Cluster-wide blocked time microseconds.
    pub downtime_us: u64,
    /// Tuples installed by the copy (plus Squall pulls).
    pub tuples_copied: u64,
    /// Change records replayed on the destination.
    pub records_replayed: u64,
    /// MOCC validation conflicts.
    pub validation_conflicts: u64,
    /// Server-side terminations / chunk-rule aborts.
    pub forced_aborts: u64,
    /// Squall chunk pulls.
    pub pulls: u64,
    /// Span trees, one per absorbed migration.
    pub traces: Vec<TraceReport>,
}

impl MigrationSummary {
    /// Converts an engine report.
    pub fn from_report(report: &MigrationReport) -> MigrationSummary {
        let us = |d: Duration| d.as_micros() as u64;
        MigrationSummary {
            engine: report.engine.to_string(),
            total_us: us(report.total),
            snapshot_us: us(report.snapshot_phase),
            catchup_us: us(report.catchup_phase),
            transfer_us: us(report.transfer_phase),
            dual_us: us(report.dual_phase),
            downtime_us: us(report.downtime),
            tuples_copied: report.tuples_copied,
            records_replayed: report.records_replayed,
            validation_conflicts: report.validation_conflicts,
            forced_aborts: report.forced_aborts,
            pulls: report.pulls,
            traces: report.traces.iter().map(TraceReport::from_trace).collect(),
        }
    }
}

/// One metric series sampled from a cluster registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterReport {
    /// Metric name, e.g. `"txn.2pc_hops"`.
    pub name: String,
    /// Label set, e.g. `[("node", "0")]`.
    pub labels: Vec<(String, String)>,
    /// `"counter"`, `"gauge"`, or `"latency"`.
    pub kind: String,
    /// Counter/gauge value; sample count for latency series.
    pub value: u64,
}

impl CounterReport {
    /// Converts a registry sample.
    pub fn from_sample(sample: &MetricSample) -> CounterReport {
        CounterReport {
            name: sample.name.clone(),
            labels: sample.labels.clone(),
            kind: sample.kind.to_string(),
            value: sample.value,
        }
    }
}

/// One scenario run (one engine through one workload).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioReport {
    /// Scenario label, e.g. `"hybrid A"` or `"smoke"`.
    pub name: String,
    /// Engine name.
    pub engine: String,
    /// Committed client transactions.
    pub commits: u64,
    /// Migration-induced aborts.
    pub migration_aborts: u64,
    /// Write-write conflict aborts.
    pub ww_aborts: u64,
    /// Other aborts.
    pub other_aborts: u64,
    /// Mean commit latency outside migrations, microseconds.
    pub base_latency_us: u64,
    /// Mean latency increase while migrating, microseconds.
    pub latency_increase_us: u64,
    /// Committed transactions per second, one entry per second.
    pub tps: Vec<f64>,
    /// Overlay events (name, seconds from series start).
    pub events: Vec<(String, f64)>,
    /// The migration summary with its span trees.
    pub migration: MigrationSummary,
    /// Cluster metric samples taken after the run.
    pub counters: Vec<CounterReport>,
}

impl ScenarioReport {
    /// Converts a harness result.
    pub fn from_result(name: &str, result: &ScenarioResult) -> ScenarioReport {
        ScenarioReport {
            name: name.to_string(),
            engine: result.engine.to_string(),
            commits: result.commits,
            migration_aborts: result.migration_aborts,
            ww_aborts: result.ww_aborts,
            other_aborts: result.other_aborts,
            base_latency_us: result.base_latency.as_micros() as u64,
            latency_increase_us: result.latency_increase.as_micros() as u64,
            tps: result.tps.clone(),
            events: result.events.clone(),
            migration: MigrationSummary::from_report(&result.migration),
            counters: result
                .counters
                .iter()
                .map(CounterReport::from_sample)
                .collect(),
        }
    }
}

/// A printed table captured verbatim (the table/ablation binaries).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableSection {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

/// The top-level bench artifact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// What produced the document, e.g. `"fig6"`.
    pub title: String,
    /// Scale preset description.
    pub scale: String,
    /// Scenario runs.
    pub scenarios: Vec<ScenarioReport>,
    /// Captured tables.
    pub tables: Vec<TableSection>,
}

impl BenchReport {
    /// An empty report for `title` at `scale`.
    pub fn new(title: &str, scale: &str) -> BenchReport {
        BenchReport {
            title: title.to_string(),
            scale: scale.to_string(),
            ..Default::default()
        }
    }

    /// Serializes to the versioned JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str(SCHEMA_NAME)),
            ("schema_version", Json::num(SCHEMA_VERSION)),
            ("title", Json::str(&self.title)),
            ("scale", Json::str(&self.scale)),
            (
                "scenarios",
                Json::Arr(self.scenarios.iter().map(scenario_to_json).collect()),
            ),
            (
                "tables",
                Json::Arr(self.tables.iter().map(table_to_json).collect()),
            ),
        ])
    }

    /// Parses a document produced by [`BenchReport::to_json`].
    pub fn from_json(doc: &Json) -> Result<BenchReport, String> {
        let version = req_u64(doc, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version}, expected {SCHEMA_VERSION}"
            ));
        }
        Ok(BenchReport {
            title: req_str(doc, "title")?,
            scale: req_str(doc, "scale")?,
            scenarios: req_arr(doc, "scenarios")?
                .iter()
                .map(scenario_from_json)
                .collect::<Result<_, _>>()?,
            tables: req_arr(doc, "tables")?
                .iter()
                .map(table_from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parses the JSON text of a document.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        BenchReport::from_json(&doc)
    }

    /// Writes the pretty-printed document to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())?;
        eprintln!("wrote {}", path.display());
        Ok(())
    }
}

/// Scans the process arguments for `--json <path>`.
pub fn json_path_arg() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn labels_to_json(labels: &[(String, String)]) -> Json {
    Json::Obj(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::str(v)))
            .collect(),
    )
}

fn span_to_json(span: &SpanReport) -> Json {
    Json::obj(vec![
        ("id", Json::num(span.id)),
        ("parent", span.parent.map(Json::num).unwrap_or(Json::Null)),
        ("name", Json::str(&span.name)),
        ("start_us", Json::num(span.start_us)),
        ("end_us", Json::num(span.end_us)),
        (
            "attrs",
            Json::Obj(
                span.attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::num(*v)))
                    .collect(),
            ),
        ),
    ])
}

fn trace_to_json(trace: &TraceReport) -> Json {
    Json::obj(vec![
        ("engine", Json::str(&trace.engine)),
        (
            "spans",
            Json::Arr(trace.spans.iter().map(span_to_json).collect()),
        ),
    ])
}

fn migration_to_json(m: &MigrationSummary) -> Json {
    Json::obj(vec![
        ("engine", Json::str(&m.engine)),
        ("total_us", Json::num(m.total_us)),
        ("snapshot_us", Json::num(m.snapshot_us)),
        ("catchup_us", Json::num(m.catchup_us)),
        ("transfer_us", Json::num(m.transfer_us)),
        ("dual_us", Json::num(m.dual_us)),
        ("downtime_us", Json::num(m.downtime_us)),
        ("tuples_copied", Json::num(m.tuples_copied)),
        ("records_replayed", Json::num(m.records_replayed)),
        ("validation_conflicts", Json::num(m.validation_conflicts)),
        ("forced_aborts", Json::num(m.forced_aborts)),
        ("pulls", Json::num(m.pulls)),
        (
            "traces",
            Json::Arr(m.traces.iter().map(trace_to_json).collect()),
        ),
    ])
}

fn scenario_to_json(s: &ScenarioReport) -> Json {
    Json::obj(vec![
        ("name", Json::str(&s.name)),
        ("engine", Json::str(&s.engine)),
        ("commits", Json::num(s.commits)),
        ("migration_aborts", Json::num(s.migration_aborts)),
        ("ww_aborts", Json::num(s.ww_aborts)),
        ("other_aborts", Json::num(s.other_aborts)),
        ("base_latency_us", Json::num(s.base_latency_us)),
        ("latency_increase_us", Json::num(s.latency_increase_us)),
        (
            "tps",
            Json::Arr(s.tps.iter().map(|&v| Json::float(v)).collect()),
        ),
        (
            "events",
            Json::Arr(
                s.events
                    .iter()
                    .map(|(name, t)| {
                        Json::obj(vec![("name", Json::str(name)), ("t_s", Json::float(*t))])
                    })
                    .collect(),
            ),
        ),
        ("migration", migration_to_json(&s.migration)),
        (
            "counters",
            Json::Arr(
                s.counters
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("name", Json::str(&c.name)),
                            ("labels", labels_to_json(&c.labels)),
                            ("kind", Json::str(&c.kind)),
                            ("value", Json::num(c.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn table_to_json(t: &TableSection) -> Json {
    Json::obj(vec![
        ("title", Json::str(&t.title)),
        (
            "headers",
            Json::Arr(t.headers.iter().map(Json::str).collect()),
        ),
        (
            "rows",
            Json::Arr(
                t.rows
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    req(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an integer"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn req_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} is not an array"))
}

fn labels_from_json(v: &Json) -> Result<Vec<(String, String)>, String> {
    match v {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("label {k:?} is not a string"))
            })
            .collect(),
        _ => Err("labels is not an object".to_string()),
    }
}

fn span_from_json(v: &Json) -> Result<SpanReport, String> {
    let parent = match req(v, "parent")? {
        Json::Null => None,
        other => Some(
            other
                .as_u64()
                .ok_or_else(|| "span parent is not an integer".to_string())?,
        ),
    };
    let attrs = match req(v, "attrs")? {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("attr {k:?} is not an integer"))
            })
            .collect::<Result<_, _>>()?,
        _ => return Err("span attrs is not an object".to_string()),
    };
    Ok(SpanReport {
        id: req_u64(v, "id")?,
        parent,
        name: req_str(v, "name")?,
        start_us: req_u64(v, "start_us")?,
        end_us: req_u64(v, "end_us")?,
        attrs,
    })
}

fn trace_from_json(v: &Json) -> Result<TraceReport, String> {
    Ok(TraceReport {
        engine: req_str(v, "engine")?,
        spans: req_arr(v, "spans")?
            .iter()
            .map(span_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn migration_from_json(v: &Json) -> Result<MigrationSummary, String> {
    Ok(MigrationSummary {
        engine: req_str(v, "engine")?,
        total_us: req_u64(v, "total_us")?,
        snapshot_us: req_u64(v, "snapshot_us")?,
        catchup_us: req_u64(v, "catchup_us")?,
        transfer_us: req_u64(v, "transfer_us")?,
        dual_us: req_u64(v, "dual_us")?,
        downtime_us: req_u64(v, "downtime_us")?,
        tuples_copied: req_u64(v, "tuples_copied")?,
        records_replayed: req_u64(v, "records_replayed")?,
        validation_conflicts: req_u64(v, "validation_conflicts")?,
        forced_aborts: req_u64(v, "forced_aborts")?,
        pulls: req_u64(v, "pulls")?,
        traces: req_arr(v, "traces")?
            .iter()
            .map(trace_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn scenario_from_json(v: &Json) -> Result<ScenarioReport, String> {
    Ok(ScenarioReport {
        name: req_str(v, "name")?,
        engine: req_str(v, "engine")?,
        commits: req_u64(v, "commits")?,
        migration_aborts: req_u64(v, "migration_aborts")?,
        ww_aborts: req_u64(v, "ww_aborts")?,
        other_aborts: req_u64(v, "other_aborts")?,
        base_latency_us: req_u64(v, "base_latency_us")?,
        latency_increase_us: req_u64(v, "latency_increase_us")?,
        tps: req_arr(v, "tps")?
            .iter()
            .map(|n| {
                n.as_f64()
                    .ok_or_else(|| "tps entry is not a number".to_string())
            })
            .collect::<Result<_, _>>()?,
        events: req_arr(v, "events")?
            .iter()
            .map(|e| Ok((req_str(e, "name")?, req_f64(e, "t_s")?)))
            .collect::<Result<_, String>>()?,
        migration: migration_from_json(req(v, "migration")?)?,
        counters: req_arr(v, "counters")?
            .iter()
            .map(|c| {
                Ok(CounterReport {
                    name: req_str(c, "name")?,
                    labels: labels_from_json(req(c, "labels")?)?,
                    kind: req_str(c, "kind")?,
                    value: req_u64(c, "value")?,
                })
            })
            .collect::<Result<_, String>>()?,
    })
}

fn table_from_json(v: &Json) -> Result<TableSection, String> {
    let cell = |c: &Json| {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| "table cell is not a string".to_string())
    };
    Ok(TableSection {
        title: req_str(v, "title")?,
        headers: req_arr(v, "headers")?
            .iter()
            .map(cell)
            .collect::<Result<_, _>>()?,
        rows: req_arr(v, "rows")?
            .iter()
            .map(|row| {
                row.as_array()
                    .ok_or_else(|| "table row is not an array".to_string())?
                    .iter()
                    .map(cell)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            title: "fig6".to_string(),
            scale: "quick".to_string(),
            scenarios: vec![ScenarioReport {
                name: "hybrid A".to_string(),
                engine: "remus".to_string(),
                commits: 1200,
                migration_aborts: 0,
                ww_aborts: 3,
                other_aborts: 1,
                base_latency_us: 850,
                latency_increase_us: 120,
                tps: vec![100.0, 101.5],
                events: vec![("consolidation start".to_string(), 2.5)],
                migration: MigrationSummary {
                    engine: "remus".to_string(),
                    total_us: 2_000_000,
                    snapshot_us: 900_000,
                    catchup_us: 100_000,
                    transfer_us: 50_000,
                    dual_us: 950_000,
                    downtime_us: 0,
                    tuples_copied: 4096,
                    records_replayed: 512,
                    validation_conflicts: 0,
                    forced_aborts: 0,
                    pulls: 0,
                    traces: vec![TraceReport {
                        engine: "remus".to_string(),
                        spans: vec![
                            SpanReport {
                                id: 0,
                                parent: None,
                                name: "snapshot_copy".to_string(),
                                start_us: 0,
                                end_us: 900_000,
                                attrs: vec![("tuples_copied".to_string(), 4096)],
                            },
                            SpanReport {
                                id: 1,
                                parent: Some(0),
                                name: "scan".to_string(),
                                start_us: 10,
                                end_us: 899_000,
                                attrs: vec![],
                            },
                        ],
                    }],
                },
                counters: vec![CounterReport {
                    name: "txn.2pc_hops".to_string(),
                    labels: vec![("node".to_string(), "0".to_string())],
                    kind: "counter".to_string(),
                    value: 42,
                }],
            }],
            tables: vec![TableSection {
                title: "latency".to_string(),
                headers: vec!["workload".to_string(), "remus_ms".to_string()],
                rows: vec![vec!["hybrid A".to_string(), "0.12".to_string()]],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let report = sample_report();
        let text = report.to_json().to_pretty();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn schema_version_is_enforced() {
        let mut doc = sample_report().to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "schema_version" {
                    *v = Json::num(99);
                }
            }
        }
        let err = BenchReport::from_json(&doc).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = BenchReport::parse(r#"{"schema_version": 1}"#).unwrap_err();
        assert!(err.contains("title"), "{err}");
    }

    #[test]
    fn root_phase_extraction_skips_children() {
        let report = sample_report();
        let trace = &report.scenarios[0].migration.traces[0];
        assert_eq!(trace.root_phases(), vec!["snapshot_copy"]);
    }

    #[test]
    fn scenario_report_converts_a_harness_result() {
        let mut result = ScenarioResult {
            engine: "remus",
            commits: 10,
            ..Default::default()
        };
        result.migration.engine = "remus";
        result.tps = vec![5.0];
        let scenario = ScenarioReport::from_result("smoke", &result);
        assert_eq!(scenario.name, "smoke");
        assert_eq!(scenario.engine, "remus");
        assert_eq!(scenario.commits, 10);
        assert_eq!(scenario.migration.engine, "remus");
    }
}
