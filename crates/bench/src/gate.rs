//! The two-tier bench gate, shared by every ratio check in `bench_check`.
//!
//! All of the repo's headline bench ratios (foreground speedup, planner
//! recovery, replica read scaling, replicate-vs-migrate edge) are gated
//! the same way: an **expected** threshold below which the check warns —
//! shared CI runners compress real ratios without any code regression —
//! and a **hard floor** below which it fails, because every compared leg
//! runs in the same process on the same runner, so noise alone cannot
//! erase the ratio. This module holds that policy once, as pure
//! functions, so the boundary semantics are unit-testable without
//! generating full reports.

/// Outcome of a two-tier ratio gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateTier {
    /// At or above the expected threshold.
    Pass,
    /// Below expected but at or above the hard floor: tolerated as runner
    /// noise, surfaced as a warning.
    Warn,
    /// Below the hard floor: a genuine regression, never noise.
    Fail,
}

/// Classifies `value` against the two thresholds. Both boundaries are
/// inclusive on the passing side: a value exactly at `expected` passes,
/// and a value exactly at `floor` warns rather than fails — the floor is
/// the last tolerated value, not the first failing one.
///
/// `expected < floor` would make the warning tier empty; the function
/// debug-asserts against it but degrades gracefully (everything below
/// `expected` then fails).
pub fn two_tier(value: f64, expected: f64, floor: f64) -> GateTier {
    debug_assert!(
        floor <= expected,
        "two-tier gate misconfigured: floor {floor} > expected {expected}"
    );
    if value >= expected {
        GateTier::Pass
    } else if value >= floor {
        GateTier::Warn
    } else {
        GateTier::Fail
    }
}

/// Parses a trailing ratio cell of a report table (`"1.59x"` → `1.59`).
/// Returns `None` for a missing suffix or an unparseable number, which
/// callers report as a violation (a mangled cell must never pass silently).
pub fn parse_ratio_cell(cell: &str) -> Option<f64> {
    cell.strip_suffix('x')?.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn above_expected_passes() {
        assert_eq!(two_tier(2.5, 1.5, 1.1), GateTier::Pass);
    }

    #[test]
    fn exactly_at_expected_passes() {
        // The boundary the warning tier starts *below*, not at.
        assert_eq!(two_tier(1.5, 1.5, 1.1), GateTier::Pass);
        assert_eq!(two_tier(0.70, 0.70, 0.40), GateTier::Pass);
    }

    #[test]
    fn between_floors_warns() {
        assert_eq!(two_tier(1.3, 1.5, 1.1), GateTier::Warn);
        assert_eq!(two_tier(0.55, 0.70, 0.40), GateTier::Warn);
    }

    #[test]
    fn exactly_at_floor_warns() {
        // The floor itself is still tolerated; only strictly below fails.
        assert_eq!(two_tier(1.1, 1.5, 1.1), GateTier::Warn);
        assert_eq!(two_tier(0.40, 0.70, 0.40), GateTier::Warn);
    }

    #[test]
    fn below_floor_fails() {
        assert_eq!(two_tier(1.0999, 1.5, 1.1), GateTier::Fail);
        assert_eq!(two_tier(0.1, 0.70, 0.40), GateTier::Fail);
    }

    #[test]
    fn degenerate_equal_thresholds_have_no_warn_tier() {
        assert_eq!(two_tier(1.1, 1.1, 1.1), GateTier::Pass);
        assert_eq!(two_tier(1.0, 1.1, 1.1), GateTier::Fail);
    }

    #[test]
    fn ratio_cells_parse_and_reject() {
        assert_eq!(parse_ratio_cell("1.59x"), Some(1.59));
        assert_eq!(parse_ratio_cell("0.88x"), Some(0.88));
        assert_eq!(parse_ratio_cell("1.59"), None);
        assert_eq!(parse_ratio_cell("fastx"), None);
        assert_eq!(parse_ratio_cell(""), None);
    }
}
