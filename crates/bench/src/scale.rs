//! Benchmark scale presets.
//!
//! The paper runs on six 64-vCPU servers with 100 M tuples and 400–480
//! clients; the simulation runs wherever `cargo` does. Three presets trade
//! fidelity for wall time; all keep the paper's *structure* (six nodes,
//! shards per node, migrations per scenario, transaction mixes) and shrink
//! only the constants.

use std::time::Duration;

/// Dimensions for the scenario runners.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Nodes in the cluster (paper: 6).
    pub nodes: usize,
    /// YCSB shards in total (paper: 360; must be divisible by `nodes`).
    pub ycsb_shards: u32,
    /// YCSB tuples (paper: 100 M).
    pub ycsb_keys: u64,
    /// YCSB value bytes (paper: ~1 KB).
    pub value_len: usize,
    /// Closed-loop YCSB clients (paper: 400).
    pub clients: usize,
    /// Client think time (stands in for the paper's client-server round
    /// trips; see `Driver::start_with_think`).
    pub think: Duration,
    /// Shards migrated together during consolidation (paper fig. 6: 2).
    pub consolidation_group: usize,
    /// Tuples per ingestion batch (paper: 1 M).
    pub batch_size: u64,
    /// Ingestion batches (paper: 10).
    pub batches: u64,
    /// Pause between ingestion batches, stretching the ingestion across
    /// the consolidation window as in Figure 6.
    pub batch_pause: Duration,
    /// How long the analytical transaction of hybrid B stays open.
    pub analytic_hold: Duration,
    /// Warm-up before the migration plan starts.
    pub warmup: Duration,
    /// Cool-down after everything finishes.
    pub cooldown: Duration,
    /// TPC-C warehouses (paper: 480).
    pub warehouses: u32,
    /// TPC-C clients (paper: one per warehouse).
    pub tpcc_clients: usize,
    /// Simulated per-tuple snapshot-copy cost. The paper's shards are
    /// hundreds of MB and take seconds to copy over a 10 Gbps link; the
    /// pacing keeps each migration's phases wide enough to observe.
    pub copy_per_tuple: Duration,
    /// Worker threads of the open-loop engine (bounded pool multiplexing
    /// the logical clients).
    pub workers: usize,
    /// Mean gap between one logical client's intended arrivals under the
    /// open-loop engine (Poisson pacing): offered load ≈ `clients /
    /// arrival_mean`.
    pub arrival_mean: Duration,
    /// Bound of each engine worker's arrival queue.
    pub queue_bound: usize,
}

impl Scale {
    /// Smoke-test scale: seconds per scenario.
    pub fn quick() -> Scale {
        Scale {
            nodes: 6,
            ycsb_shards: 36,
            ycsb_keys: 6_000,
            value_len: 32,
            clients: 6,
            think: Duration::from_micros(800),
            consolidation_group: 2,
            batch_size: 15_000,
            batches: 4,
            batch_pause: Duration::from_millis(150),
            analytic_hold: Duration::from_secs(2),
            warmup: Duration::from_secs(2),
            cooldown: Duration::from_secs(2),
            warehouses: 12,
            tpcc_clients: 6,
            copy_per_tuple: Duration::from_micros(400),
            workers: 4,
            arrival_mean: Duration::from_millis(5),
            queue_bound: 64,
        }
    }

    /// Default scale: tens of seconds per engine per scenario.
    pub fn default_scale() -> Scale {
        Scale {
            nodes: 6,
            ycsb_shards: 120,
            ycsb_keys: 24_000,
            value_len: 64,
            clients: 10,
            think: Duration::from_micros(700),
            consolidation_group: 2,
            batch_size: 80_000,
            batches: 8,
            batch_pause: Duration::from_millis(250),
            analytic_hold: Duration::from_secs(4),
            warmup: Duration::from_secs(3),
            cooldown: Duration::from_secs(3),
            warehouses: 24,
            tpcc_clients: 10,
            copy_per_tuple: Duration::from_micros(800),
            workers: 4,
            arrival_mean: Duration::from_millis(5),
            queue_bound: 64,
        }
    }

    /// Closest to the paper's dimensions that a laptop tolerates.
    pub fn full() -> Scale {
        Scale {
            nodes: 6,
            ycsb_shards: 360,
            ycsb_keys: 100_000,
            value_len: 128,
            clients: 16,
            think: Duration::from_micros(600),
            consolidation_group: 2,
            batch_size: 150_000,
            batches: 10,
            batch_pause: Duration::from_millis(500),
            analytic_hold: Duration::from_secs(8),
            warmup: Duration::from_secs(5),
            cooldown: Duration::from_secs(5),
            warehouses: 48,
            tpcc_clients: 16,
            copy_per_tuple: Duration::from_micros(1000),
            workers: 6,
            arrival_mean: Duration::from_millis(4),
            queue_bound: 64,
        }
    }

    /// The paper-class preset: ≥10 M tuples and ≥200 logical clients,
    /// sized for the open-loop engine (a bounded worker pool, not a thread
    /// per client). Bulk load is non-transactional and values are small,
    /// so the memory bill is the version chains, not the payloads; the
    /// offered load (`clients / arrival_mean` ≈ 2 k txn/s) is what a
    /// single-core host sustains while a live migration runs.
    pub fn paper() -> Scale {
        Scale {
            nodes: 6,
            ycsb_shards: 600,
            ycsb_keys: 10_000_000,
            value_len: 16,
            clients: 240,
            think: Duration::from_micros(600),
            consolidation_group: 24,
            batch_size: 200_000,
            batches: 10,
            batch_pause: Duration::from_millis(500),
            analytic_hold: Duration::from_secs(8),
            warmup: Duration::from_secs(2),
            cooldown: Duration::from_secs(2),
            warehouses: 48,
            tpcc_clients: 16,
            // Copy pacing off: at this size the real copy work *is* the
            // pacing.
            copy_per_tuple: Duration::ZERO,
            workers: 8,
            arrival_mean: Duration::from_millis(120),
            queue_bound: 64,
        }
    }

    /// The preset named `name` (`quick` / `default` / `full` / `paper`).
    pub fn by_name(name: &str) -> Option<Scale> {
        match name {
            "quick" => Some(Scale::quick()),
            "default" => Some(Scale::default_scale()),
            "full" => Some(Scale::full()),
            "paper" => Some(Scale::paper()),
            _ => None,
        }
    }

    /// Reads `REMUS_SCALE` (`quick` / `default` / `full` / `paper`).
    pub fn from_env() -> Scale {
        std::env::var("REMUS_SCALE")
            .ok()
            .and_then(|n| Scale::by_name(&n))
            .unwrap_or_else(Scale::default_scale)
    }

    /// The preset from the `--scale <name>` process argument, falling back
    /// to `REMUS_SCALE`, then to the default. An unknown `--scale` name
    /// aborts with the list of valid presets rather than silently running
    /// the wrong size.
    pub fn from_args_or_env() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let named = args.iter().position(|a| a == "--scale").map(|i| {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| "<missing>".to_string())
        });
        match named {
            Some(name) => Scale::by_name(&name).unwrap_or_else(|| {
                eprintln!("unknown --scale '{name}' (quick / default / full / paper)");
                std::process::exit(2);
            }),
            None => Scale::from_env(),
        }
    }

    /// YCSB shards initially owned by each node.
    pub fn shards_per_node(&self) -> u32 {
        self.ycsb_shards / self.nodes as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_keep_the_papers_structure() {
        for scale in [
            Scale::quick(),
            Scale::default_scale(),
            Scale::full(),
            Scale::paper(),
        ] {
            assert_eq!(scale.nodes, 6, "the paper's cluster has six nodes");
            assert_eq!(
                scale.ycsb_shards % scale.nodes as u32,
                0,
                "shards divide evenly across nodes"
            );
            assert!(scale.shards_per_node() >= 2 * scale.consolidation_group as u32);
            assert!(scale.batches > 0 && scale.batch_size > 0);
        }
    }

    #[test]
    fn scales_order_by_size() {
        let (q, d, f) = (Scale::quick(), Scale::default_scale(), Scale::full());
        assert!(q.ycsb_keys < d.ycsb_keys && d.ycsb_keys < f.ycsb_keys);
        assert!(q.ycsb_shards < d.ycsb_shards && d.ycsb_shards < f.ycsb_shards);
        assert!(q.batch_size < d.batch_size && d.batch_size < f.batch_size);
    }

    #[test]
    fn paper_preset_meets_the_scale_gate_floor() {
        let p = Scale::paper();
        assert!(
            p.ycsb_keys >= 10_000_000,
            "the scale gate promises ≥10M keys"
        );
        assert!(p.clients >= 200, "≥200 logical clients");
        assert!(
            p.workers < p.clients,
            "paper scale multiplexes clients over a bounded pool"
        );
        assert!(p.queue_bound > 0);
        assert!(!p.arrival_mean.is_zero());
    }

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(Scale::by_name("quick").unwrap().ycsb_keys, 6_000);
        assert_eq!(Scale::by_name("default").unwrap().ycsb_shards, 120);
        assert_eq!(Scale::by_name("full").unwrap().ycsb_shards, 360);
        assert_eq!(Scale::by_name("paper").unwrap().ycsb_keys, 10_000_000);
        assert!(Scale::by_name("warp").is_none());
    }

    #[test]
    fn env_fallback_is_default() {
        // (No REMUS_SCALE manipulation here — tests run in parallel; just
        // exercise the constructor paths.)
        let s = Scale::default_scale();
        assert_eq!(s.ycsb_shards, 120);
    }
}
