//! Benchmark scale presets.
//!
//! The paper runs on six 64-vCPU servers with 100 M tuples and 400–480
//! clients; the simulation runs wherever `cargo` does. Three presets trade
//! fidelity for wall time; all keep the paper's *structure* (six nodes,
//! shards per node, migrations per scenario, transaction mixes) and shrink
//! only the constants.

use std::time::Duration;

/// Dimensions for the scenario runners.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Nodes in the cluster (paper: 6).
    pub nodes: usize,
    /// YCSB shards in total (paper: 360; must be divisible by `nodes`).
    pub ycsb_shards: u32,
    /// YCSB tuples (paper: 100 M).
    pub ycsb_keys: u64,
    /// YCSB value bytes (paper: ~1 KB).
    pub value_len: usize,
    /// Closed-loop YCSB clients (paper: 400).
    pub clients: usize,
    /// Client think time (stands in for the paper's client-server round
    /// trips; see `Driver::start_with_think`).
    pub think: Duration,
    /// Shards migrated together during consolidation (paper fig. 6: 2).
    pub consolidation_group: usize,
    /// Tuples per ingestion batch (paper: 1 M).
    pub batch_size: u64,
    /// Ingestion batches (paper: 10).
    pub batches: u64,
    /// Pause between ingestion batches, stretching the ingestion across
    /// the consolidation window as in Figure 6.
    pub batch_pause: Duration,
    /// How long the analytical transaction of hybrid B stays open.
    pub analytic_hold: Duration,
    /// Warm-up before the migration plan starts.
    pub warmup: Duration,
    /// Cool-down after everything finishes.
    pub cooldown: Duration,
    /// TPC-C warehouses (paper: 480).
    pub warehouses: u32,
    /// TPC-C clients (paper: one per warehouse).
    pub tpcc_clients: usize,
    /// Simulated per-tuple snapshot-copy cost. The paper's shards are
    /// hundreds of MB and take seconds to copy over a 10 Gbps link; the
    /// pacing keeps each migration's phases wide enough to observe.
    pub copy_per_tuple: Duration,
}

impl Scale {
    /// Smoke-test scale: seconds per scenario.
    pub fn quick() -> Scale {
        Scale {
            nodes: 6,
            ycsb_shards: 36,
            ycsb_keys: 6_000,
            value_len: 32,
            clients: 6,
            think: Duration::from_micros(800),
            consolidation_group: 2,
            batch_size: 15_000,
            batches: 4,
            batch_pause: Duration::from_millis(150),
            analytic_hold: Duration::from_secs(2),
            warmup: Duration::from_secs(2),
            cooldown: Duration::from_secs(2),
            warehouses: 12,
            tpcc_clients: 6,
            copy_per_tuple: Duration::from_micros(400),
        }
    }

    /// Default scale: tens of seconds per engine per scenario.
    pub fn default_scale() -> Scale {
        Scale {
            nodes: 6,
            ycsb_shards: 120,
            ycsb_keys: 24_000,
            value_len: 64,
            clients: 10,
            think: Duration::from_micros(700),
            consolidation_group: 2,
            batch_size: 80_000,
            batches: 8,
            batch_pause: Duration::from_millis(250),
            analytic_hold: Duration::from_secs(4),
            warmup: Duration::from_secs(3),
            cooldown: Duration::from_secs(3),
            warehouses: 24,
            tpcc_clients: 10,
            copy_per_tuple: Duration::from_micros(800),
        }
    }

    /// Closest to the paper's dimensions that a laptop tolerates.
    pub fn full() -> Scale {
        Scale {
            nodes: 6,
            ycsb_shards: 360,
            ycsb_keys: 100_000,
            value_len: 128,
            clients: 16,
            think: Duration::from_micros(600),
            consolidation_group: 2,
            batch_size: 150_000,
            batches: 10,
            batch_pause: Duration::from_millis(500),
            analytic_hold: Duration::from_secs(8),
            warmup: Duration::from_secs(5),
            cooldown: Duration::from_secs(5),
            warehouses: 48,
            tpcc_clients: 16,
            copy_per_tuple: Duration::from_micros(1000),
        }
    }

    /// Reads `REMUS_SCALE` (`quick` / `default` / `full`).
    pub fn from_env() -> Scale {
        match std::env::var("REMUS_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            Ok("full") => Scale::full(),
            _ => Scale::default_scale(),
        }
    }

    /// YCSB shards initially owned by each node.
    pub fn shards_per_node(&self) -> u32 {
        self.ycsb_shards / self.nodes as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_keep_the_papers_structure() {
        for scale in [Scale::quick(), Scale::default_scale(), Scale::full()] {
            assert_eq!(scale.nodes, 6, "the paper's cluster has six nodes");
            assert_eq!(
                scale.ycsb_shards % scale.nodes as u32,
                0,
                "shards divide evenly across nodes"
            );
            assert!(scale.shards_per_node() >= 2 * scale.consolidation_group as u32);
            assert!(scale.batches > 0 && scale.batch_size > 0);
        }
    }

    #[test]
    fn scales_order_by_size() {
        let (q, d, f) = (Scale::quick(), Scale::default_scale(), Scale::full());
        assert!(q.ycsb_keys < d.ycsb_keys && d.ycsb_keys < f.ycsb_keys);
        assert!(q.ycsb_shards < d.ycsb_shards && d.ycsb_shards < f.ycsb_shards);
        assert!(q.batch_size < d.batch_size && d.batch_size < f.batch_size);
    }

    #[test]
    fn env_fallback_is_default() {
        // (No REMUS_SCALE manipulation here — tests run in parallel; just
        // exercise the constructor paths.)
        let s = Scale::default_scale();
        assert_eq!(s.ycsb_shards, 120);
    }
}
