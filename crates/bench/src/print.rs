//! Plain-text output helpers: the binaries print the same rows/series the
//! paper's figures and tables report.

use crate::harness::ScenarioResult;

/// Prints a per-second series as `t <tab> value` rows.
pub fn print_series(label: &str, values: &[f64]) {
    println!("# series: {label}");
    println!("t_s\t{label}");
    for (t, v) in values.iter().enumerate() {
        println!("{t}\t{v:.0}");
    }
}

/// Prints overlay events (`name @ seconds`).
pub fn print_events(events: &[(String, f64)]) {
    println!("# events");
    for (name, t) in events {
        println!("event\t{name}\t{t:.2}");
    }
}

/// Prints a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", headers.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// Prints the standard block for one scenario run: series, events, and the
/// abort/latency summary the paper's text quotes.
pub fn print_scenario(result: &ScenarioResult) {
    println!("## engine: {}", result.engine);
    print_series(&format!("{}_tps", result.engine), &result.tps);
    print_events(&result.events);
    println!(
        "summary\tcommits={}\tmigration_aborts={}\tww_aborts={}\tother_aborts={}",
        result.commits, result.migration_aborts, result.ww_aborts, result.other_aborts
    );
    println!(
        "summary\tbase_latency_ms={:.3}\tlatency_increase_ms={:.3}",
        result.base_latency.as_secs_f64() * 1e3,
        result.latency_increase.as_secs_f64() * 1e3
    );
    println!(
        "summary\tmigration_total_s={:.2}\ttuples_copied={}\trecords_replayed={}\tforced_aborts={}\tvalidation_conflicts={}\tdowntime_ms={:.1}\tpulls={}",
        result.migration.total.as_secs_f64(),
        result.migration.tuples_copied,
        result.migration.records_replayed,
        result.migration.forced_aborts,
        result.migration.validation_conflicts,
        result.migration.downtime.as_secs_f64() * 1e3,
        result.migration.pulls,
    );
    if let Some(batch) = &result.batch {
        println!(
            "batch\tcommitted={}\taborted_attempts={}\tabort_ratio={:.2}\ttuples_per_s_before={:.0}\ttuples_per_s_during={:.0}",
            batch.committed,
            batch.aborted_attempts,
            batch.abort_ratio,
            result.batch_tps_before,
            result.batch_tps_during,
        );
    }
    if let Some(ok) = result.consistency_ok {
        println!("consistency_check\t{}", if ok { "PASS" } else { "FAIL" });
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printing_does_not_panic() {
        print_series("x", &[1.0, 2.0]);
        print_events(&[("a".into(), 1.5)]);
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        print_scenario(&ScenarioResult::default());
    }
}
