//! Elasticity-autopilot benchmark: hotspot shift under three policies.
//!
//! One client session drives the [`HotspotShift`] workload — Zipfian
//! traffic over a two-shard hot pair whose every transaction writes both
//! shards — against a two-node cluster with a simulated network delay.
//! The phase-0 pair is co-located on node 0, so commits take the local
//! fast path; after `SHIFT_AFTER` transactions the hot pair jumps to a
//! *split* pair (one shard per node) and every commit suddenly pays
//! cross-node 2PC hops. The same shift runs under three policies:
//!
//! * **autopilot** — a [`remus_planner::Autopilot`] watches the live
//!   affinity signal and reunites the new pair (the b-side shard moves,
//!   it carries only writes and is the cheaper side), restoring local
//!   commits.
//! * **static-plan** — the capacity plan computed *before* the shift: it
//!   migrates yesterday's hot shard, which is a correct plan for a world
//!   that no longer exists and does nothing for the new pair.
//! * **no-migration** — the cluster is left alone.
//!
//! Each leg measures three windows: `pre` (phase 0), `react` (post-shift
//! until the pair is co-resident again, capped), and `steady` (fixed
//! commits after reaction). The headline numbers are **recovery** —
//! steady/pre throughput within the autopilot leg, expected back near
//! 1.0x — and the autopilot's steady-state advantage over no-migration.
//! Below [`MIN_RECOVERY`] the binary warns (shared runners compress
//! ratios); below [`RECOVERY_FLOOR`], or if the autopilot fails to beat
//! the do-nothing leg by [`ADVANTAGE_FLOOR`], it fails: the closed loop
//! itself is broken, not the runner. `bench_check` applies the same
//! two-tier policy to the emitted `remus-bench/v1` report.
//!
//! A second scenario, `--scenario read-skew`, benchmarks the other half
//! of the replicate-or-migrate decision core: a read-hot shard under a
//! continuous writer, where the adaptive planner answers with a
//! WAL-shipped replica (reads offload to the apply watermark, skipping
//! the shared oracle and the contended primary storage) while a
//! forced-migrate leg — the same planner with replication disabled — can
//! only shuffle the shard between primaries. The headline number is the
//! **edge**: the replicate leg's read recovery (steady/pre read
//! throughput) over the forced-migrate leg's, expected above
//! [`MIN_RS_EDGE`] with a hard floor at [`RS_EDGE_FLOOR`].
//!
//! Usage: `cargo run --release -p remus-bench --bin bench_planner --
//! [--scenario hotspot|read-skew] --json BENCH_planner.json`

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use remus_bench::{
    json_path_arg, spawn_fleet, BenchReport, EngineKind, FleetSpec, ScenarioReport, TableSection,
};
use remus_clock::OracleKind;
use remus_cluster::{Cluster, ClusterBuilder, ReadRouter, Session};
use remus_common::metrics::{LatencyStat, Timeline};
use remus_common::{ClientId, HotPathConfig, NodeId, PlannerConfig, ShardId, SimConfig, TableId};
use remus_core::MigrationTask;
use remus_planner::{Autopilot, AutopilotOptions};
use remus_shard::TableLayout;
use remus_storage::Value;
use remus_workload::{HotspotShift, Workload, Ycsb, YcsbConfig};

/// Keys in the YCSB table (4 shards, ~256 keys each).
const KEYS: u64 = 1024;
/// Hot keys per shard in the shift workload.
const HOT_KEYS: usize = 16;
/// Zipfian skew over the hot ranks.
const THETA: f64 = 0.9;
/// Phase-0 transactions before the hot pair jumps.
const SHIFT_AFTER: u64 = 6000;
/// Unmeasured phase-0 transactions before the `pre` window starts
/// (process and allocator warm-up).
const WARMUP_TXNS: u64 = 2000;
/// Cap on post-shift commits in the reaction window (the autopilot leg
/// normally exits early, as soon as the pair is co-resident again).
const REACT_MAX: u64 = 1500;
/// Unmeasured commits between reaction and the steady window: refills the
/// session's shard-map cache and drains migration residue so `steady`
/// measures the new routing, not the transition.
const DRAIN_TXNS: u64 = 300;
/// Commits in the steady-state window the gates compare.
const STEADY_TXNS: u64 = 2000;
/// One-way cross-node latency: what makes a split hot pair expensive.
const NET_LATENCY: Duration = Duration::from_micros(100);
/// RNG seed shared by all legs (same key sequence per leg).
const SEED: u64 = 7;

/// Phase-0 hot pair, co-located on node 0 at setup.
const PAIR0: (ShardId, ShardId) = (ShardId(0), ShardId(1));
/// Phase-1 hot pair, split across the nodes at setup.
const PAIR1: (ShardId, ShardId) = (ShardId(2), ShardId(3));

/// Expected autopilot recovery (steady/pre throughput); warn below.
const MIN_RECOVERY: f64 = 0.70;
/// Hard floor for recovery: below this the reunited pair is still paying
/// remote commits — the autopilot moved the wrong thing or nothing.
const RECOVERY_FLOOR: f64 = 0.40;
/// Expected autopilot-over-no-migration steady throughput; warn below.
const MIN_ADVANTAGE: f64 = 1.5;
/// Hard floor: the autopilot must strictly beat leaving the cluster
/// alone, or the closed loop is pointless.
const ADVANTAGE_FLOOR: f64 = 1.1;

/// Nodes in the read-skew scenario: one loaded primary plus two spares
/// the planner can either replicate onto or migrate to.
const RS_NODES: usize = 3;
/// Shards in the read-skew table, all placed on node 0 at setup.
const RS_SHARDS: u32 = 4;
/// Keys in the read-skew table.
const RS_KEYS: u64 = 1024;
/// Closed-loop read-only router clients in the read-skew scenario.
const RS_READERS: usize = 4;
/// Point reads per read-only transaction.
const RS_READS_PER_TXN: usize = 8;
/// The read-hot (and write-hot) shard: wherever a migration puts it, the
/// writer's updates follow, so only a replica separates the readers from
/// the writer.
const RS_HOT_SHARD: ShardId = ShardId(0);
/// Unmeasured transactions per reader before the pre window.
const RS_WARMUP_TXNS: u64 = 500;
/// Measured transactions per reader in the degraded pre window.
const RS_PRE_TXNS: u64 = 3_000;
/// Unmeasured transactions per reader after the planner has acted:
/// refills router endpoints and drains migration/backfill residue.
const RS_DRAIN_TXNS: u64 = 500;
/// Measured transactions per reader in the steady window.
const RS_STEADY_TXNS: u64 = 5_000;
/// How long the main thread waits for the planner's answer (replica
/// certified, or the primaries rebalanced) before measuring anyway.
const RS_REACT_TIMEOUT: Duration = Duration::from_secs(30);

/// Expected replicate-leg read recovery (steady/pre); warn below. The
/// offloaded steady window sheds the oracle round-trip and the
/// writer-contended primary storage, so it should be no slower than the
/// degraded pre window.
const MIN_RS_RECOVERY: f64 = 1.0;
/// Hard floor for the replicate-leg read recovery.
const RS_RECOVERY_FLOOR: f64 = 0.6;
/// Expected replicate-over-migrate recovery edge; warn below.
const MIN_RS_EDGE: f64 = 1.2;
/// Hard floor for the edge: replication must strictly beat shuffling the
/// read-hot shard between primaries, or Replicate is dead weight in the
/// decision core.
const RS_EDGE_FLOOR: f64 = 1.02;

/// Which policy a leg runs.
enum Policy {
    Autopilot,
    StaticPlan,
    NoMigration,
}

impl Policy {
    fn label(&self) -> &'static str {
        match self {
            Policy::Autopilot => "autopilot",
            Policy::StaticPlan => "static-plan",
            Policy::NoMigration => "no-migration",
        }
    }
}

struct LegResult {
    pre_tps: f64,
    react_tps: f64,
    steady_tps: f64,
    moves: u64,
    aborts: u64,
    scenario: remus_bench::ScenarioResult,
}

/// Whether some node hosts both shards of the phase-1 pair.
fn pair1_colocated(cluster: &Cluster) -> bool {
    cluster.nodes().iter().any(|n| {
        let shards = n.data_shards();
        shards.contains(&PAIR1.0) && shards.contains(&PAIR1.1)
    })
}

/// Planner tuned for the scenario: pure co-location (the balancer is
/// disabled and cost weights are zero so the decision replays exactly),
/// reacting within a few 5 ms windows of the shift.
fn pilot_config() -> PlannerConfig {
    let mut config = PlannerConfig::balanced();
    config.imbalance_ratio = f64::INFINITY;
    config.cost_weight_versions = 0.0;
    config.cost_weight_wal = 0.0;
    config.colocation_min_cross = 4;
    config.seed = SEED;
    config
}

fn run_leg(policy: Policy) -> LegResult {
    let mut config = SimConfig::instant();
    config.network_latency = NET_LATENCY;
    config.hot_path = HotPathConfig::tuned();
    let cluster = ClusterBuilder::new(2)
        .cc_mode(EngineKind::Remus.cc_mode())
        .oracle(OracleKind::Gts)
        .config(config)
        .build();
    // Version-chain GC (the tuned hot path's cadence) keeps the Zipfian
    // hot keys' chains short, so the pre and steady windows measure
    // routing cost, not accumulated history.
    cluster.start_maintenance(Duration::from_secs(3600));
    // Shards 0-2 on node 0, shard 3 on node 1: PAIR0 co-located with the
    // client, PAIR1 split across the wire.
    let ycsb = Ycsb::setup_with_placement(
        &cluster,
        YcsbConfig {
            keys: KEYS,
            shards: 4,
            table: TableId(1),
            ..YcsbConfig::default()
        },
        |i| NodeId(u32::from(i == 3)),
    );
    let shift = HotspotShift::new(&ycsb, PAIR0, PAIR1, HOT_KEYS, THETA, SHIFT_AFTER);

    let pilot = match policy {
        Policy::Autopilot => Some(Autopilot::start(
            Arc::clone(&cluster),
            pilot_config(),
            AutopilotOptions {
                tick_interval: Duration::from_millis(5),
                latency: None,
            },
        )),
        _ => None,
    };

    let session = Session::connect(&cluster, NodeId(0));
    let mut rng = SmallRng::seed_from_u64(SEED);
    let latency = Arc::new(LatencyStat::new());
    let timeline = Timeline::per_second();
    let mut aborts = 0u64;
    let mut commits = 0u64;
    let mut commit_one = |rng: &mut SmallRng| {
        let started = Instant::now();
        // Aborts (the hot pair mid-migration, write-write conflicts) are
        // retried like a real client; only commits count.
        while session
            .run(|t| shift.run_once(ClientId(0), t, rng))
            .is_err()
        {
            aborts += 1;
        }
        commits += 1;
        latency.record(started.elapsed());
        timeline.record();
    };

    // Warm-up, unmeasured (phase 0 traffic like the pre window's).
    while shift.executed() < WARMUP_TXNS {
        commit_one(&mut rng);
    }

    // Window 1: phase 0, hot pair local to the client.
    let t0 = Instant::now();
    let mut pre_commits = 0u64;
    while shift.phase() == 0 {
        commit_one(&mut rng);
        pre_commits += 1;
    }
    let pre_elapsed = t0.elapsed();

    // The stale plan fires exactly at the shift: migrate what *was* hot.
    if matches!(policy, Policy::StaticPlan) {
        let task = MigrationTask::single(PAIR0.0, NodeId(0), NodeId(1));
        EngineKind::Remus
            .engine()
            .migrate(&cluster, &task)
            .expect("static plan migration failed");
    }

    // Window 2: post-shift reaction — until the new pair is co-resident
    // again (autopilot) or the cap (the other legs never co-locate it).
    let t1 = Instant::now();
    let mut react_commits = 0u64;
    while react_commits < REACT_MAX && !pair1_colocated(&cluster) {
        commit_one(&mut rng);
        react_commits += 1;
    }
    let react_elapsed = t1.elapsed();

    // Post-transition drain, unmeasured.
    for _ in 0..DRAIN_TXNS {
        commit_one(&mut rng);
    }

    // Window 3: steady state, what the gates compare.
    let t2 = Instant::now();
    for _ in 0..STEADY_TXNS {
        commit_one(&mut rng);
    }
    let steady_elapsed = t2.elapsed();

    let moves = match pilot {
        Some(pilot) => pilot.stop().moves,
        None => u64::from(matches!(policy, Policy::StaticPlan)),
    };
    cluster.stop_maintenance();
    let pre_tps = pre_commits as f64 / pre_elapsed.as_secs_f64();
    let react_tps = react_commits as f64 / react_elapsed.as_secs_f64().max(1e-9);
    let steady_tps = STEADY_TXNS as f64 / steady_elapsed.as_secs_f64();
    println!(
        "{:<12}\tpre={pre_tps:.0}\treact={react_tps:.0}\tsteady={steady_tps:.0}\t\
         moves={moves}\taborts={aborts}",
        policy.label(),
    );
    let scenario = remus_bench::ScenarioResult {
        engine: EngineKind::Remus.name(),
        tps: timeline.rates_per_sec(),
        events: vec![("shift".to_string(), pre_elapsed.as_secs_f64())],
        commits,
        ww_aborts: aborts,
        base_latency: latency.mean(),
        counters: cluster.metrics_snapshot(),
        ..Default::default()
    };
    LegResult {
        pre_tps,
        react_tps,
        steady_tps,
        moves,
        aborts,
        scenario,
    }
}

fn recovery_row(leg: &LegResult, label: &str) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.0}", leg.pre_tps),
        format!("{:.0}", leg.react_tps),
        format!("{:.0}", leg.steady_tps),
        format!("{}", leg.moves),
        format!("{}", leg.aborts),
        format!("{:.2}x", leg.steady_tps / leg.pre_tps.max(1e-9)),
    ]
}

/// One read-skew leg.
struct SkewLegResult {
    pre_tps: f64,
    steady_tps: f64,
    replica_share: f64,
    actions: u64,
    scenario: remus_bench::ScenarioResult,
}

impl SkewLegResult {
    fn recovery(&self) -> f64 {
        self.steady_tps / self.pre_tps.max(1e-9)
    }
}

/// Planner for the read-skew legs: the adaptive replicate-or-migrate
/// core with cost weights zeroed (so the replicate-vs-balance pricing
/// reduces to the measured read benefit and replays across runs) and
/// co-location off (the workload has no cross-shard writes).
fn skew_config(replication: bool) -> PlannerConfig {
    let mut config = PlannerConfig::adaptive();
    config.replication = replication;
    config.cost_weight_versions = 0.0;
    config.cost_weight_wal = 0.0;
    config.cost_weight_ship = 0.0;
    config.colocation = false;
    config.seed = SEED;
    config
}

/// One closed-loop router reader: warmed up, then timed over the pre
/// window, parked while the planner reacts, then timed over the steady
/// window. Returns the two window durations and how many steady
/// transactions a replica served.
#[allow(clippy::too_many_arguments)]
fn skew_reader(
    cluster: &Arc<Cluster>,
    layout: TableLayout,
    hot_keys: &[u64],
    idx: usize,
    phase: &Barrier,
    acted: &AtomicBool,
    latency: &LatencyStat,
    timeline: &Timeline,
) -> (Duration, Duration, u64) {
    let mut rng = SmallRng::seed_from_u64(SEED.wrapping_mul(0x9e37_79b9).wrapping_add(idx as u64));
    let mut router = ReadRouter::new(cluster, NodeId(0), idx);
    let mut run_txn = |rng: &mut SmallRng| -> bool {
        let started = Instant::now();
        let mut txn = router.begin().expect("read begin");
        let replica = txn.is_replica();
        for _ in 0..RS_READS_PER_TXN {
            // 3 of 4 reads hit the hot shard's keys; the rest keep the
            // cold shards warm so the balancer sees their load too.
            let key = if rng.gen_range(0..4u32) != 0 {
                hot_keys[rng.gen_range(0..hot_keys.len())]
            } else {
                rng.gen_range(0..RS_KEYS)
            };
            txn.read(&layout, key).expect("read");
        }
        txn.finish().expect("read finish");
        latency.record(started.elapsed());
        timeline.record();
        replica
    };
    for _ in 0..RS_WARMUP_TXNS {
        run_txn(&mut rng);
    }
    phase.wait();
    let t0 = Instant::now();
    for _ in 0..RS_PRE_TXNS {
        run_txn(&mut rng);
    }
    let pre = t0.elapsed();
    phase.wait();
    // React: keep the load signal flowing while the planner decides and
    // executes; nothing here is measured.
    while !acted.load(Ordering::Relaxed) {
        run_txn(&mut rng);
    }
    for _ in 0..RS_DRAIN_TXNS {
        run_txn(&mut rng);
    }
    let mut replica_txns = 0u64;
    let t1 = Instant::now();
    for _ in 0..RS_STEADY_TXNS {
        if run_txn(&mut rng) {
            replica_txns += 1;
        }
    }
    (pre, t1.elapsed(), replica_txns)
}

/// Runs one read-skew leg: same cluster, workload, and windows; the two
/// legs differ only in whether the planner may answer with a replica.
fn run_skew_leg(replicate: bool) -> SkewLegResult {
    let mut config = SimConfig::instant();
    // Frequent version-chain GC keeps the hot keys' chains short;
    // `gts_lease` stays at the strict default of 1 so primary-side reads
    // pay the oracle round-trip the replica path gets to skip.
    config.hot_path.gc_interval = Duration::from_millis(5);
    let cluster = ClusterBuilder::new(RS_NODES)
        .cc_mode(EngineKind::Remus.cc_mode())
        .oracle(OracleKind::Gts)
        .config(config)
        .build();
    cluster.start_maintenance(Duration::from_secs(3600));
    // Every shard starts on node 0; nodes 1 and 2 are empty spares the
    // planner can replicate onto or migrate to.
    let layout = cluster.create_table(TableId(1), 0, RS_SHARDS, |_| NodeId(0));
    let seeder = Session::connect(&cluster, NodeId(0));
    for chunk in (0..RS_KEYS).collect::<Vec<_>>().chunks(64) {
        seeder
            .run(|t| {
                for &k in chunk {
                    t.insert(
                        &layout,
                        k,
                        Value::copy_from_slice(format!("v{k}").as_bytes()),
                    )?;
                }
                Ok(())
            })
            .expect("seeding failed");
    }
    let hot_keys: Vec<u64> = (0..RS_KEYS)
        .filter(|k| layout.shard_for(*k) == RS_HOT_SHARD)
        .collect();

    // Continuous writer on the hot shard for the whole leg: whatever the
    // planner does, the write stream follows the shard. One closed-loop
    // fleet client; migration-induced aborts are absorbed by the engine's
    // abort accounting and the next arrival retries.
    let writer = {
        let hot_keys = hot_keys.clone();
        let rounds = AtomicU64::new(0);
        spawn_fleet(
            &cluster,
            FleetSpec::closed_loop(1, Duration::ZERO),
            Arc::new(
                move |_c: remus_common::ClientId,
                      t: &mut remus_cluster::SessionTxn<'_>,
                      rng: &mut SmallRng| {
                    let key = hot_keys[rng.gen_range(0..hot_keys.len())];
                    let round = rounds.fetch_add(1, Ordering::Relaxed);
                    t.update(
                        &layout,
                        key,
                        Value::copy_from_slice(format!("w{round}").as_bytes()),
                    )?;
                    Ok(())
                },
            ),
        )
    };

    let latency = LatencyStat::new();
    let timeline = Timeline::per_second();
    let acted = AtomicBool::new(false);
    let replica_txns = AtomicU64::new(0);
    let phase = Barrier::new(RS_READERS + 1);
    let (pre_window, steady_window, pilot_report) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..RS_READERS)
            .map(|idx| {
                let (cluster, hot_keys, latency, timeline, phase, acted, replica_txns) = (
                    &cluster,
                    &hot_keys,
                    &latency,
                    &timeline,
                    &phase,
                    &acted,
                    &replica_txns,
                );
                scope.spawn(move || {
                    let (pre, steady, from_replica) = skew_reader(
                        cluster, layout, hot_keys, idx, phase, acted, latency, timeline,
                    );
                    replica_txns.fetch_add(from_replica, Ordering::Relaxed);
                    (pre, steady)
                })
            })
            .collect();
        phase.wait(); // warm-up done, pre window starts
        phase.wait(); // pre window done on every reader
        let pilot = Autopilot::start(
            Arc::clone(&cluster),
            skew_config(replicate),
            AutopilotOptions {
                tick_interval: Duration::from_millis(5),
                latency: None,
            },
        );
        // Wait for the leg's answer: a certified replica serving offloaded
        // reads, or the hot shard migrated off the loaded primary (the
        // balancer moves the highest-demand shard first, then typically
        // finds no further strictly-improving move). On timeout the steady
        // window measures whatever state the cluster is in and the gates
        // fail.
        let deadline = Instant::now() + RS_REACT_TIMEOUT;
        while Instant::now() < deadline {
            let done = if replicate {
                cluster.read_offload_enabled() && !cluster.replica_ids().is_empty()
            } else {
                !cluster
                    .node(NodeId(0))
                    .data_shards()
                    .contains(&RS_HOT_SHARD)
            };
            if done {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        acted.store(true, Ordering::Relaxed);
        let windows: Vec<(Duration, Duration)> = handles
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .collect();
        let pre = windows.iter().map(|(p, _)| *p).max().unwrap_or_default();
        let steady = windows.iter().map(|(_, s)| *s).max().unwrap_or_default();
        (pre, steady, pilot.stop())
    });
    let commits = writer.stop().metrics.counters.commits();
    let counters = cluster.metrics_snapshot();
    cluster.stop_maintenance();

    let reads_per_window = |txns: u64| (RS_READERS as u64 * txns * RS_READS_PER_TXN as u64) as f64;
    let pre_tps = reads_per_window(RS_PRE_TXNS) / pre_window.as_secs_f64().max(1e-9);
    let steady_tps = reads_per_window(RS_STEADY_TXNS) / steady_window.as_secs_f64().max(1e-9);
    let replica_share =
        replica_txns.load(Ordering::Relaxed) as f64 / (RS_READERS as u64 * RS_STEADY_TXNS) as f64;
    let actions = pilot_report.moves
        + pilot_report.replicas_provisioned
        + pilot_report.replicas_decommissioned;
    let label = if replicate {
        "replicate"
    } else {
        "forced-migrate"
    };
    println!(
        "{label:<14}\tpre_reads/s={pre_tps:.0}\tsteady_reads/s={steady_tps:.0}\t\
         replica_share={replica_share:.2}\tactions={actions}\twriter_commits={commits}",
    );
    if replicate {
        assert!(
            pilot_report.replicas_provisioned >= 1,
            "the adaptive planner never provisioned a replica"
        );
        assert!(
            replica_share > 0.5,
            "steady reads were not replica-served (share {replica_share:.2})"
        );
    } else {
        assert!(
            pilot_report.moves >= 1,
            "the forced-migrate planner never migrated anything"
        );
        assert_eq!(
            pilot_report.replicas_provisioned, 0,
            "the forced-migrate leg provisioned a replica"
        );
    }
    let scenario = remus_bench::ScenarioResult {
        engine: EngineKind::Remus.name(),
        tps: timeline.rates_per_sec(),
        commits: RS_READERS as u64 * (RS_PRE_TXNS + RS_STEADY_TXNS),
        base_latency: latency.mean(),
        counters,
        ..Default::default()
    };
    SkewLegResult {
        pre_tps,
        steady_tps,
        replica_share,
        actions,
        scenario,
    }
}

fn skew_row(leg: &SkewLegResult, label: &str) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.0}", leg.pre_tps),
        format!("{:.0}", leg.steady_tps),
        format!("{:.2}", leg.replica_share),
        format!("{}", leg.actions),
        format!("{:.2}x", leg.recovery()),
    ]
}

/// The read-skew scenario: replicate leg vs forced-migrate leg, gated on
/// the replicate leg's absolute recovery and on the edge between them.
fn run_read_skew(path: &Path) {
    println!(
        "# bench_planner — read-skewed hotspot, {RS_READERS} router readers \
         x {RS_READS_PER_TXN} reads, continuous hot-shard writer"
    );
    let replicate = run_skew_leg(true);
    let migrate = run_skew_leg(false);
    let edge = replicate.recovery() / migrate.recovery().max(1e-9);
    println!(
        "replicate recovery: {:.2}x (expected >= {MIN_RS_RECOVERY}x, floor \
         {RS_RECOVERY_FLOOR}x); edge over forced-migrate: {edge:.2}x \
         (expected >= {MIN_RS_EDGE}x, floor {RS_EDGE_FLOOR}x)",
        replicate.recovery(),
    );

    let mut report = BenchReport::new("bench_planner", "read-skew");
    for (name, leg) in [
        ("readskew-replicate", &replicate),
        ("readskew-migrate", &migrate),
    ] {
        report
            .scenarios
            .push(ScenarioReport::from_result(name, &leg.scenario));
    }
    report.tables.push(TableSection {
        title: "replicate recovery".to_string(),
        headers: [
            "policy",
            "pre_read_tps",
            "steady_read_tps",
            "replica_share",
            "actions",
            "recovery",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows: vec![
            skew_row(&replicate, "replicate"),
            skew_row(&migrate, "forced-migrate"),
        ],
    });
    report.write(path).expect("writing JSON report failed");

    if replicate.recovery() < MIN_RS_RECOVERY {
        eprintln!(
            "WARN: replicate recovery {:.2}x below the expected \
             {MIN_RS_RECOVERY}x (tolerated as runner noise; hard floor \
             {RS_RECOVERY_FLOOR}x)",
            replicate.recovery(),
        );
    }
    assert!(
        replicate.recovery() >= RS_RECOVERY_FLOOR,
        "replicate steady read throughput {:.0}/s is only {:.2}x the pre \
         window's {:.0}/s (hard floor {RS_RECOVERY_FLOOR}x)",
        replicate.steady_tps,
        replicate.recovery(),
        replicate.pre_tps,
    );
    if edge < MIN_RS_EDGE {
        eprintln!(
            "WARN: replicate-over-migrate edge {edge:.2}x below the expected \
             {MIN_RS_EDGE}x (tolerated as runner noise; hard floor \
             {RS_EDGE_FLOOR}x)"
        );
    }
    assert!(
        edge >= RS_EDGE_FLOOR,
        "replicate recovery {:.2}x does not beat the forced-migrate leg's \
         {:.2}x (edge {edge:.2}x, hard floor {RS_EDGE_FLOOR}x)",
        replicate.recovery(),
        migrate.recovery(),
    );
}

/// Scans the process arguments for `--scenario <name>` (default
/// `hotspot`).
fn scenario_arg() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "hotspot".to_string())
}

fn main() {
    let scenario = scenario_arg();
    let default_path = match scenario.as_str() {
        "read-skew" => "BENCH_planner_readskew.json",
        _ => "BENCH_planner.json",
    };
    let path = json_path_arg().unwrap_or_else(|| PathBuf::from(default_path));
    match scenario.as_str() {
        "hotspot" => run_hotspot(&path),
        "read-skew" => run_read_skew(&path),
        other => panic!("unknown --scenario {other:?} (expected hotspot or read-skew)"),
    }
}

/// The original hotspot-shift scenario: autopilot vs static plan vs
/// doing nothing, gated on recovery and advantage.
fn run_hotspot(path: &Path) {
    println!(
        "# bench_planner — hotspot shift after {SHIFT_AFTER} txns, \
         {NET_LATENCY:?} one-way network latency"
    );
    let auto = run_leg(Policy::Autopilot);
    let stat = run_leg(Policy::StaticPlan);
    let none = run_leg(Policy::NoMigration);

    let recovery = auto.steady_tps / auto.pre_tps.max(1e-9);
    let advantage = auto.steady_tps / none.steady_tps.max(1e-9);
    println!(
        "autopilot recovery: {recovery:.2}x of pre-shift (expected >= \
         {MIN_RECOVERY}x, floor {RECOVERY_FLOOR}x); advantage over \
         no-migration: {advantage:.2}x (floor {ADVANTAGE_FLOOR}x)"
    );

    let mut report = BenchReport::new("bench_planner", "hotspot-shift");
    for (name, leg) in [
        ("planner-autopilot", &auto),
        ("planner-static", &stat),
        ("planner-none", &none),
    ] {
        report
            .scenarios
            .push(ScenarioReport::from_result(name, &leg.scenario));
    }
    report.tables.push(TableSection {
        title: "planner recovery".to_string(),
        headers: [
            "policy",
            "pre_tps",
            "react_tps",
            "steady_tps",
            "moves",
            "aborts",
            "recovery",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows: vec![
            recovery_row(&auto, "autopilot"),
            recovery_row(&stat, "static-plan"),
            recovery_row(&none, "no-migration"),
        ],
    });
    report.write(path).expect("writing JSON report failed");

    assert!(auto.moves >= 1, "the autopilot never migrated anything");
    if recovery < MIN_RECOVERY {
        eprintln!(
            "WARN: autopilot recovery {recovery:.2}x below the expected \
             {MIN_RECOVERY}x (tolerated as runner noise; hard floor \
             {RECOVERY_FLOOR}x)"
        );
    }
    assert!(
        recovery >= RECOVERY_FLOOR,
        "autopilot steady throughput {:.0} txn/s is only {recovery:.2}x the \
         pre-shift {:.0} txn/s (hard floor {RECOVERY_FLOOR}x)",
        auto.steady_tps,
        auto.pre_tps,
    );
    if advantage < MIN_ADVANTAGE {
        eprintln!(
            "WARN: autopilot advantage {advantage:.2}x over no-migration \
             below the expected {MIN_ADVANTAGE}x (hard floor \
             {ADVANTAGE_FLOOR}x)"
        );
    }
    assert!(
        advantage >= ADVANTAGE_FLOOR,
        "autopilot steady throughput {:.0} txn/s does not beat the \
         no-migration leg's {:.0} txn/s (hard floor {ADVANTAGE_FLOOR}x)",
        auto.steady_tps,
        none.steady_tps,
    );
}
