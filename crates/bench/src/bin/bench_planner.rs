//! Elasticity-autopilot benchmark: hotspot shift under three policies.
//!
//! One client session drives the [`HotspotShift`] workload — Zipfian
//! traffic over a two-shard hot pair whose every transaction writes both
//! shards — against a two-node cluster with a simulated network delay.
//! The phase-0 pair is co-located on node 0, so commits take the local
//! fast path; after `SHIFT_AFTER` transactions the hot pair jumps to a
//! *split* pair (one shard per node) and every commit suddenly pays
//! cross-node 2PC hops. The same shift runs under three policies:
//!
//! * **autopilot** — a [`remus_planner::Autopilot`] watches the live
//!   affinity signal and reunites the new pair (the b-side shard moves,
//!   it carries only writes and is the cheaper side), restoring local
//!   commits.
//! * **static-plan** — the capacity plan computed *before* the shift: it
//!   migrates yesterday's hot shard, which is a correct plan for a world
//!   that no longer exists and does nothing for the new pair.
//! * **no-migration** — the cluster is left alone.
//!
//! Each leg measures three windows: `pre` (phase 0), `react` (post-shift
//! until the pair is co-resident again, capped), and `steady` (fixed
//! commits after reaction). The headline numbers are **recovery** —
//! steady/pre throughput within the autopilot leg, expected back near
//! 1.0x — and the autopilot's steady-state advantage over no-migration.
//! Below [`MIN_RECOVERY`] the binary warns (shared runners compress
//! ratios); below [`RECOVERY_FLOOR`], or if the autopilot fails to beat
//! the do-nothing leg by [`ADVANTAGE_FLOOR`], it fails: the closed loop
//! itself is broken, not the runner. `bench_check` applies the same
//! two-tier policy to the emitted `remus-bench/v1` report.
//!
//! Usage: `cargo run --release -p remus-bench --bin bench_planner --
//! --json BENCH_planner.json`

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remus_bench::{json_path_arg, BenchReport, EngineKind, ScenarioReport, TableSection};
use remus_clock::OracleKind;
use remus_cluster::{Cluster, ClusterBuilder, Session};
use remus_common::metrics::{LatencyStat, Timeline};
use remus_common::{ClientId, HotPathConfig, NodeId, PlannerConfig, ShardId, SimConfig, TableId};
use remus_core::MigrationTask;
use remus_planner::{Autopilot, AutopilotOptions};
use remus_workload::{HotspotShift, Workload, Ycsb, YcsbConfig};

/// Keys in the YCSB table (4 shards, ~256 keys each).
const KEYS: u64 = 1024;
/// Hot keys per shard in the shift workload.
const HOT_KEYS: usize = 16;
/// Zipfian skew over the hot ranks.
const THETA: f64 = 0.9;
/// Phase-0 transactions before the hot pair jumps.
const SHIFT_AFTER: u64 = 6000;
/// Unmeasured phase-0 transactions before the `pre` window starts
/// (process and allocator warm-up).
const WARMUP_TXNS: u64 = 2000;
/// Cap on post-shift commits in the reaction window (the autopilot leg
/// normally exits early, as soon as the pair is co-resident again).
const REACT_MAX: u64 = 1500;
/// Unmeasured commits between reaction and the steady window: refills the
/// session's shard-map cache and drains migration residue so `steady`
/// measures the new routing, not the transition.
const DRAIN_TXNS: u64 = 300;
/// Commits in the steady-state window the gates compare.
const STEADY_TXNS: u64 = 2000;
/// One-way cross-node latency: what makes a split hot pair expensive.
const NET_LATENCY: Duration = Duration::from_micros(100);
/// RNG seed shared by all legs (same key sequence per leg).
const SEED: u64 = 7;

/// Phase-0 hot pair, co-located on node 0 at setup.
const PAIR0: (ShardId, ShardId) = (ShardId(0), ShardId(1));
/// Phase-1 hot pair, split across the nodes at setup.
const PAIR1: (ShardId, ShardId) = (ShardId(2), ShardId(3));

/// Expected autopilot recovery (steady/pre throughput); warn below.
const MIN_RECOVERY: f64 = 0.70;
/// Hard floor for recovery: below this the reunited pair is still paying
/// remote commits — the autopilot moved the wrong thing or nothing.
const RECOVERY_FLOOR: f64 = 0.40;
/// Expected autopilot-over-no-migration steady throughput; warn below.
const MIN_ADVANTAGE: f64 = 1.5;
/// Hard floor: the autopilot must strictly beat leaving the cluster
/// alone, or the closed loop is pointless.
const ADVANTAGE_FLOOR: f64 = 1.1;

/// Which policy a leg runs.
enum Policy {
    Autopilot,
    StaticPlan,
    NoMigration,
}

impl Policy {
    fn label(&self) -> &'static str {
        match self {
            Policy::Autopilot => "autopilot",
            Policy::StaticPlan => "static-plan",
            Policy::NoMigration => "no-migration",
        }
    }
}

struct LegResult {
    pre_tps: f64,
    react_tps: f64,
    steady_tps: f64,
    moves: u64,
    aborts: u64,
    scenario: remus_bench::ScenarioResult,
}

/// Whether some node hosts both shards of the phase-1 pair.
fn pair1_colocated(cluster: &Cluster) -> bool {
    cluster.nodes().iter().any(|n| {
        let shards = n.data_shards();
        shards.contains(&PAIR1.0) && shards.contains(&PAIR1.1)
    })
}

/// Planner tuned for the scenario: pure co-location (the balancer is
/// disabled and cost weights are zero so the decision replays exactly),
/// reacting within a few 5 ms windows of the shift.
fn pilot_config() -> PlannerConfig {
    let mut config = PlannerConfig::balanced();
    config.imbalance_ratio = f64::INFINITY;
    config.cost_weight_versions = 0.0;
    config.cost_weight_wal = 0.0;
    config.colocation_min_cross = 4;
    config.seed = SEED;
    config
}

fn run_leg(policy: Policy) -> LegResult {
    let mut config = SimConfig::instant();
    config.network_latency = NET_LATENCY;
    config.hot_path = HotPathConfig::tuned();
    let cluster = ClusterBuilder::new(2)
        .cc_mode(EngineKind::Remus.cc_mode())
        .oracle(OracleKind::Gts)
        .config(config)
        .build();
    // Version-chain GC (the tuned hot path's cadence) keeps the Zipfian
    // hot keys' chains short, so the pre and steady windows measure
    // routing cost, not accumulated history.
    cluster.start_maintenance(Duration::from_secs(3600));
    // Shards 0-2 on node 0, shard 3 on node 1: PAIR0 co-located with the
    // client, PAIR1 split across the wire.
    let ycsb = Ycsb::setup_with_placement(
        &cluster,
        YcsbConfig {
            keys: KEYS,
            shards: 4,
            table: TableId(1),
            ..YcsbConfig::default()
        },
        |i| NodeId(u32::from(i == 3)),
    );
    let shift = HotspotShift::new(&ycsb, PAIR0, PAIR1, HOT_KEYS, THETA, SHIFT_AFTER);

    let pilot = match policy {
        Policy::Autopilot => Some(Autopilot::start(
            Arc::clone(&cluster),
            pilot_config(),
            AutopilotOptions {
                tick_interval: Duration::from_millis(5),
                latency: None,
            },
        )),
        _ => None,
    };

    let session = Session::connect(&cluster, NodeId(0));
    let mut rng = SmallRng::seed_from_u64(SEED);
    let latency = Arc::new(LatencyStat::new());
    let timeline = Timeline::per_second();
    let mut aborts = 0u64;
    let mut commits = 0u64;
    let mut commit_one = |rng: &mut SmallRng| {
        let started = Instant::now();
        // Aborts (the hot pair mid-migration, write-write conflicts) are
        // retried like a real client; only commits count.
        while session
            .run(|t| shift.run_once(ClientId(0), t, rng))
            .is_err()
        {
            aborts += 1;
        }
        commits += 1;
        latency.record(started.elapsed());
        timeline.record();
    };

    // Warm-up, unmeasured (phase 0 traffic like the pre window's).
    while shift.executed() < WARMUP_TXNS {
        commit_one(&mut rng);
    }

    // Window 1: phase 0, hot pair local to the client.
    let t0 = Instant::now();
    let mut pre_commits = 0u64;
    while shift.phase() == 0 {
        commit_one(&mut rng);
        pre_commits += 1;
    }
    let pre_elapsed = t0.elapsed();

    // The stale plan fires exactly at the shift: migrate what *was* hot.
    if matches!(policy, Policy::StaticPlan) {
        let task = MigrationTask::single(PAIR0.0, NodeId(0), NodeId(1));
        EngineKind::Remus
            .engine()
            .migrate(&cluster, &task)
            .expect("static plan migration failed");
    }

    // Window 2: post-shift reaction — until the new pair is co-resident
    // again (autopilot) or the cap (the other legs never co-locate it).
    let t1 = Instant::now();
    let mut react_commits = 0u64;
    while react_commits < REACT_MAX && !pair1_colocated(&cluster) {
        commit_one(&mut rng);
        react_commits += 1;
    }
    let react_elapsed = t1.elapsed();

    // Post-transition drain, unmeasured.
    for _ in 0..DRAIN_TXNS {
        commit_one(&mut rng);
    }

    // Window 3: steady state, what the gates compare.
    let t2 = Instant::now();
    for _ in 0..STEADY_TXNS {
        commit_one(&mut rng);
    }
    let steady_elapsed = t2.elapsed();

    let moves = match pilot {
        Some(pilot) => pilot.stop().moves,
        None => u64::from(matches!(policy, Policy::StaticPlan)),
    };
    cluster.stop_maintenance();
    let pre_tps = pre_commits as f64 / pre_elapsed.as_secs_f64();
    let react_tps = react_commits as f64 / react_elapsed.as_secs_f64().max(1e-9);
    let steady_tps = STEADY_TXNS as f64 / steady_elapsed.as_secs_f64();
    println!(
        "{:<12}\tpre={pre_tps:.0}\treact={react_tps:.0}\tsteady={steady_tps:.0}\t\
         moves={moves}\taborts={aborts}",
        policy.label(),
    );
    let scenario = remus_bench::ScenarioResult {
        engine: EngineKind::Remus.name(),
        tps: timeline.rates_per_sec(),
        events: vec![("shift".to_string(), pre_elapsed.as_secs_f64())],
        commits,
        ww_aborts: aborts,
        base_latency: latency.mean(),
        counters: cluster.metrics_snapshot(),
        ..Default::default()
    };
    LegResult {
        pre_tps,
        react_tps,
        steady_tps,
        moves,
        aborts,
        scenario,
    }
}

fn recovery_row(leg: &LegResult, label: &str) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.0}", leg.pre_tps),
        format!("{:.0}", leg.react_tps),
        format!("{:.0}", leg.steady_tps),
        format!("{}", leg.moves),
        format!("{}", leg.aborts),
        format!("{:.2}x", leg.steady_tps / leg.pre_tps.max(1e-9)),
    ]
}

fn main() {
    let path = json_path_arg().unwrap_or_else(|| PathBuf::from("BENCH_planner.json"));
    println!(
        "# bench_planner — hotspot shift after {SHIFT_AFTER} txns, \
         {NET_LATENCY:?} one-way network latency"
    );
    let auto = run_leg(Policy::Autopilot);
    let stat = run_leg(Policy::StaticPlan);
    let none = run_leg(Policy::NoMigration);

    let recovery = auto.steady_tps / auto.pre_tps.max(1e-9);
    let advantage = auto.steady_tps / none.steady_tps.max(1e-9);
    println!(
        "autopilot recovery: {recovery:.2}x of pre-shift (expected >= \
         {MIN_RECOVERY}x, floor {RECOVERY_FLOOR}x); advantage over \
         no-migration: {advantage:.2}x (floor {ADVANTAGE_FLOOR}x)"
    );

    let mut report = BenchReport::new("bench_planner", "hotspot-shift");
    for (name, leg) in [
        ("planner-autopilot", &auto),
        ("planner-static", &stat),
        ("planner-none", &none),
    ] {
        report
            .scenarios
            .push(ScenarioReport::from_result(name, &leg.scenario));
    }
    report.tables.push(TableSection {
        title: "planner recovery".to_string(),
        headers: [
            "policy",
            "pre_tps",
            "react_tps",
            "steady_tps",
            "moves",
            "aborts",
            "recovery",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows: vec![
            recovery_row(&auto, "autopilot"),
            recovery_row(&stat, "static-plan"),
            recovery_row(&none, "no-migration"),
        ],
    });
    report.write(&path).expect("writing JSON report failed");

    assert!(auto.moves >= 1, "the autopilot never migrated anything");
    if recovery < MIN_RECOVERY {
        eprintln!(
            "WARN: autopilot recovery {recovery:.2}x below the expected \
             {MIN_RECOVERY}x (tolerated as runner noise; hard floor \
             {RECOVERY_FLOOR}x)"
        );
    }
    assert!(
        recovery >= RECOVERY_FLOOR,
        "autopilot steady throughput {:.0} txn/s is only {recovery:.2}x the \
         pre-shift {:.0} txn/s (hard floor {RECOVERY_FLOOR}x)",
        auto.steady_tps,
        auto.pre_tps,
    );
    if advantage < MIN_ADVANTAGE {
        eprintln!(
            "WARN: autopilot advantage {advantage:.2}x over no-migration \
             below the expected {MIN_ADVANTAGE}x (hard floor \
             {ADVANTAGE_FLOOR}x)"
        );
    }
    assert!(
        advantage >= ADVANTAGE_FLOOR,
        "autopilot steady throughput {:.0} txn/s does not beat the \
         no-migration leg's {:.0} txn/s (hard floor {ADVANTAGE_FLOOR}x)",
        auto.steady_tps,
        none.steady_tps,
    );
}
