//! Open-loop scale gate: a live migration over the full YCSB table while
//! the open-loop engine offers a deterministic load from hundreds of
//! logical clients multiplexed onto a bounded worker pool.
//!
//! This is the scale cell of the perf trajectory. Under `--scale paper`
//! the table holds ≥10 M tuples and ≥240 logical clients ride eight
//! workers; the smaller presets keep the same shape for smoke runs. The
//! run:
//!
//! 1. bulk-loads the table (non-transactional frozen install, so loading
//!    10 M tuples is an in-memory fill, not 10 M commits),
//! 2. starts the open-loop engine with a seeded Poisson schedule
//!    (`clients / arrival_mean` offered txn/s — the offered load is a
//!    pure function of the seed, never of how fast the host executes),
//! 3. consolidates node 0 away — every shard it owns migrates to the
//!    other nodes in `consolidation_group`-sized plan steps under the
//!    Remus engine — while the clients keep arriving,
//! 4. reports **offered vs delivered** load and **coordinated-omission-
//!    safe** p50/p99 (latency measured from each intended arrival, so
//!    stalls during the migration inflate the tail instead of hiding in
//!    an unmeasured queue).
//!
//! The headline ratio is delivered/offered. It warns below
//! [`MIN_DELIVERED`] (shared runners compress it) and fails below
//! [`DELIVERED_FLOOR`]: an engine that sheds half the offered load while
//! migrating has lost the paper's "migration without service
//! interruption" property. `bench_check` applies the same two-tier
//! policy to the emitted `remus-bench/v1` report.
//!
//! Usage: `cargo run --release -p remus-bench --bin bench_scale --
//! --scale paper --json BENCH_scale.json`

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use remus_bench::{
    json_path_arg, sim_config, two_tier, BenchReport, EngineKind, GateTier, Scale, ScenarioReport,
    TableSection,
};
use remus_clock::OracleKind;
use remus_cluster::ClusterBuilder;
use remus_common::NodeId;
use remus_core::{MigrationController, MigrationPlan, MigrationReport};
use remus_workload::ycsb::{KeyDistribution, Ycsb, YcsbConfig};
use remus_workload::{EngineConfig, OpenLoopEngine, Pacing, Workload};

/// Seed of the run: the offered load is a pure function of this.
const SEED: u64 = 0x5CA1E;
/// Expected delivered/offered ratio; warn below.
const MIN_DELIVERED: f64 = 0.90;
/// Hard floor: shedding half the offered load during a live migration
/// means the migration interrupts service, which is the property under
/// test — never runner noise.
const DELIVERED_FLOOR: f64 = 0.50;

fn main() {
    let scale = Scale::from_args_or_env();
    let path = json_path_arg().unwrap_or_else(|| PathBuf::from("BENCH_scale.json"));
    println!(
        "# bench_scale — open-loop engine: {} keys, {} clients on {} workers, \
         Poisson mean {:?}/client",
        scale.ycsb_keys, scale.clients, scale.workers, scale.arrival_mean
    );

    let cluster = ClusterBuilder::new(scale.nodes)
        .cc_mode(EngineKind::Remus.cc_mode())
        .oracle(OracleKind::Gts)
        .config(sim_config(&scale))
        .build();
    cluster.start_maintenance(std::time::Duration::from_millis(500));

    let load_t0 = Instant::now();
    let ycsb = Arc::new(Ycsb::setup(
        &cluster,
        YcsbConfig {
            shards: scale.ycsb_shards,
            keys: scale.ycsb_keys,
            value_len: scale.value_len,
            distribution: KeyDistribution::Uniform,
            ..YcsbConfig::default()
        },
    ));
    println!(
        "loaded {} tuples in {:.1}s",
        scale.ycsb_keys,
        load_t0.elapsed().as_secs_f64()
    );

    let engine = OpenLoopEngine::start(
        &cluster,
        EngineConfig {
            clients: scale.clients,
            workers: scale.workers,
            pacing: Pacing::Poisson {
                mean: scale.arrival_mean,
            },
            seed: SEED,
            queue_bound: scale.queue_bound,
            horizon: None,
            max_txns_per_client: None,
        },
        Arc::clone(&ycsb) as Arc<dyn Workload>,
    );
    let metrics = Arc::clone(&engine.metrics);
    std::thread::sleep(scale.warmup);

    // The live migration: consolidate node 0 away while the load runs.
    metrics.set_migration_active(true);
    let plan = MigrationPlan::consolidate(&cluster, NodeId(0), scale.consolidation_group);
    assert!(!plan.is_empty(), "node 0 owns shards to consolidate");
    let controller = MigrationController::new(Arc::clone(&cluster), EngineKind::Remus.engine());
    let mut migration = MigrationReport::new(EngineKind::Remus.name());
    let mig_t0 = Instant::now();
    for report in controller
        .run_plan(&plan, |_, _| {})
        .expect("consolidation failed")
    {
        migration.absorb(&report);
    }
    let mig_elapsed = mig_t0.elapsed();
    metrics.set_migration_active(false);
    // At this scale each trace carries thousands of per-chunk copy spans
    // (multi-MB of JSON); the trajectory gate compares root phase
    // sequences, so keep the protocol phases and drop the chunk bulk.
    for trace in &mut migration.traces {
        trace.spans.retain(|s| s.parent.is_none());
    }
    assert!(
        cluster.node(NodeId(0)).data_shards().is_empty(),
        "consolidation left shards on node 0"
    );

    std::thread::sleep(scale.cooldown);
    let report = engine.stop();
    cluster.stop_maintenance();

    let offered_tps = report.offered_rate();
    let delivered_tps = report.delivered_rate();
    let ratio = report.delivered_ratio();
    let (p50_n, p99_n) = (
        metrics.latency_normal.percentile(0.50),
        metrics.latency_normal.percentile(0.99),
    );
    let (p50_m, p99_m) = (
        metrics.latency_migration.percentile(0.50),
        metrics.latency_migration.percentile(0.99),
    );
    println!(
        "offered={offered_tps:.0}/s delivered={delivered_tps:.0}/s \
         ratio={ratio:.2} dropped={} parks={} queue_high_water={}",
        report.dropped, report.parks, report.queue_high_water
    );
    println!(
        "CO-safe latency: normal p50={}us p99={}us | during migration \
         p50={}us p99={}us",
        p50_n.as_micros(),
        p99_n.as_micros(),
        p50_m.as_micros(),
        p99_m.as_micros()
    );
    println!(
        "migration: {} shards off node 0 in {:.1}s ({} tuples copied, {} replayed)",
        plan.len(),
        mig_elapsed.as_secs_f64(),
        migration.tuples_copied,
        migration.records_replayed
    );
    assert!(
        metrics.latency_migration.count() > 0,
        "no commits landed during the migration window — the gate measured nothing"
    );

    let scenario = remus_bench::ScenarioResult {
        engine: EngineKind::Remus.name(),
        tps: metrics.timeline.rates_per_sec(),
        commits: metrics.counters.commits(),
        migration_aborts: metrics.counters.migration_aborts(),
        ww_aborts: metrics.counters.ww_aborts(),
        other_aborts: metrics.counters.other_aborts(),
        base_latency: metrics.latency_normal.mean(),
        latency_increase: metrics.latency_increase(),
        migration,
        counters: cluster.metrics_snapshot(),
        ..Default::default()
    };
    let mut bench = BenchReport::new("bench_scale", "open-loop-scale");
    bench.scenarios.push(ScenarioReport::from_result(
        "scale-consolidation",
        &scenario,
    ));
    bench.tables.push(TableSection {
        title: "open-loop scale".to_string(),
        headers: [
            "run",
            "keys",
            "clients",
            "workers",
            "offered_tps",
            "delivered_tps",
            "dropped",
            "co_p50_us",
            "co_p99_us",
            "delivered",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows: vec![vec![
            "open-loop".to_string(),
            scale.ycsb_keys.to_string(),
            scale.clients.to_string(),
            scale.workers.to_string(),
            format!("{offered_tps:.0}"),
            format!("{delivered_tps:.0}"),
            report.dropped.to_string(),
            format!("{}", p50_m.as_micros()),
            format!("{}", p99_m.as_micros()),
            format!("{ratio:.2}x"),
        ]],
    });
    bench.write(&path).expect("writing JSON report failed");

    match two_tier(ratio, MIN_DELIVERED, DELIVERED_FLOOR) {
        GateTier::Pass => {}
        GateTier::Warn => eprintln!(
            "WARN: delivered/offered {ratio:.2} below the expected \
             {MIN_DELIVERED} (tolerated as runner noise; hard floor \
             {DELIVERED_FLOOR})"
        ),
        GateTier::Fail => panic!(
            "delivered {delivered_tps:.0}/s is only {ratio:.2} of the offered \
             {offered_tps:.0}/s (hard floor {DELIVERED_FLOOR}) — the \
             migration interrupted service"
        ),
    }
}
