//! Table 2: batch-insert throughput and abort ratio under hybrid workload
//! A during consolidation, per approach.
//!
//! Expected shape (paper §4.4.1): lock-and-abort aborts nearly all batch
//! attempts (97% in the paper); Squall aborts some (13%) when batches hit
//! migrated ranges on the source; Remus and wait-and-remaster abort none
//! and keep ingestion throughput steady.
//!
//! Usage: `cargo run --release -p remus-bench --bin table2 [--json <path>]`.

use remus_bench::{
    json_path_arg, print_table, run_hybrid_a, BenchReport, EngineKind, Scale, ScenarioReport,
    TableSection,
};

fn main() {
    let scale = Scale::from_args_or_env();
    println!("# Table 2 — batch insert throughput (tuples/s) under hybrid workload A");
    println!("# scale: {scale:?}");
    let mut report = BenchReport::new("table2", &format!("{scale:?}"));
    let mut rows = Vec::new();
    for kind in EngineKind::all() {
        let result = run_hybrid_a(kind, &scale);
        let batch = result.batch.as_ref().expect("hybrid A has a batch report");
        rows.push(vec![
            result.engine.to_string(),
            format!("{:.0}%", batch.abort_ratio * 100.0),
            format!(
                "{:.0}/{:.0}",
                result.batch_tps_during, result.batch_tps_before
            ),
            format!("{:.1}", batch.elapsed.as_secs_f64()),
        ]);
        report
            .scenarios
            .push(ScenarioReport::from_result("hybrid A", &result));
    }
    let headers = [
        "engine",
        "abort_ratio",
        "tuples_per_s during/before",
        "ingestion_s",
    ];
    print_table("batch ingestion during consolidation", &headers, &rows);
    report.tables.push(TableSection {
        title: "batch ingestion during consolidation".to_string(),
        headers: headers.iter().map(|h| h.to_string()).collect(),
        rows,
    });
    if let Some(path) = json_path_arg() {
        report.write(&path).expect("writing JSON report failed");
    }
}
